"""Tests for corners, technology pairs, characterization, encoding,
GNN model and library builders."""

import numpy as np
import pytest

from repro.cells import get_cell
from repro.charlib import (CellCharGCN, CellCharGCNConfig, CharConfig,
                           CharTrainConfig, Corner, GNNLibraryBuilder,
                           SpiceLibraryBuilder, TimingTable,
                           build_char_dataset, ci_test_corners,
                           ci_train_corners, corner_grid,
                           evaluate_char_model, paper_test_corners,
                           paper_train_corners, technology_pair,
                           train_char_model, CellCharacterizer,
                           MetricNormalizer)
from repro.encoding.cell_encoding import CellGraphEncoder, NUM_CELL_FEATURES

FAST_CFG = CharConfig(slews=(8e-9,), loads=(15e-15,), n_bisect=3,
                      max_steps=220)


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    cache = tmp_path_factory.mktemp("charcache")
    return build_char_dataset(
        "ltps", cells=("INV_X1", "NAND2_X1", "DFF_X1"),
        train_corners=[Corner(1.0, 0.0, 1.0), Corner(0.9, 0.05, 1.1)],
        test_corners=[Corner(1.05, -0.02, 0.95)],
        config=FAST_CFG, cache_dir=cache)


class TestCorners:
    def test_paper_grid_sizes(self):
        assert len(paper_train_corners()) == 125
        assert len(paper_test_corners()) == 512

    def test_ci_grid_sizes(self):
        assert len(ci_train_corners()) == 8
        assert len(ci_test_corners()) == 27

    def test_test_grid_disjoint_from_train(self):
        train = {c.key() for c in paper_train_corners()}
        test = {c.key() for c in paper_test_corners()}
        assert not train & test

    def test_single_point_grid(self):
        grid = corner_grid(1)
        assert len(grid) == 1
        assert grid[0].vdd_scale == pytest.approx(1.0)

    def test_feature_vector(self):
        c = Corner(1.1, 0.05, 0.9)
        v = c.feature_vector()
        assert v.shape == (3,)
        assert np.all(np.isfinite(v))


class TestTechnology:
    def test_both_technologies(self):
        for name in ("ltps", "cnt"):
            pair = technology_pair(name)
            assert pair.nmos.polarity == "n"
            assert pair.pmos.polarity == "p"
            assert pair.vdd > 0

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            technology_pair("igzo")   # single-carrier, not in Table IV

    def test_corner_application(self):
        pair = technology_pair("ltps")
        c = pair.at_corner(vdd=2.5, vth_shift=0.1, cox_scale=1.2)
        assert c.vdd == 2.5
        assert c.nmos.vth == pytest.approx(pair.nmos.vth + 0.1)
        assert c.pmos.vth == pytest.approx(pair.pmos.vth - 0.1)
        assert c.nmos.cox == pytest.approx(pair.nmos.cox * 1.2)

    def test_invalid_cox_scale(self):
        with pytest.raises(ValueError):
            technology_pair("ltps").at_corner(cox_scale=0.0)


class TestCellEncoding:
    def test_feature_width_is_12(self):
        enc = CellGraphEncoder()
        tech = technology_pair("ltps")
        g = enc.encode(get_cell("NAND2_X1"), tech.nmos, tech.pmos, tech.vdd)
        assert g.num_node_features == NUM_CELL_FEATURES == 12

    def test_node_count(self):
        """Nodes = inputs + outputs + transistors + VDD + VSS."""
        enc = CellGraphEncoder()
        tech = technology_pair("ltps")
        cell = get_cell("NAND2_X1")
        g = enc.encode(cell, tech.nmos, tech.pmos, tech.vdd)
        assert g.num_nodes == 2 + 1 + cell.num_transistors + 2

    def test_table3_bit_layout(self):
        enc = CellGraphEncoder()
        tech = technology_pair("ltps")
        cell = get_cell("INV_X1")
        g = enc.encode(cell, tech.nmos, tech.pmos, vdd=3.0, slew=20e-9,
                       load=40e-15, slew_pin="a",
                       states={"a": (False, True)})
        x = g.x
        # node order: in a, out y, fets..., vdd, vss
        in_row, out_row = x[0], x[1]
        fet_rows = x[2:4]
        vdd_row, vss_row = x[-2], x[-1]
        assert in_row[2] == 1.0 and in_row[8] > 0      # slew on IN
        assert in_row[10] == 0.0 and in_row[11] == 1.0  # rising state
        assert out_row[1] == 1.0 and out_row[9] > 0    # load on OUT
        assert vdd_row[0] == 1.0 and vdd_row[4] == 1.0  # vdd value (3/3)
        assert vss_row[0] == 1.0 and vss_row[2] == 1.0
        polarities = sorted(fet_rows[:, 3])
        assert polarities == [-1.0, 1.0]
        assert np.all(fet_rows[:, 5] > 0)  # widths
        assert np.all(fet_rows[:, 6] > 0)  # cox

    def test_structure_cached(self):
        enc = CellGraphEncoder()
        tech = technology_pair("ltps")
        cell = get_cell("NAND2_X1")
        g1 = enc.encode(cell, tech.nmos, tech.pmos, tech.vdd)
        g2 = enc.encode(cell, tech.nmos, tech.pmos, tech.vdd)
        np.testing.assert_array_equal(g1.edge_index, g2.edge_index)

    def test_edges_bidirectional(self):
        enc = CellGraphEncoder()
        tech = technology_pair("ltps")
        g = enc.encode(get_cell("AOI21_X1"), tech.nmos, tech.pmos, tech.vdd)
        pairs = set(map(tuple, g.edge_index.T))
        assert all((b, a) in pairs for a, b in pairs)


class TestNormalizer:
    def test_roundtrip(self):
        vals = np.array([1e-12, 5e-11, 2e-10])
        norm = MetricNormalizer.fit(vals)
        back = norm.denormalize(norm.normalize(vals))
        np.testing.assert_allclose(back, vals, rtol=1e-6)

    def test_normalized_zero_mean(self):
        vals = np.logspace(-12, -8, 20)
        norm = MetricNormalizer.fit(vals)
        normed = norm.normalize(vals)
        assert abs(float(np.mean(normed))) < 1e-9


class TestCharacterizer:
    def test_inverter_metrics_present(self):
        tech = technology_pair("ltps")
        rows = CellCharacterizer(get_cell("INV_X1"), tech,
                                 Corner(1.0, 0.0, 1.0),
                                 FAST_CFG).characterize()
        metrics = {r.metric for r in rows}
        assert {"delay", "output_slew", "capacitance", "flip_power",
                "leakage_power"} <= metrics

    def test_delay_increases_with_load(self):
        tech = technology_pair("ltps")
        cfg = CharConfig(slews=(8e-9,), loads=(10e-15, 60e-15),
                         max_steps=260)
        rows = CellCharacterizer(get_cell("INV_X1"), tech,
                                 Corner(1.0, 0.0, 1.0), cfg).characterize()
        delays = {}
        for r in rows:
            if r.metric == "delay":
                delays.setdefault(r.load, []).append(r.value)
        assert max(delays[60e-15]) > max(delays[10e-15])

    def test_lower_vdd_slower(self):
        tech = technology_pair("ltps")
        def worst_delay(corner):
            rows = CellCharacterizer(get_cell("INV_X1"), tech, corner,
                                     FAST_CFG).characterize()
            return max(r.value for r in rows if r.metric == "delay")
        assert worst_delay(Corner(0.8, 0.0, 1.0)) > \
            worst_delay(Corner(1.2, 0.0, 1.0))


class TestDatasetAndModel:
    def test_dataset_counts(self, dataset):
        counts = dataset.counts()
        assert counts["delay"]["train"] > 0
        assert counts["min_setup"]["train"] > 0
        assert "test" in counts["delay"]

    def test_targets_normalised(self, dataset):
        for g in dataset.graphs["delay"]["train"]:
            assert abs(float(g.y[0])) < 6.0

    def test_cache_roundtrip(self, dataset, tmp_path):
        ds2 = build_char_dataset(
            "ltps", cells=("INV_X1",),
            train_corners=[Corner(1.0, 0.0, 1.0)],
            test_corners=[Corner(1.05, -0.02, 0.95)],
            config=FAST_CFG, cache_dir=tmp_path)
        ds3 = build_char_dataset(
            "ltps", cells=("INV_X1",),
            train_corners=[Corner(1.0, 0.0, 1.0)],
            test_corners=[Corner(1.05, -0.02, 0.95)],
            config=FAST_CFG, cache_dir=tmp_path)
        assert ds2.counts() == ds3.counts()

    def test_train_and_evaluate(self, dataset):
        model = train_char_model(
            dataset, train_config=CharTrainConfig(epochs=10))
        mapes = evaluate_char_model(model, dataset)
        assert "delay" in mapes
        for metric, val in mapes.items():
            assert np.isfinite(val), metric

    def test_model_head_per_metric(self, dataset):
        metrics = tuple(dataset.metrics_present())
        model = CellCharGCN(CellCharGCNConfig(metrics=metrics))
        assert set(model.heads) == set(metrics)
        with pytest.raises(KeyError):
            model.predict(dataset.graphs["delay"]["train"][:1], "nosuch")


class TestTimingTable:
    def test_bilinear_interpolation(self):
        t = TimingTable([1.0, 2.0], [10.0, 20.0],
                        [[1.0, 2.0], [3.0, 4.0]])
        assert t.lookup(1.5, 15.0) == pytest.approx(2.5)

    def test_clamping(self):
        t = TimingTable([1.0, 2.0], [10.0, 20.0],
                        [[1.0, 2.0], [3.0, 4.0]])
        assert t.lookup(0.0, 0.0) == pytest.approx(1.0)
        assert t.lookup(99.0, 99.0) == pytest.approx(4.0)

    def test_single_point_table(self):
        t = TimingTable([1.0], [10.0], [[7.0]])
        assert t.lookup(5.0, 5.0) == 7.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TimingTable([1.0], [10.0], [[1.0, 2.0]])


class TestLibraryBuilders:
    def test_spice_vs_gnn_library(self, dataset):
        cells = ("INV_X1", "NAND2_X1", "DFF_X1")
        model = train_char_model(
            dataset, train_config=CharTrainConfig(epochs=10))
        sb = SpiceLibraryBuilder("ltps", cells=cells, config=FAST_CFG)
        lib_s = sb.build()
        gb = GNNLibraryBuilder(model, dataset, cells=cells, config=FAST_CFG)
        lib_g = gb.build()
        assert set(lib_s.cells) == set(lib_g.cells) == set(cells)
        # The GNN path must be dramatically faster (paper: >100x).
        assert gb.last_runtime_s < sb.last_runtime_s / 20
        for name in cells:
            cs, cg = lib_s.cell(name), lib_g.cell(name)
            assert cs.is_sequential == cg.is_sequential
            d_s = cs.delay.lookup(8e-9, 15e-15)
            d_g = cg.delay.lookup(8e-9, 15e-15)
            assert d_s > 0 and d_g > 0

    def test_library_lookup_unknown_cell(self, dataset):
        sb = SpiceLibraryBuilder("ltps", cells=("INV_X1",), config=FAST_CFG)
        lib = sb.build()
        with pytest.raises(ValueError):
            lib.cell("NAND4_X1")
