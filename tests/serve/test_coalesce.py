"""request_key normalization + Coalescer admission semantics."""

import pytest

from repro.api import ConfigError, StcoConfig
from repro.serve import Coalescer, request_key

from tests.serve.conftest import make_config


class TestRequestKey:
    def test_equal_configs_key_identically(self, tmp_path):
        assert request_key(make_config(), tmp_path) == \
            request_key(make_config(), tmp_path)

    def test_dict_and_config_spellings_agree(self, tmp_path):
        config = make_config()
        assert request_key(config.to_dict(), tmp_path) == \
            request_key(config, tmp_path)

    def test_defaulted_and_explicit_fields_agree(self, tmp_path):
        # {"mode": "search"} and the fully expanded document mean the
        # same run — normalization through StcoConfig makes them one key.
        sparse = {"mode": "search"}
        dense = StcoConfig.from_dict(sparse).to_dict()
        assert request_key(sparse, tmp_path) == \
            request_key(dense, tmp_path)

    def test_different_config_different_key(self, tmp_path):
        assert request_key(make_config(seed=0), tmp_path) != \
            request_key(make_config(seed=1), tmp_path)

    def test_different_workspace_different_key(self, tmp_path):
        config = make_config()
        assert request_key(config, tmp_path / "a") != \
            request_key(config, tmp_path / "b")

    def test_invalid_config_rejected_at_keying(self, tmp_path):
        with pytest.raises(ConfigError):
            request_key({"mode": "warp"}, tmp_path)


class TestCoalescer:
    def test_first_is_leader_second_follows(self):
        c = Coalescer()
        assert c.admit("k", "a") == ("leader", None)
        assert c.admit("k", "b") == ("follower", "a")
        assert c.admit("k", "c") == ("follower", "a")
        assert sorted(c.resolve("k", "a", success=True)) == ["b", "c"]

    def test_distinct_keys_do_not_interact(self):
        c = Coalescer()
        assert c.admit("k1", "a") == ("leader", None)
        assert c.admit("k2", "b") == ("leader", None)

    def test_completed_key_becomes_duplicate(self):
        c = Coalescer()
        c.admit("k", "a")
        c.resolve("k", "a", success=True)
        assert c.admit("k", "b") == ("duplicate", "a")

    def test_reuse_completed_false_runs_again(self):
        c = Coalescer()
        c.admit("k", "a")
        c.resolve("k", "a", success=True)
        assert c.admit("k", "b", reuse_completed=False) == \
            ("leader", None)

    def test_failed_leader_is_not_remembered(self):
        c = Coalescer()
        c.admit("k", "a")
        assert c.resolve("k", "a", success=False) == []
        assert c.admit("k", "b") == ("leader", None)

    def test_force_executes_without_displacing_leader(self):
        c = Coalescer()
        c.admit("k", "a")
        assert c.admit("k", "b", force=True) == ("leader", None)
        # followers keep riding the original leader
        assert c.admit("k", "c") == ("follower", "a")

    def test_remove_follower(self):
        c = Coalescer()
        c.admit("k", "a")
        c.admit("k", "b")
        assert c.remove_follower("a", "b")
        assert not c.remove_follower("a", "b")
        assert c.resolve("k", "a", success=True) == []

    def test_stats_counters(self):
        c = Coalescer()
        c.admit("k", "a")
        c.admit("k", "b")
        c.resolve("k", "a", success=True)
        c.admit("k", "c")
        stats = c.stats()
        assert stats["leaders"] == 1
        assert stats["followers"] == 1
        assert stats["duplicates"] == 1
        assert stats["known_results"] == 1
        assert stats["in_flight_keys"] == 0
