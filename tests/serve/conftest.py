"""Shared fixtures for the serve-layer tests.

Two tiers:

* **stub tier** — ``stub_runner`` / ``make_service`` build services
  whose runner is a controllable fake (counts executions, emits
  progress, can block or fail on command), so queueing, coalescing,
  cancellation and recovery semantics are tested in milliseconds;
* **real tier** — one session workspace warmed by a single real
  :func:`repro.api.run` (same CI-scale configuration as the api tests),
  backing the end-to-end coalescing/HTTP tests.
"""

import threading
import time
from dataclasses import replace as _dc_replace

import pytest

from repro.api import StcoConfig, Workspace
from repro.api.report import RunReport
from repro.serve import ServeService
from tests.api.conftest import MODEL, SEARCH, TECH


def make_config(**search_overrides) -> StcoConfig:
    """A CI-scale search config; vary ``seed=`` etc. for distinct keys."""
    return StcoConfig(mode="search", benchmark="s298", technology=TECH,
                      model=MODEL,
                      search=_dc_replace(SEARCH, **search_overrides))


class StubRunner:
    """Deterministic runner double: records calls, emits ``rounds``
    progress events (pausing ``delay_s`` before each), optionally
    blocking on ``gate`` after the first event or raising ``error``."""

    def __init__(self, rounds: int = 3, delay_s: float = 0.0,
                 error: Exception | None = None):
        self.rounds = rounds
        self.delay_s = delay_s
        self.error = error
        self.calls = []
        self.started = threading.Event()
        self.gate = None                 # set to an Event to block runs
        self._lock = threading.Lock()

    def __call__(self, config, workspace, progress_callback=None):
        with self._lock:
            self.calls.append(config)
        self.started.set()
        if self.gate is not None:
            assert self.gate.wait(10), "stub runner gate never opened"
        if self.error is not None:
            raise self.error
        for i in range(self.rounds):
            if self.delay_s:
                time.sleep(self.delay_s)
            if progress_callback is not None:
                progress_callback({"round": i + 1, "told": i + 1,
                                   "best_reward": float(i)})
        return RunReport(mode=config["mode"],
                         best_reward=float(self.rounds))


@pytest.fixture
def stub_runner():
    return StubRunner()


@pytest.fixture
def make_service(tmp_path):
    """Factory for stub-backed services on a throwaway workspace."""
    created = []

    def factory(runner, workers: int = 2, **kwargs) -> ServeService:
        service = ServeService(Workspace(tmp_path / "ws"),
                               jobs_dir=tmp_path / "jobs",
                               workers=workers, runner=runner, **kwargs)
        created.append(service)
        return service

    yield factory
    for service in created:
        service.close(timeout=5)


# -- real tier -------------------------------------------------------------

@pytest.fixture(scope="session")
def serve_ws(tmp_path_factory):
    return Workspace(tmp_path_factory.mktemp("serve_workspace"))


@pytest.fixture(scope="session")
def warm_report(serve_ws):
    """Train/characterize once; everything after runs against warm
    artifacts. Returns the baseline report of ``make_config()``."""
    from repro.api import run
    return run(make_config(), serve_ws)
