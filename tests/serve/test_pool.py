"""ServeService: coalesced execution, cancellation, recovery, ledgers.

The stub tier drives the machinery with a fake runner (fast,
deterministic); ``TestRealPipeline`` at the bottom runs the genuine
``run(config, workspace)`` against a warm session workspace and pins
the acceptance property: N identical submissions → one engine
execution, N identical reports.
"""

import pytest

from repro.serve import JobState, ServeService, ServiceClosed

from tests.serve.conftest import StubRunner, make_config

CFG = make_config().to_dict()


def _submit_n(service, config, n):
    return [service.submit(config) for _ in range(n)]


class TestCoalescedExecution:
    def test_identical_submissions_share_one_execution(self, make_service,
                                                       stub_runner):
        service = make_service(stub_runner, autostart=False)
        jobs = _submit_n(service, CFG, 5)
        assert [bool(j.coalesced_with) for j in jobs] == \
            [False, True, True, True, True]
        service.start()
        done = [service.wait(j.job_id, timeout=10) for j in jobs]
        assert len(stub_runner.calls) == 1
        assert all(j.state == JobState.SUCCEEDED for j in done)
        reports = [j.report for j in done]
        assert all(r == reports[0] for r in reports)

    def test_followers_surface_leader_events(self, make_service,
                                             stub_runner):
        service = make_service(stub_runner, autostart=False)
        leader, follower = _submit_n(service, CFG, 2)
        service.start()
        service.wait(follower.job_id, timeout=10)
        assert service.store.get(follower.job_id).events == []
        view = service.events(follower.job_id)
        assert view["source"] == leader.job_id
        assert [e["round"] for e in view["events"]
                if e.get("kind") not in ("trace", "profile")] == [1, 2, 3]

    def test_high_priority_follower_boosts_queued_leader(
            self, make_service, stub_runner):
        service = make_service(stub_runner, autostart=False)
        low = service.submit(make_config(seed=51), priority=0)
        mid = service.submit(make_config(seed=52), priority=5)
        urgent = service.submit(make_config(seed=51), priority=10)
        assert urgent.coalesced_with == low.job_id
        # The coalesced request's urgency transferred to its leader:
        # the leader now outranks the priority-5 job in the queue.
        assert service.store.get(low.job_id).priority == 10
        first = service.store.claim(timeout=1)
        assert first.job_id == low.job_id
        assert service.store.claim(timeout=1).job_id == mid.job_id

    def test_distinct_configs_each_execute(self, make_service,
                                           stub_runner):
        service = make_service(stub_runner)
        a = service.submit(make_config(seed=11))
        b = service.submit(make_config(seed=12))
        service.wait(a.job_id, timeout=10)
        service.wait(b.job_id, timeout=10)
        assert len(stub_runner.calls) == 2

    def test_completed_key_answers_instantly(self, make_service,
                                             stub_runner):
        service = make_service(stub_runner)
        first = service.submit(CFG)
        done = service.wait(first.job_id, timeout=10)
        again = service.submit(CFG)
        assert again.state == JobState.SUCCEEDED
        assert again.coalesced_with == first.job_id
        assert again.report == done.report
        assert len(stub_runner.calls) == 1

    def test_reuse_completed_opt_out(self, make_service, stub_runner):
        service = make_service(stub_runner, reuse_completed=False)
        service.wait(service.submit(CFG).job_id, timeout=10)
        second = service.wait(service.submit(CFG).job_id, timeout=10)
        assert second.state == JobState.SUCCEEDED
        assert len(stub_runner.calls) == 2

    def test_force_always_executes(self, make_service, stub_runner):
        service = make_service(stub_runner)
        service.wait(service.submit(CFG).job_id, timeout=10)
        forced = service.submit(CFG, force=True)
        service.wait(forced.job_id, timeout=10)
        assert len(stub_runner.calls) == 2


class TestFailures:
    def test_failure_propagates_to_followers(self, make_service):
        runner = StubRunner(error=RuntimeError("char exploded"))
        service = make_service(runner, autostart=False)
        leader, follower = _submit_n(service, CFG, 2)
        service.start()
        l = service.wait(leader.job_id, timeout=10)
        f = service.wait(follower.job_id, timeout=10)
        assert l.state == f.state == JobState.FAILED
        assert "char exploded" in l.error and "char exploded" in f.error

    def test_failed_key_is_retried_not_reused(self, make_service):
        runner = StubRunner(error=RuntimeError("boom"))
        service = make_service(runner)
        service.wait(service.submit(CFG).job_id, timeout=10)
        runner.error = None              # "the flake went away"
        retry = service.wait(service.submit(CFG).job_id, timeout=10)
        assert retry.state == JobState.SUCCEEDED
        assert len(runner.calls) == 2


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, make_service,
                                          stub_runner):
        service = make_service(stub_runner, autostart=False)
        job = service.submit(CFG)
        assert service.cancel(job.job_id)
        service.start()
        done = service.wait(job.job_id, timeout=10)
        assert done.state == JobState.CANCELLED
        assert stub_runner.calls == []

    def test_cancel_terminal_job_returns_false(self, make_service,
                                               stub_runner):
        service = make_service(stub_runner)
        job = service.submit(CFG)
        service.wait(job.job_id, timeout=10)
        assert not service.cancel(job.job_id)

    def test_cancel_running_job_stops_at_next_round(self, make_service):
        runner = StubRunner(rounds=50, delay_s=0.02)
        service = make_service(runner, workers=1)
        job = service.submit(CFG)
        assert runner.started.wait(10)
        assert service.cancel(job.job_id)
        done = service.wait(job.job_id, timeout=10)
        assert done.state == JobState.CANCELLED
        assert 0 < len(done.events) < 50
        assert "execution_s" not in done.ledger   # it never completed

    def test_cancel_parked_follower_leaves_leader_running(
            self, make_service, stub_runner):
        service = make_service(stub_runner, autostart=False)
        leader, follower = _submit_n(service, CFG, 2)
        assert service.cancel(follower.job_id)
        service.start()
        l = service.wait(leader.job_id, timeout=10)
        assert l.state == JobState.SUCCEEDED
        assert service.store.get(follower.job_id).state == \
            JobState.CANCELLED

    def test_repatriation_honors_reuse_completed_opt_out(
            self, make_service):
        # With reuse_completed=False, a follower promoted after its
        # leader's cancellation must re-execute — not be answered from
        # the key's earlier completed run.
        runner = StubRunner(rounds=50, delay_s=0.02)
        service = make_service(runner, workers=1,
                               reuse_completed=False)
        runner.rounds = 3
        service.wait(service.submit(CFG).job_id, timeout=10)  # completes
        runner.rounds = 50
        runner.started.clear()
        leader = service.submit(CFG)      # re-executes (no reuse)
        assert runner.started.wait(10)
        follower = service.submit(CFG)
        service.cancel(leader.job_id)
        runner.rounds = 3                 # promoted rerun finishes fast
        promoted = service.wait(follower.job_id, timeout=10)
        assert promoted.state == JobState.SUCCEEDED
        assert len(runner.calls) == 3     # cold + leader + promoted

    def test_cancelled_leader_promotes_follower(self, make_service):
        runner = StubRunner(rounds=50, delay_s=0.02)
        service = make_service(runner, workers=1)
        leader = service.submit(CFG)
        assert runner.started.wait(10)
        follower = service.submit(CFG)
        assert follower.coalesced_with == leader.job_id
        runner.rounds = 3                # promoted rerun finishes fast
        service.cancel(leader.job_id)
        assert service.wait(leader.job_id,
                            timeout=10).state == JobState.CANCELLED
        promoted = service.wait(follower.job_id, timeout=10)
        assert promoted.state == JobState.SUCCEEDED
        assert len(runner.calls) == 2    # follower truly re-executed


class TestDrainAndHealth:
    def test_drain_refuses_new_work(self, make_service, stub_runner):
        service = make_service(stub_runner)
        job = service.submit(CFG)
        assert service.drain(timeout=10)
        with pytest.raises(ServiceClosed):
            service.submit(make_config(seed=99))
        assert service.store.get(job.job_id).state == JobState.SUCCEEDED
        health = service.health()
        assert health["status"] == "draining"
        assert not health["accepting"]

    def test_health_reports_counts(self, make_service, stub_runner):
        service = make_service(stub_runner)
        service.wait(service.submit(CFG).job_id, timeout=10)
        health = service.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["jobs"][JobState.SUCCEEDED] == 1
        assert health["coalescer"]["leaders"] == 1

    def test_ledger_splits_queue_lock_execution(self, make_service,
                                                stub_runner):
        service = make_service(stub_runner)
        done = service.wait(service.submit(CFG).job_id, timeout=10)
        assert set(done.ledger) >= {"queued_s", "lock_wait_s",
                                    "execution_s"}
        assert done.ledger["execution_s"] >= 0


class TestRestartRecovery:
    def test_interrupted_job_reruns_after_restart(self, make_service,
                                                  stub_runner):
        crashed = make_service(stub_runner, autostart=False)
        job = crashed.submit(CFG)
        crashed.store.claim(timeout=1)   # running; simulate crash here
        revived = make_service(stub_runner)   # same jobs_dir + workspace
        done = revived.wait(job.job_id, timeout=10)
        assert done.state == JobState.SUCCEEDED
        assert done.resubmitted
        assert done.attempts == 2

    def test_dangling_follower_never_blocks_boot(self, make_service,
                                                 stub_runner, tmp_path):
        # A follower whose leader record was gc'd (or torn) must be
        # promoted at boot, not crash the service.
        crashed = make_service(stub_runner, autostart=False)
        leader, f1, f2 = _submit_n(crashed, CFG, 3)
        (tmp_path / "jobs" / f"{leader.job_id}.json").unlink()
        revived = make_service(stub_runner)
        done = [revived.wait(f.job_id, timeout=10) for f in (f1, f2)]
        assert all(j.state == JobState.SUCCEEDED for j in done)
        # One follower was promoted, the other re-coalesced onto it:
        # still exactly one execution for the shared key.
        assert len(stub_runner.calls) == 1

    def test_follower_of_completed_leader_resolves_on_restart(
            self, make_service, stub_runner):
        first = make_service(stub_runner, autostart=False)
        leader, follower = _submit_n(first, CFG, 2)
        first.start()
        first.wait(leader.job_id, timeout=10)
        # Pretend the crash hit after the leader persisted its success
        # but before the follower was resolved.
        parked = first.store.get(follower.job_id)
        parked.state = JobState.SUBMITTED
        parked.report = None
        parked.finished_s = 0.0
        first.store.update(parked)
        revived = make_service(stub_runner)
        done = revived.wait(follower.job_id, timeout=10)
        assert done.state == JobState.SUCCEEDED
        assert done.report is not None
        assert len(stub_runner.calls) == 1   # never re-executed


class TestRealPipeline:
    """End-to-end against the warm session workspace (real runner)."""

    def test_concurrent_identical_submissions_one_engine_execution(
            self, serve_ws, warm_report, tmp_path):
        from repro.api.runner import run as api_run
        calls = []

        def counting_runner(config, workspace, progress_callback=None):
            calls.append(config)
            return api_run(config, workspace,
                           progress_callback=progress_callback)

        # A space no other test sweeps → these corners truly execute.
        config = make_config(seed=21, optimizer="random",
                             vdd_scales=(0.88, 1.02), vth_shifts=(0.02,),
                             cox_scales=(0.95, 1.15))
        engine = serve_ws.engine(config.technology, config.model,
                                 config.engine)
        before = engine.snapshot()
        trained_before = serve_ws.counters["models_trained"]
        service = ServeService(serve_ws, jobs_dir=tmp_path / "jobs",
                               workers=2, runner=counting_runner,
                               autostart=False)
        jobs = _submit_n(service, config, 4)
        service.start()
        done = [service.wait(j.job_id, timeout=300) for j in jobs]
        service.close(timeout=10)

        assert [j.state for j in done] == [JobState.SUCCEEDED] * 4
        assert len(calls) == 1                       # one execution
        assert sum(1 for j in done if not j.coalesced_with) == 1
        reports = [j.report for j in done]
        assert all(r == reports[0] for r in reports)  # byte-identical
        delta = engine.delta(before)
        assert reports[0]["engine_misses"] > 0
        assert delta["flow_evaluations"] == reports[0]["engine_misses"]
        # Multi-tenancy reused the session model: nothing retrained.
        assert serve_ws.counters["models_trained"] == trained_before

    def test_cancel_mid_search_through_real_driver(self, serve_ws,
                                                   warm_report,
                                                   tmp_path):
        cancel_at_round = 2
        service_box = {}

        def on_event(job, snapshot):
            if snapshot["round"] >= cancel_at_round:
                service_box["service"].cancel(job.job_id)

        service = ServeService(serve_ws, jobs_dir=tmp_path / "jobs",
                               workers=1, on_event=on_event,
                               autostart=False)
        service_box["service"] = service
        config = make_config(seed=22, optimizer="qlearning",
                             iterations=10)
        job = service.submit(config)
        service.start()
        done = service.wait(job.job_id, timeout=300)
        service.close(timeout=10)
        assert done.state == JobState.CANCELLED
        # The per-round hook fired, then the raise stopped the search
        # in flight: strictly fewer rounds than the budget.
        assert 0 < len(done.events) < 10


class TestGcedCompletedRecords:
    """A duplicate must never be answered with a report that gc took."""

    def test_vanished_record_reexecutes_instead_of_null_report(
            self, make_service, stub_runner, tmp_path):
        service = make_service(stub_runner)
        first = service.submit(CFG)
        done = service.wait(first.job_id, timeout=10)
        assert done.report is not None
        assert len(stub_runner.calls) == 1
        # gc reclaims the terminal record; the body falls out of the
        # lazy store's memory too.
        (service.store.root / f"{first.job_id}.json").unlink()
        with service.store._lock:
            service.store._jobs.pop(first.job_id, None)
            service.store._bodies.clear()
            service.store._stubs.setdefault(first.job_id, done)
        second = service.submit(CFG)
        result = service.wait(second.job_id, timeout=10)
        # Re-executed (or honestly resolved) — never SUCCEEDED w/ null.
        assert result.state == JobState.SUCCEEDED
        assert result.report is not None
        assert len(stub_runner.calls) == 2

    def test_rebuild_skips_reportless_completed_keys(self, tmp_path,
                                                     stub_runner):
        service = ServeService(tmp_path / "ws", workers=1,
                               runner=stub_runner, autostart=False)
        job = service.submit(CFG)
        service.start()
        service.wait(job.job_id, timeout=10)
        service.close()
        # Strip the report from the persisted record (torn/partial gc).
        import json
        path = service.store.root / f"{job.job_id}.json"
        record = json.loads(path.read_text())
        record["report"] = None
        path.write_text(json.dumps(record))
        fresh = ServeService(tmp_path / "ws", workers=1,
                             runner=stub_runner, autostart=False)
        # The reportless success never became a duplicate-answering key.
        assert fresh.coalescer.stats()["known_results"] == 0
        fresh.close()
