"""ServeClient transport resilience: bounded retry with exponential
backoff + jitter on transient failures, Retry-After honored on 503 —
plus the server side of that contract (``/healthz`` → 503 when the SLO
health is ``unhealthy``).

Transport tests monkeypatch ``urlopen`` inside the client module (no
sockets, no sleeps): each test scripts a failure sequence and asserts
exactly how many attempts and which delays the client produced.
"""

import io
import json
import urllib.error

import pytest

import repro.serve.client as client_module
from repro.serve import ServeClient, StcoServer
from repro.serve.client import ServeClientError
from tests.serve.conftest import StubRunner, make_config


class FakeResponse:
    def __init__(self, payload):
        self._data = json.dumps(payload).encode("utf-8")
        self.headers = {}

    def read(self):
        return self._data

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def http_error(code, body=None, retry_after=None):
    import email.message
    headers = email.message.Message()
    if retry_after is not None:
        headers["Retry-After"] = str(retry_after)
    data = b"" if body is None else json.dumps(body).encode("utf-8")
    return urllib.error.HTTPError("http://test/", code, f"err {code}",
                                  headers, io.BytesIO(data))


@pytest.fixture
def transport(monkeypatch):
    """Scripted urlopen: pops one outcome per attempt (an exception
    instance/factory or a payload dict), recording attempts + sleeps."""
    state = {"attempts": 0, "sleeps": [], "script": []}

    def fake_urlopen(request, timeout=None):
        state["attempts"] += 1
        step = state["script"].pop(0)
        if callable(step):
            step = step()
        if isinstance(step, BaseException):
            raise step
        return FakeResponse(step)

    class FakeTime:
        @staticmethod
        def sleep(seconds):
            state["sleeps"].append(seconds)

        monotonic = staticmethod(lambda: 0.0)

    monkeypatch.setattr(client_module.urllib.request, "urlopen",
                        fake_urlopen)
    monkeypatch.setattr(client_module, "time", FakeTime)
    return state


def refused():
    return urllib.error.URLError(ConnectionRefusedError(111,
                                                        "refused"))


class TestTransientRetry:
    def test_transient_failures_retry_then_succeed(self, transport):
        transport["script"] = [refused(), refused(), {"ok": True}]
        client = ServeClient("http://test", retries=2, backoff_s=0.2)
        assert client._request("GET", "/x") == {"ok": True}
        assert transport["attempts"] == 3
        # Exponential with 50–100% jitter: 0.2·2⁰ then 0.2·2¹.
        first, second = transport["sleeps"]
        assert 0.1 <= first <= 0.2
        assert 0.2 <= second <= 0.4

    def test_retries_are_bounded(self, transport):
        transport["script"] = [refused()] * 10
        client = ServeClient("http://test", retries=1)
        with pytest.raises(urllib.error.URLError):
            client._request("GET", "/x")
        assert transport["attempts"] == 2    # first try + 1 retry

    def test_retries_zero_means_one_attempt(self, transport):
        transport["script"] = [refused()] * 10
        client = ServeClient("http://test", retries=0)
        with pytest.raises(urllib.error.URLError):
            client._request("GET", "/x")
        assert transport["attempts"] == 1
        assert transport["sleeps"] == []

    def test_non_transient_urlerror_never_retries(self, transport):
        transport["script"] = [urllib.error.URLError("unknown scheme")]
        client = ServeClient("http://test", retries=5)
        with pytest.raises(urllib.error.URLError):
            client._request("GET", "/x")
        assert transport["attempts"] == 1

    def test_bare_connection_reset_retries(self, transport):
        transport["script"] = [ConnectionResetError(104, "reset"),
                               {"ok": True}]
        client = ServeClient("http://test", retries=2)
        assert client._request("GET", "/x") == {"ok": True}
        assert transport["attempts"] == 2

    def test_backoff_is_capped(self, transport):
        transport["script"] = [refused()] * 8 + [{"ok": True}]
        client = ServeClient("http://test", retries=8, backoff_s=0.2,
                             backoff_max_s=1.0)
        client._request("GET", "/x")
        assert all(s <= 1.0 for s in transport["sleeps"])


class TestHttp503:
    def test_retry_after_hint_is_honored(self, transport):
        transport["script"] = [
            lambda: http_error(503, {"error": "draining"},
                               retry_after=0.01),
            lambda: http_error(503, {"error": "draining"},
                               retry_after=0.01),
            {"ok": True}]
        client = ServeClient("http://test", retries=2, backoff_s=9.0)
        assert client._request("GET", "/x") == {"ok": True}
        # The server's schedule, not the client's 9-second backoff.
        assert transport["sleeps"] == [0.01, 0.01]

    def test_503_without_hint_uses_backoff(self, transport):
        transport["script"] = [lambda: http_error(503), {"ok": True}]
        client = ServeClient("http://test", retries=1, backoff_s=0.2)
        client._request("GET", "/x")
        (sleep,) = transport["sleeps"]
        assert 0.1 <= sleep <= 0.2

    def test_503_retries_exhaust_into_the_error(self, transport):
        transport["script"] = [
            lambda: http_error(503, {"error": "still down"},
                               retry_after=0.01)] * 3
        client = ServeClient("http://test", retries=2)
        with pytest.raises(ServeClientError) as err:
            client._request("GET", "/x")
        assert err.value.status == 503
        assert err.value.retry_after == 0.01
        assert transport["attempts"] == 3

    def test_non_503_http_errors_never_retry(self, transport):
        transport["script"] = [
            lambda: http_error(400, {"error": "bad config"})] * 5
        client = ServeClient("http://test", retries=5)
        with pytest.raises(ServeClientError) as err:
            client._request("GET", "/x")
        assert transport["attempts"] == 1
        assert err.value.status == 400
        assert err.value.message == "bad config"
        assert err.value.body == {"error": "bad config"}

    def test_http_date_retry_after_is_ignored(self, transport):
        transport["script"] = [
            lambda: http_error(503, retry_after="Wed, 21 Oct 2026"),
            {"ok": True}]
        client = ServeClient("http://test", retries=1, backoff_s=0.2)
        client._request("GET", "/x")
        (sleep,) = transport["sleeps"]      # fell back to own backoff
        assert 0.1 <= sleep <= 0.2

    def test_health_returns_the_503_document(self, transport):
        doc = {"health": "unhealthy", "slo_breaches": ["latency"]}
        transport["script"] = [lambda: http_error(503, doc)]
        client = ServeClient("http://test", retries=5)
        assert client.health() == doc
        assert transport["attempts"] == 1    # the answer IS the answer

    def test_health_without_a_document_still_raises(self, transport):
        transport["script"] = [lambda: http_error(503)] * 1
        client = ServeClient("http://test", retries=0)
        with pytest.raises(ServeClientError):
            client.health()


class TestHealthzGate:
    """Server side: an SLO-unhealthy shard answers 503 so a load
    balancer can eject it — with the health document still attached."""

    def test_unhealthy_service_healthz_is_503(self, make_service):
        import urllib.request
        service = make_service(StubRunner(), workers=1)
        real = service.health()
        assert real["health"] == "healthy"
        service.health = lambda: dict(real, health="unhealthy")
        with StcoServer(service) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{server.url}/healthz",
                                       timeout=10)
            assert err.value.code == 503
            assert err.value.headers["Retry-After"] == "5"
            body = json.loads(err.value.read().decode("utf-8"))
            assert body["health"] == "unhealthy"
            # The retrying client still gets the document, instantly.
            client = ServeClient(server.url, retries=3)
            assert client.health()["health"] == "unhealthy"

    def test_healthy_service_healthz_is_200(self, make_service):
        import urllib.request
        service = make_service(StubRunner(), workers=1)
        with StcoServer(service) as server:
            with urllib.request.urlopen(f"{server.url}/healthz",
                                        timeout=10) as resp:
                assert resp.status == 200

    def test_degraded_is_not_ejected(self, make_service):
        """Only ``unhealthy`` trips the 503 — a degraded shard still
        serves (ejecting on the warning level would flap)."""
        import urllib.request
        service = make_service(StubRunner(), workers=1)
        real = service.health()
        service.health = lambda: dict(real, health="degraded")
        with StcoServer(service) as server:
            with urllib.request.urlopen(f"{server.url}/healthz",
                                        timeout=10) as resp:
                assert resp.status == 200
                body = json.loads(resp.read().decode("utf-8"))
                assert body["health"] == "degraded"

    def test_submission_survives_a_restarting_shard(self, make_service,
                                                    tmp_path):
        """End-to-end retry: the first submit hits a dead port, the
        retry (same client call) lands on the live server."""
        service = make_service(StubRunner(), workers=1)
        with StcoServer(service) as server:
            real_url = server.url
            flaky_calls = {"n": 0}
            client = ServeClient(real_url, retries=2, backoff_s=0.01)
            original = client_module.urllib.request.urlopen

            def flaky(request, timeout=None):
                flaky_calls["n"] += 1
                if flaky_calls["n"] == 1:
                    raise urllib.error.URLError(
                        ConnectionRefusedError(111, "refused"))
                return original(request, timeout=timeout)

            client_module.urllib.request.urlopen = flaky
            try:
                job = client.submit(make_config(seed=61))
            finally:
                client_module.urllib.request.urlopen = original
            assert flaky_calls["n"] == 2
            assert client.wait(job["job_id"], timeout_s=10)["state"] \
                == "succeeded"
