"""Observability through the serve stack: gauges agree with the store,
the metrics endpoint exports both formats, SSE streams live events, and
every finished job carries a span tree whose serve stages sum exactly
to its ledger."""

import json
import threading
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry, get_registry, use_registry
from repro.serve import ServeClient, ServeService, StcoServer
from repro.serve.jobs import JobState

from .conftest import StubRunner, make_config


@pytest.fixture
def scoped_registry():
    """A fresh registry for services constructed inside the test, so
    assertions see only this test's traffic."""
    registry = MetricsRegistry()
    with use_registry(registry):
        yield registry


class TestGaugesMatchStore:
    def test_queue_and_state_gauges_track_counts(self, tmp_path,
                                                 scoped_registry,
                                                 make_service):
        runner = StubRunner(rounds=2)
        gate = runner.gate = threading.Event()
        service = make_service(runner, workers=1)
        running = service.submit(make_config(seed=81))
        assert runner.started.wait(10)
        queued = [service.submit(make_config(seed=82 + i))
                  for i in range(3)]
        snap = scoped_registry.snapshot()   # collectors sample now
        counts = service.store.counts()
        assert snap["repro_serve_queue_depth"] == counts["queued"] == 3
        assert snap['repro_serve_jobs{state="running"}'] \
            == counts["running"] == 1
        gate.set()
        for job in [running] + queued:
            service.wait(job.job_id, timeout=10)
        snap = scoped_registry.snapshot()
        counts = service.store.counts()
        assert snap["repro_serve_queue_depth"] == counts["queued"] == 0
        assert snap['repro_serve_jobs{state="succeeded"}'] \
            == counts["succeeded"] == 4
        assert snap['repro_serve_jobs_total{outcome="succeeded"}'] == 4

    def test_coalescer_counters_match_ground_truth(self, scoped_registry,
                                                   make_service):
        runner = StubRunner(rounds=1)
        gate = runner.gate = threading.Event()
        service = make_service(runner, workers=1)
        cfg = make_config(seed=90)
        leader = service.submit(cfg)
        assert runner.started.wait(10)
        follower = service.submit(cfg)      # rides the in-flight leader
        gate.set()
        service.wait(leader.job_id, timeout=10)
        service.wait(follower.job_id, timeout=10)
        duplicate = service.submit(cfg)     # answered from the report
        assert duplicate.state == JobState.SUCCEEDED
        snap = scoped_registry.snapshot()
        truth = service.coalescer.counters
        for role in ("leaders", "followers", "duplicates"):
            series = f'repro_serve_coalescer_total{{role="{role[:-1]}"}}'
            assert snap[series] == truth[role]
        assert truth == {"leaders": 1, "followers": 1, "duplicates": 1}

    def test_collector_removed_on_close(self, tmp_path, scoped_registry):
        from repro.api import Workspace
        service = ServeService(Workspace(tmp_path / "ws"),
                               jobs_dir=tmp_path / "jobs", workers=1,
                               runner=StubRunner(rounds=1))
        assert len(scoped_registry._collectors) == 1
        service.close(timeout=5)
        assert scoped_registry._collectors == []


class TestMetricsEndpoint:
    def test_both_formats_and_request_counter(self, scoped_registry,
                                              make_service):
        runner = StubRunner(rounds=2)
        service = make_service(runner, workers=1)
        with StcoServer(service) as server:
            client = ServeClient(server.url)
            job = client.submit(make_config(seed=70).to_dict())
            client.wait(job["job_id"], timeout_s=10)
            text = client.metrics()
            assert "# TYPE repro_serve_jobs_total counter" in text
            assert 'repro_serve_jobs_total{outcome="succeeded"} 1' \
                in text
            assert "repro_serve_queue_depth 0" in text
            doc = client.metrics("json")
            families = doc["metrics"]
            assert families["repro_serve_jobs_total"]["type"] == "counter"
            requests = families["repro_http_requests_total"]["series"]
            routes = {tuple(sorted(s["labels"].items())): s["value"]
                      for s in requests}
            # Job ids collapse to a template: bounded cardinality.
            assert all("{id}" in dict(k)["route"]
                       for k in routes
                       if "/runs/" in dict(k)["route"])

    def test_content_type_is_prometheus_text(self, make_service):
        service = make_service(StubRunner(), workers=1)
        with StcoServer(service) as server:
            with urllib.request.urlopen(
                    f"{server.url}/v1/metrics", timeout=10) as resp:
                assert resp.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4")
                assert b"# TYPE" in resp.read()


class TestSseStreaming:
    def test_stream_delivers_live_rounds_then_trace_then_end(
            self, make_service):
        runner = StubRunner(rounds=3, delay_s=0.05)
        service = make_service(runner, workers=1)
        with StcoServer(service, sse_heartbeat_s=0.2) as server:
            client = ServeClient(server.url)
            job_id = client.submit(make_config(seed=71).to_dict())[
                "job_id"]
            got = list(client.events(job_id, stream=True))
        kinds = [g["event"] for g in got]
        assert kinds == ["progress", "progress", "progress", "trace",
                         "end"]
        assert [g["data"]["round"] for g in got[:3]] == [1, 2, 3]
        assert got[-1]["data"]["state"] == JobState.SUCCEEDED
        assert got[-1]["data"]["job_id"] == job_id

    def test_follower_streams_its_leaders_feed(self, make_service):
        runner = StubRunner(rounds=2, delay_s=0.05)
        gate = runner.gate = threading.Event()
        service = make_service(runner, workers=1)
        with StcoServer(service, sse_heartbeat_s=0.2) as server:
            client = ServeClient(server.url)
            cfg = make_config(seed=72).to_dict()
            leader = client.submit(cfg)["job_id"]
            assert runner.started.wait(10)
            follower = client.submit(cfg)["job_id"]
            assert follower != leader
            gate.set()
            got = list(client.events(follower, stream=True))
        end = got[-1]["data"]
        assert end["source"] == leader
        assert [g["data"]["round"] for g in got
                if g["event"] == "progress"] == [1, 2]

    def test_stream_of_finished_job_replays_and_ends(self,
                                                     make_service):
        service = make_service(StubRunner(rounds=2), workers=1)
        with StcoServer(service, sse_heartbeat_s=0.2) as server:
            client = ServeClient(server.url)
            job_id = client.submit(make_config(seed=73).to_dict())[
                "job_id"]
            client.wait(job_id, timeout_s=10)
            got = list(client.events(job_id, stream=True))
        assert [g["event"] for g in got] == \
            ["progress", "progress", "trace", "end"]

    def test_unknown_job_404s_before_headers(self, make_service):
        service = make_service(StubRunner(), workers=1)
        with StcoServer(service) as server:
            client = ServeClient(server.url)
            from repro.serve import ServeClientError
            with pytest.raises(ServeClientError) as err:
                list(client.events("nope", stream=True))
            assert err.value.status == 404


class TestJobTrace:
    def test_trace_stages_sum_to_ledger_total(self, make_service):
        runner = StubRunner(rounds=2, delay_s=0.02)
        service = make_service(runner, workers=1)
        job = service.submit(make_config(seed=74))
        done = service.wait(job.job_id, timeout=10)
        trace = done.events[-1]
        assert trace["kind"] == "trace"
        tree = trace["trace"]
        assert tree["name"] == "serve.job"
        stages = {c["name"]: c["wall_s"] for c in tree["children"]}
        assert set(stages) == {"serve.queued", "serve.lock_wait",
                               "serve.execute"}
        assert sum(stages.values()) == pytest.approx(
            sum(done.ledger.values()), abs=1e-9)
        assert tree["attrs"]["state"] == JobState.SUCCEEDED

    def test_cancelled_job_still_records_its_trace(self, make_service):
        runner = StubRunner(rounds=50, delay_s=0.02)
        service = make_service(runner, workers=1)
        job = service.submit(make_config(seed=75))
        assert runner.started.wait(10)
        assert service.cancel(job.job_id)
        done = service.wait(job.job_id, timeout=10)
        assert done.state == JobState.CANCELLED
        trace = done.events[-1]
        assert trace["kind"] == "trace"
        assert trace["trace"]["attrs"]["state"] == JobState.CANCELLED
        assert trace["trace"]["error"] == "JobCancelled"

    def test_trace_survives_store_reload(self, tmp_path, make_service):
        from repro.serve.jobs import JobStore
        service = make_service(StubRunner(rounds=1), workers=1)
        job = service.submit(make_config(seed=76))
        service.wait(job.job_id, timeout=10)
        service.close(timeout=5)
        fresh = JobStore(tmp_path / "jobs")
        events = fresh.get(job.job_id).events
        assert events[-1]["kind"] == "trace"
        assert json.dumps(events[-1]["trace"])   # JSON-clean
