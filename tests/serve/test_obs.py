"""Observability through the serve stack: gauges agree with the store,
the metrics endpoint exports both formats, SSE streams live events,
every finished job carries a span tree whose serve stages sum exactly
to its ledger, SLO rules drive ``/healthz``, and the per-job profiler
accounts for the execute stage."""

import json
import socket
import threading
import time
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry, get_registry, use_registry
from repro.obs.slo import SloRule
from repro.serve import ServeClient, ServeService, StcoServer
from repro.serve.jobs import JobState

from .conftest import StubRunner, make_config


@pytest.fixture
def scoped_registry():
    """A fresh registry for services constructed inside the test, so
    assertions see only this test's traffic."""
    registry = MetricsRegistry()
    with use_registry(registry):
        yield registry


class TestGaugesMatchStore:
    def test_queue_and_state_gauges_track_counts(self, tmp_path,
                                                 scoped_registry,
                                                 make_service):
        runner = StubRunner(rounds=2)
        gate = runner.gate = threading.Event()
        service = make_service(runner, workers=1)
        running = service.submit(make_config(seed=81))
        assert runner.started.wait(10)
        queued = [service.submit(make_config(seed=82 + i))
                  for i in range(3)]
        snap = scoped_registry.snapshot()   # collectors sample now
        counts = service.store.counts()
        assert snap["repro_serve_queue_depth"] == counts["queued"] == 3
        assert snap['repro_serve_jobs{state="running"}'] \
            == counts["running"] == 1
        gate.set()
        for job in [running] + queued:
            service.wait(job.job_id, timeout=10)
        snap = scoped_registry.snapshot()
        counts = service.store.counts()
        assert snap["repro_serve_queue_depth"] == counts["queued"] == 0
        assert snap['repro_serve_jobs{state="succeeded"}'] \
            == counts["succeeded"] == 4
        assert snap['repro_serve_jobs_total{outcome="succeeded"}'] == 4

    def test_coalescer_counters_match_ground_truth(self, scoped_registry,
                                                   make_service):
        runner = StubRunner(rounds=1)
        gate = runner.gate = threading.Event()
        service = make_service(runner, workers=1)
        cfg = make_config(seed=90)
        leader = service.submit(cfg)
        assert runner.started.wait(10)
        follower = service.submit(cfg)      # rides the in-flight leader
        gate.set()
        service.wait(leader.job_id, timeout=10)
        service.wait(follower.job_id, timeout=10)
        duplicate = service.submit(cfg)     # answered from the report
        assert duplicate.state == JobState.SUCCEEDED
        snap = scoped_registry.snapshot()
        truth = service.coalescer.counters
        for role in ("leaders", "followers", "duplicates"):
            series = f'repro_serve_coalescer_total{{role="{role[:-1]}"}}'
            assert snap[series] == truth[role]
        assert truth == {"leaders": 1, "followers": 1, "duplicates": 1}

    def test_collector_removed_on_close(self, tmp_path, scoped_registry):
        from repro.api import Workspace
        service = ServeService(Workspace(tmp_path / "ws"),
                               jobs_dir=tmp_path / "jobs", workers=1,
                               runner=StubRunner(rounds=1))
        assert len(scoped_registry._collectors) == 1
        service.close(timeout=5)
        assert scoped_registry._collectors == []


class TestMetricsEndpoint:
    def test_both_formats_and_request_counter(self, scoped_registry,
                                              make_service):
        runner = StubRunner(rounds=2)
        service = make_service(runner, workers=1)
        with StcoServer(service) as server:
            client = ServeClient(server.url)
            job = client.submit(make_config(seed=70).to_dict())
            client.wait(job["job_id"], timeout_s=10)
            text = client.metrics()
            assert "# TYPE repro_serve_jobs_total counter" in text
            assert 'repro_serve_jobs_total{outcome="succeeded"} 1' \
                in text
            assert "repro_serve_queue_depth 0" in text
            doc = client.metrics("json")
            families = doc["metrics"]
            assert families["repro_serve_jobs_total"]["type"] == "counter"
            requests = families["repro_http_requests_total"]["series"]
            routes = {tuple(sorted(s["labels"].items())): s["value"]
                      for s in requests}
            # Job ids collapse to a template: bounded cardinality.
            assert all("{id}" in dict(k)["route"]
                       for k in routes
                       if "/runs/" in dict(k)["route"])

    def test_content_type_is_prometheus_text(self, make_service):
        service = make_service(StubRunner(), workers=1)
        with StcoServer(service) as server:
            with urllib.request.urlopen(
                    f"{server.url}/v1/metrics", timeout=10) as resp:
                assert resp.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4")
                assert b"# TYPE" in resp.read()


class TestSseStreaming:
    def test_stream_delivers_live_rounds_then_trace_then_end(
            self, make_service):
        runner = StubRunner(rounds=3, delay_s=0.05)
        service = make_service(runner, workers=1)
        with StcoServer(service, sse_heartbeat_s=0.2) as server:
            client = ServeClient(server.url)
            job_id = client.submit(make_config(seed=71).to_dict())[
                "job_id"]
            got = list(client.events(job_id, stream=True))
        kinds = [g["event"] for g in got]
        assert kinds == ["progress", "progress", "progress", "profile",
                         "trace", "end"]
        assert [g["data"]["round"] for g in got[:3]] == [1, 2, 3]
        assert got[-1]["data"]["state"] == JobState.SUCCEEDED
        assert got[-1]["data"]["job_id"] == job_id

    def test_follower_streams_its_leaders_feed(self, make_service):
        runner = StubRunner(rounds=2, delay_s=0.05)
        gate = runner.gate = threading.Event()
        service = make_service(runner, workers=1)
        with StcoServer(service, sse_heartbeat_s=0.2) as server:
            client = ServeClient(server.url)
            cfg = make_config(seed=72).to_dict()
            leader = client.submit(cfg)["job_id"]
            assert runner.started.wait(10)
            follower = client.submit(cfg)["job_id"]
            assert follower != leader
            gate.set()
            got = list(client.events(follower, stream=True))
        end = got[-1]["data"]
        assert end["source"] == leader
        assert [g["data"]["round"] for g in got
                if g["event"] == "progress"] == [1, 2]

    def test_stream_of_finished_job_replays_and_ends(self,
                                                     make_service):
        service = make_service(StubRunner(rounds=2), workers=1)
        with StcoServer(service, sse_heartbeat_s=0.2) as server:
            client = ServeClient(server.url)
            job_id = client.submit(make_config(seed=73).to_dict())[
                "job_id"]
            client.wait(job_id, timeout_s=10)
            got = list(client.events(job_id, stream=True))
        assert [g["event"] for g in got] == \
            ["progress", "progress", "profile", "trace", "end"]

    def test_unknown_job_404s_before_headers(self, make_service):
        service = make_service(StubRunner(), workers=1)
        with StcoServer(service) as server:
            client = ServeClient(server.url)
            from repro.serve import ServeClientError
            with pytest.raises(ServeClientError) as err:
                list(client.events("nope", stream=True))
            assert err.value.status == 404


class TestJobTrace:
    def test_trace_stages_sum_to_ledger_total(self, make_service):
        runner = StubRunner(rounds=2, delay_s=0.02)
        service = make_service(runner, workers=1)
        job = service.submit(make_config(seed=74))
        done = service.wait(job.job_id, timeout=10)
        trace = done.events[-1]
        assert trace["kind"] == "trace"
        tree = trace["trace"]
        assert tree["name"] == "serve.job"
        stages = {c["name"]: c["wall_s"] for c in tree["children"]}
        assert set(stages) == {"serve.queued", "serve.lock_wait",
                               "serve.execute"}
        assert sum(stages.values()) == pytest.approx(
            sum(done.ledger.values()), abs=1e-9)
        assert tree["attrs"]["state"] == JobState.SUCCEEDED

    def test_cancelled_job_still_records_its_trace(self, make_service):
        runner = StubRunner(rounds=50, delay_s=0.02)
        service = make_service(runner, workers=1)
        job = service.submit(make_config(seed=75))
        assert runner.started.wait(10)
        assert service.cancel(job.job_id)
        done = service.wait(job.job_id, timeout=10)
        assert done.state == JobState.CANCELLED
        trace = done.events[-1]
        assert trace["kind"] == "trace"
        assert trace["trace"]["attrs"]["state"] == JobState.CANCELLED
        assert trace["trace"]["error"] == "JobCancelled"

    def test_trace_survives_store_reload(self, tmp_path, make_service):
        from repro.serve.jobs import JobStore
        service = make_service(StubRunner(rounds=1), workers=1)
        job = service.submit(make_config(seed=76))
        service.wait(job.job_id, timeout=10)
        service.close(timeout=5)
        fresh = JobStore(tmp_path / "jobs")
        events = fresh.get(job.job_id).events
        assert events[-1]["kind"] == "trace"
        assert json.dumps(events[-1]["trace"])   # JSON-clean


def _open_sse(server, job_id, timeout=10.0):
    """A raw, deliberately primitive SSE consumer socket."""
    sock = socket.create_connection((server.host, server.port),
                                    timeout=timeout)
    sock.sendall((f"GET /v1/runs/{job_id}/events?stream=1 HTTP/1.1\r\n"
                  f"Host: {server.host}\r\n"
                  "Accept: text/event-stream\r\n\r\n").encode("ascii"))
    return sock


class TestSseUnderSlowConsumer:
    def test_heartbeats_keep_flowing_while_the_job_is_quiet(
            self, make_service):
        runner = StubRunner(rounds=1)
        gate = runner.gate = threading.Event()
        service = make_service(runner, workers=1)
        with StcoServer(service, sse_heartbeat_s=0.05) as server:
            job = service.submit(make_config(seed=60))
            assert runner.started.wait(10)
            sock = _open_sse(server, job.job_id)
            try:
                buf = b""
                deadline = time.monotonic() + 5
                while buf.count(b": heartbeat") < 3 \
                        and time.monotonic() < deadline:
                    buf += sock.recv(4096)
                # The run emitted nothing, yet the stream stayed alive.
                assert buf.count(b": heartbeat") >= 3
                assert b"event: progress" not in buf
            finally:
                gate.set()
                sock.close()
        done = service.wait(job.job_id, timeout=10)
        assert done.state == JobState.SUCCEEDED

    def test_slow_then_disconnecting_consumer_does_not_wedge(
            self, make_service):
        runner = StubRunner(rounds=40, delay_s=0.02)
        service = make_service(runner, workers=1)
        with StcoServer(service, sse_heartbeat_s=0.05) as server:
            job = service.submit(make_config(seed=61))
            assert runner.started.wait(10)
            sock = _open_sse(server, job.job_id)
            for _ in range(3):           # drain a trickle, slowly…
                sock.recv(64)
                time.sleep(0.05)
            sock.close()                 # …then hang up mid-run
            # The worker never blocks on the consumer: the job still
            # finishes, and the server keeps answering.
            done = service.wait(job.job_id, timeout=30)
            assert done.state == JobState.SUCCEEDED
            client = ServeClient(server.url)
            assert client.health()["status"] == "ok"
            replay = list(client.events(job.job_id, stream=True))
            assert replay[-1]["event"] == "end"
            assert replay[-1]["data"]["state"] == JobState.SUCCEEDED


class TestSloThroughServe:
    def test_injected_latency_breaches_then_recovers(
            self, scoped_registry, make_service):
        """ok → breach → ok across windows, visible in /healthz."""
        rule = SloRule(name="execute-latency", kind="latency",
                       series='repro_span_seconds{span="serve.execute"}',
                       objective=0.05, window_s=2.0)
        runner = StubRunner(rounds=1)
        service = make_service(runner, workers=1,
                               series_interval_s=0, slo_rules=[rule])
        rec = service.recorder
        with StcoServer(service) as server:
            client = ServeClient(server.url)
            rec.sample()
            service.wait(service.submit(make_config(seed=62)).job_id,
                         timeout=10)
            rec.sample()
            healthy = client.health()
            assert healthy["health"] == "healthy"
            assert healthy["slo_breaches"] == []
            assert client.slo()["health"] == "healthy"

            runner.delay_s = 0.2         # inject latency > objective
            service.wait(service.submit(make_config(seed=63)).job_id,
                         timeout=10)
            rec.sample()
            breached = client.slo()
            assert breached["health"] == "unhealthy"
            states = {r["name"]: r for r in breached["rules"]}
            assert states["execute-latency"]["state"] == "breach"
            assert states["execute-latency"]["value"] > 0.05
            assert states["execute-latency"]["burn_rate"] > 1.0
            degraded = client.health()
            assert degraded["health"] == "unhealthy"
            assert degraded["slo_breaches"] == ["execute-latency"]
            assert degraded["status"] == "ok"   # liveness unchanged

            time.sleep(2.1)              # the burst ages out of window
            rec.sample()
            time.sleep(0.05)
            rec.sample()
            recovered = client.slo()
            assert recovered["health"] == "healthy"
            assert recovered["rules"][0]["state"] == "ok"
            assert client.health()["health"] == "healthy"

    def test_slo_endpoint_reports_series_vitals(self, scoped_registry,
                                                make_service):
        service = make_service(StubRunner(), workers=1,
                               series_interval_s=0)
        with StcoServer(service) as server:
            report = ServeClient(server.url).slo()
            assert {r["name"] for r in report["rules"]} == {
                "execute-latency", "job-error-rate",
                "cache-hit-ratio", "queue-depth", "predict-drift"}
            assert report["series"]["interval_s"] == 0

    def test_default_rules_stay_quiet_under_stub_traffic(
            self, scoped_registry, make_service):
        service = make_service(StubRunner(rounds=2), workers=1,
                               series_interval_s=0)
        service.recorder.sample()
        for seed in (64, 65):
            service.wait(service.submit(make_config(seed=seed)).job_id,
                         timeout=10)
        service.recorder.sample()
        report = service.slo_report()
        assert report["health"] == "healthy"
        assert all(r["state"] == "ok" for r in report["rules"])


class TestSeriesRecorderThroughServe:
    def test_recorder_persists_history_under_the_workspace(
            self, scoped_registry, tmp_path, make_service):
        service = make_service(StubRunner(rounds=1), workers=1,
                               series_interval_s=0)
        service.wait(service.submit(make_config(seed=66)).job_id,
                     timeout=10)
        service.recorder.sample()
        path = (service.workspace.root / "obs" / "series"
                / "samples.jsonl")
        assert path.exists()
        sample = json.loads(path.read_text().splitlines()[-1])
        assert sample["values"][
            'repro_serve_jobs_total{outcome="succeeded"}'] == 1

    def test_metrics_window_query_over_http(self, scoped_registry,
                                            make_service):
        service = make_service(StubRunner(rounds=2), workers=1,
                               series_interval_s=0)
        with StcoServer(service) as server:
            client = ServeClient(server.url)
            service.recorder.sample()
            client.wait(client.submit(
                make_config(seed=67).to_dict())["job_id"],
                timeout_s=10)
            service.recorder.sample()
            report = client.metrics(window_s=60)
            assert report["samples"] == 2
            assert report["deltas"][
                'repro_serve_jobs_total{outcome="succeeded"}'] == 1
            exec_q = report["quantiles"][
                'repro_span_seconds{span="serve.execute"}']
            assert exec_q["p95"] > 0
            # Malformed window is a 400, not a 500.
            from repro.serve import ServeClientError
            with pytest.raises(ServeClientError) as err:
                client._request("GET", "/v1/metrics?window=soon")
            assert err.value.status == 400

    def test_recorder_stops_with_the_service(self, scoped_registry,
                                             tmp_path):
        from repro.api import Workspace
        service = ServeService(Workspace(tmp_path / "ws"),
                               jobs_dir=tmp_path / "jobs", workers=1,
                               runner=StubRunner(rounds=1),
                               series_interval_s=0.01)
        assert service.recorder.stats()["running"]
        service.close(timeout=5)
        assert not service.recorder.stats()["running"]


class TestJobProfile:
    def test_profile_event_attributes_execute_wall_time(
            self, make_service):
        runner = StubRunner(rounds=4, delay_s=0.03)
        service = make_service(runner, workers=1,
                               profile_interval_s=0.005)
        job = service.submit(make_config(seed=77))
        done = service.wait(job.job_id, timeout=10)
        found = service.profile(job.job_id)
        profile = found["profile"]
        assert profile is not None
        assert profile["samples"] >= 5
        assert profile["attributed_s"] >= 0.8 * profile["duration_s"]
        # The profiled window is the runner call inside the execute
        # span, so its duration cannot exceed the execute ledger.
        assert profile["duration_s"] <= \
            done.ledger["execution_s"] + 0.02
        assert any("conftest" in stack for stack in profile["stacks"])

    def test_profile_http_text_and_json(self, make_service):
        service = make_service(StubRunner(rounds=2, delay_s=0.02),
                               workers=1, profile_interval_s=0.005)
        with StcoServer(service) as server:
            client = ServeClient(server.url)
            job_id = client.submit(make_config(seed=78).to_dict())[
                "job_id"]
            client.wait(job_id, timeout_s=10)
            text = client.profile(job_id)
            for line in text.strip().splitlines():
                frames, _, weight = line.rpartition(" ")
                assert frames and int(weight) > 0
            doc = client.profile(job_id, format="json")
            assert doc["job_id"] == job_id
            assert doc["profile"]["samples"] >= 1

    def test_profiling_off_means_404_text_null_json(self,
                                                    make_service):
        service = make_service(StubRunner(rounds=1), workers=1,
                               profile_interval_s=0)
        with StcoServer(service) as server:
            client = ServeClient(server.url)
            job_id = client.submit(make_config(seed=79).to_dict())[
                "job_id"]
            client.wait(job_id, timeout_s=10)
            from repro.serve import ServeClientError
            with pytest.raises(ServeClientError) as err:
                client.profile(job_id)
            assert err.value.status == 404
            assert client.profile(job_id, format="json")[
                "profile"] is None

    def test_follower_reports_its_leaders_profile(self, make_service):
        runner = StubRunner(rounds=2, delay_s=0.02)
        gate = runner.gate = threading.Event()
        service = make_service(runner, workers=1,
                               profile_interval_s=0.005)
        cfg = make_config(seed=80)
        leader = service.submit(cfg)
        assert runner.started.wait(10)
        follower = service.submit(cfg)
        gate.set()
        service.wait(leader.job_id, timeout=10)
        service.wait(follower.job_id, timeout=10)
        found = service.profile(follower.job_id)
        assert found["source"] == leader.job_id
        assert found["profile"] is not None


class TestRealTierProfile:
    def test_profile_covers_a_real_jobs_execute_stage(
            self, serve_ws, warm_report, tmp_path):
        """Acceptance: ≥ 80% of a real job's execute-stage wall time
        lands in collapsed stacks."""
        service = ServeService(serve_ws, jobs_dir=tmp_path / "jobs",
                               workers=1, profile_interval_s=0.002)
        try:
            config = make_config(seed=23, optimizer="qlearning",
                                 iterations=8)
            job = service.submit(config)
            done = service.wait(job.job_id, timeout=300)
            assert done.state == JobState.SUCCEEDED
            profile = service.profile(job.job_id)["profile"]
            assert profile is not None
            execute_s = done.ledger["execution_s"]
            assert profile["attributed_s"] >= 0.8 * execute_s
            # Stacks point into the real pipeline, not just plumbing.
            joined = "\n".join(profile["stacks"])
            assert "runner" in joined or "driver" in joined \
                or "engine" in joined
        finally:
            service.close(timeout=10)
