"""HTTP front end + ServeClient round trips on an ephemeral port.

One module-scoped server (stub runner, real sockets) covers the API
surface and error mapping; ``TestRealHttpRoundTrip`` boots a second
server over the warm session workspace and drives a genuine run
end-to-end through :class:`ServeClient`.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.api import Workspace
from repro.serve import (JobState, ServeClient, ServeClientError,
                         ServeService, StcoServer)

from tests.serve.conftest import StubRunner, make_config

CFG = make_config().to_dict()


@pytest.fixture(scope="module")
def stub_stack(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve_http")
    runner = StubRunner()
    service = ServeService(Workspace(tmp / "ws"),
                           jobs_dir=tmp / "jobs", workers=2,
                           runner=runner)
    with StcoServer(service) as server:
        yield server, ServeClient(server.url), runner
    service.close(timeout=5)


@pytest.fixture(scope="module")
def client(stub_stack):
    return stub_stack[1]


class TestEndpoints:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert "jobs" in health and "coalescer" in health

    def test_submit_wait_report(self, client):
        submitted = client.submit(CFG)
        assert submitted["state"] == JobState.SUBMITTED
        assert submitted["content_key"]
        job = client.wait(submitted["job_id"], timeout_s=10)
        assert job["state"] == JobState.SUCCEEDED
        assert job["report"]["best_reward"] == 3.0
        assert job["config"]["mode"] == "search"

    def test_events_endpoint(self, client):
        job_id = client.submit(make_config(seed=31))["job_id"]
        client.wait(job_id, timeout_s=10)
        events = client.events(job_id)
        assert [e["round"] for e in events
                if e.get("kind") not in ("trace", "profile")] == [1, 2, 3]
        # The worker appended its span tree as the final event.
        assert events[-1]["kind"] == "trace"
        assert events[-1]["trace"]["name"] == "serve.job"

    def test_summary_view_is_light(self, client):
        job_id = client.submit(make_config(seed=36))["job_id"]
        client.wait(job_id, timeout_s=10)
        summary = client._request("GET",
                                  f"/v1/runs/{job_id}?view=summary")
        assert summary["state"] == JobState.SUCCEEDED
        assert "report" not in summary and "config" not in summary
        # Count, not the payload: 3 progress rounds + the profile and
        # trace events.
        assert summary["events"] == 5

    def test_jobs_listing_is_light(self, client):
        job_id = client.submit(make_config(seed=32))["job_id"]
        client.wait(job_id, timeout_s=10)
        jobs = client.jobs()
        assert any(j["job_id"] == job_id for j in jobs)
        assert all("report" not in j and "config" not in j
                   for j in jobs)

    def test_coalesced_submission_reports_its_leader(self, client):
        config = make_config(seed=33)
        first = client.submit(config)
        second = client.submit(config)     # same key: follower or dup
        job = client.wait(second["job_id"], timeout_s=10)
        assert job["coalesced_with"] == first["job_id"]
        assert job["report"] == client.wait(first["job_id"],
                                            timeout_s=10)["report"]

    def test_cancel_endpoint(self, stub_stack):
        server, client, runner = stub_stack
        runner.rounds = 50
        runner.delay_s = 0.02
        try:
            job_id = client.submit(make_config(seed=34))["job_id"]
            assert runner.started.wait(10)
            result = client.cancel(job_id)
            assert result["cancelled"]
            assert client.wait(job_id,
                               timeout_s=10)["state"] == \
                JobState.CANCELLED
        finally:
            runner.rounds = 3
            runner.delay_s = 0.0

    def test_workspace_stats(self, client):
        stats = client.workspace_stats()
        assert "workspace" in stats and "engines" in stats
        assert "artifacts" in stats["workspace"]

    def test_bare_config_document_submission(self, stub_stack):
        server, client, _ = stub_stack
        body = json.dumps(make_config(seed=35).to_dict()).encode()
        request = urllib.request.Request(
            f"{server.url}/v1/runs", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=10) as resp:
            assert resp.status == 202
            payload = json.loads(resp.read())
        assert payload["job_id"]


class TestErrorMapping:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeClientError) as exc:
            client.job("doesnotexist")
        assert exc.value.status == 404

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServeClientError) as exc:
            client._request("GET", "/v1/nope")
        assert exc.value.status == 404

    def test_invalid_config_is_400(self, client):
        with pytest.raises(ServeClientError) as exc:
            client.submit({"mode": "warp"})
        assert exc.value.status == 400
        assert "mode" in exc.value.message

    def test_malformed_json_is_400(self, stub_stack):
        server, _, _ = stub_stack
        request = urllib.request.Request(
            f"{server.url}/v1/runs", data=b"{oops", method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=10)
        assert exc.value.code == 400

    def test_empty_body_is_400(self, client):
        with pytest.raises(ServeClientError) as exc:
            client._request("POST", "/v1/runs")
        assert exc.value.status == 400

    def test_non_integer_priority_is_400(self, client):
        with pytest.raises(ServeClientError) as exc:
            client._request("POST", "/v1/runs",
                            {"config": CFG, "priority": "high"})
        assert exc.value.status == 400
        assert "priority" in exc.value.message


class TestSubmitCli:
    def test_repro_submit_wait_round_trip(self, stub_stack, tmp_path,
                                          capsys):
        from repro.api.cli import main
        server, _, _ = stub_stack
        config_path = tmp_path / "cfg.json"
        make_config(seed=41).save(config_path)
        out_path = tmp_path / "job.json"
        code = main(["submit", str(config_path), "--url", server.url,
                     "--wait", "--out", str(out_path), "--quiet"])
        assert code == 0
        record = json.loads(out_path.read_text())
        assert record["state"] == JobState.SUCCEEDED
        assert record["report"]["best_reward"] == 3.0

    def test_repro_submit_fire_and_forget_prints_job_id(
            self, stub_stack, tmp_path, capsys):
        from repro.api.cli import main
        server, client, _ = stub_stack
        config_path = tmp_path / "cfg.json"
        make_config(seed=42).save(config_path)
        assert main(["submit", str(config_path), "--url",
                     server.url]) == 0
        job_id = capsys.readouterr().out.strip().splitlines()[-1]
        assert client.wait(job_id, timeout_s=10)["state"] == \
            JobState.SUCCEEDED


class TestRealHttpRoundTrip:
    def test_submit_poll_report_matches_direct_run(self, serve_ws,
                                                   warm_report,
                                                   tmp_path):
        service = ServeService(serve_ws, jobs_dir=tmp_path / "jobs",
                               workers=1)
        with StcoServer(service) as server:
            client = ServeClient(server.url)
            report = client.run(make_config(), timeout_s=300)
            # Same config, same (warm) workspace as the session
            # baseline: the service answer equals the library answer.
            assert report.best_reward == warm_report.best_reward
            assert report.best_corner == warm_report.best_corner
            job_id = client.jobs()[-1]["job_id"]
            assert client.events(job_id) or \
                client.job(job_id)["coalesced_with"]
        service.close(timeout=10)
