"""JobStore: lifecycle, persistence, scheduling, crash recovery."""

import json

import pytest

from repro.serve import JobState, JobStore, UnknownJobError


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs")


CFG = {"mode": "search"}


class TestLifecycle:
    def test_submit_persists_record(self, store, tmp_path):
        job = store.submit(CFG, priority=3, content_key="k1")
        data = json.loads(
            (tmp_path / "jobs" / f"{job.job_id}.json").read_text())
        assert data["state"] == JobState.SUBMITTED
        assert data["priority"] == 3
        assert data["content_key"] == "k1"
        assert data["config"] == CFG
        assert data["submitted_s"] > 0

    def test_claim_marks_running_and_counts_attempts(self, store):
        job = store.submit(CFG)
        claimed = store.claim(timeout=1)
        assert claimed.job_id == job.job_id
        assert claimed.state == JobState.RUNNING
        assert claimed.attempts == 1
        assert claimed.started_s > 0

    def test_finish_requires_terminal_state(self, store):
        job = store.submit(CFG)
        with pytest.raises(ValueError):
            store.finish(job.job_id, JobState.RUNNING)

    def test_full_success_path(self, store):
        job = store.submit(CFG)
        store.claim(timeout=1)
        store.add_event(job.job_id, {"round": 1})
        done = store.finish(job.job_id, JobState.SUCCEEDED,
                            report={"best_reward": 1.5},
                            ledger={"execution_s": 0.1})
        assert done.terminal
        assert done.report == {"best_reward": 1.5}
        assert done.events == [{"round": 1}]
        assert done.ledger["execution_s"] == 0.1
        assert done.finished_s >= done.started_s

    def test_unknown_job_raises(self, store):
        with pytest.raises(UnknownJobError):
            store.get("nope")
        with pytest.raises(UnknownJobError):
            store.describe("nope")

    def test_claim_timeout_returns_none(self, store):
        assert store.claim(timeout=0.05) is None


class TestScheduling:
    def test_priority_then_fifo(self, store):
        low1 = store.submit(CFG, priority=0)
        high = store.submit(CFG, priority=5)
        low2 = store.submit(CFG, priority=0)
        order = [store.claim(timeout=1).job_id for _ in range(3)]
        assert order == [high.job_id, low1.job_id, low2.job_id]

    def test_cancelled_queued_jobs_are_skipped(self, store):
        first = store.submit(CFG)
        second = store.submit(CFG)
        assert store.cancel_queued(first.job_id)
        assert store.claim(timeout=1).job_id == second.job_id
        assert store.get(first.job_id).state == JobState.CANCELLED

    def test_cancel_queued_refuses_running(self, store):
        job = store.submit(CFG)
        store.claim(timeout=1)
        assert not store.cancel_queued(job.job_id)

    def test_parked_jobs_get_no_queue_slot(self, store):
        store.submit(CFG, enqueue=False)
        assert store.claim(timeout=0.05) is None

    def test_enqueue_parks_and_releases(self, store):
        job = store.submit(CFG, enqueue=False)
        store.enqueue(job.job_id)
        assert store.claim(timeout=1).job_id == job.job_id

    def test_boost_reorders_the_queue(self, store):
        low = store.submit(CFG, priority=0)
        high = store.submit(CFG, priority=5)
        assert store.boost(low.job_id, 9)
        assert not store.boost(low.job_id, 1)     # never lowers
        assert store.claim(timeout=1).job_id == low.job_id
        assert store.claim(timeout=1).job_id == high.job_id
        # The stale pre-boost heap entry was skipped, not double-run.
        assert store.claim(timeout=0.05) is None


class TestPersistence:
    def test_reload_round_trips_every_field(self, store, tmp_path):
        job = store.submit(CFG, priority=2, content_key="key")
        store.claim(timeout=1)
        store.add_event(job.job_id, {"round": 1, "best_reward": 0.5})
        store.finish(job.job_id, JobState.SUCCEEDED,
                     report={"ok": True}, ledger={"queued_s": 0.0})
        reloaded = JobStore(tmp_path / "jobs").get(job.job_id)
        original = store.get(job.job_id)
        assert reloaded.to_dict() == original.to_dict()

    def test_sequence_numbers_survive_restart(self, store, tmp_path):
        a = store.submit(CFG)
        fresh = JobStore(tmp_path / "jobs")
        b = fresh.submit(CFG)
        assert b.seq > a.seq             # FIFO order survives reloads


class TestRecovery:
    def test_interrupted_running_job_is_resubmitted(self, store,
                                                    tmp_path):
        job = store.submit(CFG)
        store.claim(timeout=1)           # now "running"; simulate crash
        fresh = JobStore(tmp_path / "jobs")
        recovered = fresh.get(job.job_id)
        assert recovered.state == JobState.SUBMITTED
        assert recovered.resubmitted
        assert fresh.recovered == [job.job_id]
        # ... and it is claimable again.
        assert fresh.claim(timeout=1).job_id == job.job_id
        assert fresh.get(job.job_id).attempts == 2

    def test_terminal_jobs_are_left_alone(self, store, tmp_path):
        job = store.submit(CFG)
        store.claim(timeout=1)
        store.finish(job.job_id, JobState.SUCCEEDED, report={"r": 1})
        fresh = JobStore(tmp_path / "jobs")
        assert fresh.get(job.job_id).state == JobState.SUCCEEDED
        assert fresh.recovered == []
        assert fresh.claim(timeout=0.05) is None

    def test_torn_record_is_skipped(self, store, tmp_path):
        store.submit(CFG)
        (tmp_path / "jobs" / "garbage.json").write_text("{not json")
        fresh = JobStore(tmp_path / "jobs")
        assert len(fresh.jobs()) == 1

    def test_events_sidecar_survives_reload_and_torn_tail(self, store,
                                                          tmp_path):
        job = store.submit(CFG)
        store.claim(timeout=1)
        store.add_event(job.job_id, {"round": 1})
        store.add_event(job.job_id, {"round": 2})
        sidecar = tmp_path / "jobs" / f"{job.job_id}.events.jsonl"
        assert len(sidecar.read_text().splitlines()) == 2
        with open(sidecar, "a") as fh:
            fh.write('{"round": 3')     # crash mid-append
        fresh = JobStore(tmp_path / "jobs")
        assert [e["round"] for e in fresh.get(job.job_id).events] == \
            [1, 2]

    def test_finish_is_first_writer_wins(self, store):
        job = store.submit(CFG)
        store.claim(timeout=1)
        store.finish(job.job_id, JobState.SUCCEEDED, report={"r": 1})
        # A racing cancel (or duplicate resolution) must not overwrite
        # the persisted outcome.
        after = store.finish(job.job_id, JobState.CANCELLED)
        assert after.state == JobState.SUCCEEDED
        assert after.report == {"r": 1}


class TestWaiting:
    def test_wait_for_timeout(self, store):
        job = store.submit(CFG)
        with pytest.raises(TimeoutError):
            store.wait_for(job.job_id, timeout=0.05)

    def test_wait_idle(self, store):
        assert store.wait_idle(timeout=0.05)
        store.submit(CFG)
        assert not store.wait_idle(timeout=0.05)

    def test_counts(self, store):
        store.submit(CFG)
        job = store.submit(CFG)
        store.cancel_queued(job.job_id)
        counts = store.counts()
        assert counts[JobState.SUBMITTED] == 1
        assert counts[JobState.CANCELLED] == 1
        # Real backlog only — the cancelled job's stale heap entry and
        # any boost duplicates are not phantom queue depth.
        assert counts["queued"] == 1


class TestSummaries:
    def test_summary_drops_heavy_payloads(self, store):
        job = store.submit(CFG)
        store.claim(timeout=1)
        store.finish(job.job_id, JobState.SUCCEEDED,
                     report={"huge": list(range(100))})
        (summary,) = store.jobs()
        assert "report" not in summary and "config" not in summary
        assert summary["has_report"]
        assert summary["events"] == 0


class TestLazyLoading:
    """Terminal records index at boot; bodies load on demand."""

    def _populate(self, store, n=4):
        ids = []
        for i in range(n):
            job = store.submit(dict(CFG, i=i), content_key=f"k{i}")
            store.claim(timeout=1)
            store.add_event(job.job_id, {"round": 1})
            store.add_event(job.job_id, {"round": 2})
            store.finish(job.job_id, JobState.SUCCEEDED,
                         report={"i": i})
            ids.append(job.job_id)
        return ids

    def test_boot_indexes_terminal_records_as_stubs(self, store,
                                                    tmp_path):
        ids = self._populate(store)
        fresh = JobStore(tmp_path / "jobs")
        stats = fresh.memory_stats()
        assert stats["loaded"] == 0
        assert stats["lazy_terminal"] == len(ids)
        assert stats["bodies_cached"] == 0
        # Listing and counting never touch bodies...
        assert len(fresh.jobs()) == len(ids)
        assert fresh.counts()[JobState.SUCCEEDED] == len(ids)
        assert fresh.memory_stats()["bodies_cached"] == 0
        # ... but the summaries are still exact.
        summary = fresh.summary(ids[0])
        assert summary["has_report"] and summary["events"] == 2

    def test_get_loads_full_body_on_demand(self, store, tmp_path):
        ids = self._populate(store)
        fresh = JobStore(tmp_path / "jobs")
        job = fresh.get(ids[2])
        assert job.report == {"i": 2}
        assert job.config["i"] == 2
        assert job.events == [{"round": 1}, {"round": 2}]
        assert fresh.memory_stats()["bodies_cached"] == 1

    def test_body_cache_is_bounded_lru(self, store, tmp_path):
        ids = self._populate(store, n=5)
        fresh = JobStore(tmp_path / "jobs", body_cache_size=2)
        for job_id in ids:
            assert fresh.get(job_id).report is not None
        assert fresh.memory_stats()["bodies_cached"] == 2
        # Most recently used bodies survive; evicted ones reload fine.
        assert fresh.get(ids[0]).report == {"i": 0}

    def test_stub_fields_drive_scheduling_decisions(self, store,
                                                    tmp_path):
        (job_id, *_) = self._populate(store)
        fresh = JobStore(tmp_path / "jobs")
        # Terminal stubs answer state checks without disk reads.
        assert not fresh.cancel_queued(job_id)
        assert not fresh.boost(job_id, 99)
        assert fresh.memory_stats()["bodies_cached"] == 0
        # all_jobs carries the light fields the pool rebuild needs.
        stub = [j for j in fresh.all_jobs() if j.job_id == job_id][0]
        assert stub.state == JobState.SUCCEEDED
        assert stub.content_key == "k0"

    def test_active_jobs_still_load_eagerly(self, store, tmp_path):
        self._populate(store, n=2)
        queued = store.submit(dict(CFG, fresh=True))
        fresh = JobStore(tmp_path / "jobs")
        stats = fresh.memory_stats()
        assert stats["loaded"] == 1
        assert stats["lazy_terminal"] == 2
        claimed = fresh.claim(timeout=1)
        assert claimed.job_id == queued.job_id
        assert claimed.config == dict(CFG, fresh=True)

    def test_wait_for_lazy_terminal_returns_report(self, store,
                                                   tmp_path):
        (job_id, *_) = self._populate(store)
        fresh = JobStore(tmp_path / "jobs")
        assert fresh.wait_for(job_id, timeout=1).report == {"i": 0}

    def test_vanished_body_degrades_to_stub(self, store, tmp_path):
        (job_id, *_) = self._populate(store)
        fresh = JobStore(tmp_path / "jobs")
        (tmp_path / "jobs" / f"{job_id}.json").unlink()   # gc raced us
        job = fresh.get(job_id)
        assert job.state == JobState.SUCCEEDED
        assert job.report is None        # body gone; light fields stand

    def test_live_finish_demotes_to_stub(self, store):
        """Jobs finished during the process's lifetime must not stay
        fully loaded — that is the leak the lazy index exists to fix."""
        ids = self._populate(store, n=3)
        stats = store.memory_stats()
        assert stats["loaded"] == 0
        assert stats["lazy_terminal"] == 3
        assert stats["bodies_cached"] == 3   # bounded LRU, not _jobs
        # Reports remain reachable (LRU now, disk after eviction)...
        assert store.get(ids[1]).report == {"i": 1}
        # ... and summaries stay exact without loading bodies.
        summary = store.summary(ids[2])
        assert summary["has_report"] and summary["events"] == 2
        counts = store.counts()
        assert counts[JobState.SUCCEEDED] == 3
