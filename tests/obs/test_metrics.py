"""MetricsRegistry: instruments, thread safety, exposition formats."""

import threading

import pytest

from repro.obs.metrics import (DEFAULT_BUCKETS, MetricsRegistry,
                               NullRegistry, get_registry, use_registry)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_is_monotonic(self, registry):
        c = registry.counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        g = registry.gauge("g")
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert g.value == 8.0

    def test_histogram_sum_count_and_cumulative_buckets(self, registry):
        h = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)
        cum = dict(h.cumulative())
        assert cum[0.1] == 1
        assert cum[1.0] == 3
        assert cum[float("inf")] == 4

    def test_histogram_time_context(self, registry):
        h = registry.histogram("t_seconds")
        with h.time():
            pass
        assert h.count == 1
        assert 0 <= h.sum < 1.0

    def test_labels_fan_out_and_memoize(self, registry):
        c = registry.counter("lbl_total", labels=("tier", "event"))
        c.labels(tier="memory", event="hit").inc(2)
        c.labels(event="hit", tier="memory").inc()     # order-free
        assert c.labels(tier="memory", event="hit").value == 3.0
        with pytest.raises(ValueError):
            c.labels(tier="memory")                    # missing label
        with pytest.raises(ValueError):
            c.inc()                                    # labeled family

    def test_reregistration_is_idempotent_but_typed(self, registry):
        a = registry.counter("same_total", labels=("k",))
        b = registry.counter("same_total", labels=("k",))
        assert a is b
        with pytest.raises(ValueError):
            registry.gauge("same_total", labels=("k",))
        with pytest.raises(ValueError):
            registry.counter("same_total", labels=("other",))


class TestThreadSafety:
    def test_hammered_counters_and_histograms_are_exact(self, registry):
        """N threads x M increments lose nothing (the satellite's
        acceptance bar: exact totals under concurrency)."""
        c = registry.counter("hammer_total", labels=("worker",))
        h = registry.histogram("hammer_seconds", buckets=DEFAULT_BUCKETS)
        g = registry.gauge("hammer_gauge")
        threads, per = 8, 2500

        def work(i):
            child = c.labels(worker=str(i % 2))
            for _ in range(per):
                child.inc()
                h.observe(0.001)
                g.inc()

        pool = [threading.Thread(target=work, args=(i,))
                for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = sum(child.value for _, child in c.children())
        assert total == threads * per
        assert h.count == threads * per
        assert h.sum == pytest.approx(threads * per * 0.001)
        assert g.value == threads * per
        cum = h.cumulative()
        assert cum[-1][1] == threads * per             # +Inf bucket


class TestSnapshotDelta:
    def test_snapshot_and_delta_subtract_cleanly(self, registry):
        c = registry.counter("win_total", labels=("k",))
        h = registry.histogram("win_seconds")
        c.labels(k="a").inc(5)
        h.observe(1.0)
        before = registry.snapshot()
        c.labels(k="a").inc(2)
        c.labels(k="b").inc(1)                 # new series mid-window
        h.observe(2.0)
        delta = registry.delta(before)
        assert delta['win_total{k="a"}'] == 2
        assert delta['win_total{k="b"}'] == 1
        assert delta["win_seconds_count"] == 1
        assert delta["win_seconds_sum"] == pytest.approx(2.0)

    def test_collectors_run_at_scrape_time(self, registry):
        g = registry.gauge("sampled")
        state = {"v": 0}
        registry.add_collector(lambda: g.set(state["v"]))
        state["v"] = 7
        assert registry.snapshot()["sampled"] == 7
        state["v"] = 9
        assert "sampled 9" in registry.render_prometheus()
        # A broken collector must not break exposition.
        registry.add_collector(lambda: 1 / 0)
        text = registry.render_prometheus()
        assert "sampled 9" in text
        assert registry.render_json()["collector_errors"] >= 1


class TestExposition:
    def test_prometheus_text_format(self, registry):
        c = registry.counter("fmt_total", "help text", labels=("k",))
        c.labels(k='va"l').inc(3)
        h = registry.histogram("fmt_seconds", buckets=(0.5,))
        h.observe(0.1)
        text = registry.render_prometheus()
        assert "# HELP fmt_total help text" in text
        assert "# TYPE fmt_total counter" in text
        assert 'fmt_total{k="va\\"l"} 3' in text
        assert 'fmt_seconds_bucket{le="0.5"} 1' in text
        assert 'fmt_seconds_bucket{le="+Inf"} 1' in text
        assert "fmt_seconds_count 1" in text
        assert text.endswith("\n")

    def test_json_document_mirrors_the_text(self, registry):
        registry.counter("j_total").inc(4)
        doc = registry.render_json()
        series = doc["metrics"]["j_total"]["series"]
        assert series == [{"labels": {}, "value": 4.0}]


class TestRegistrySwap:
    def test_use_registry_scopes_the_default(self):
        assert isinstance(get_registry(), MetricsRegistry)
        mine = MetricsRegistry()
        with use_registry(mine):
            assert get_registry() is mine
            get_registry().counter("scoped_total").inc()
        assert get_registry() is not mine
        assert mine.snapshot()["scoped_total"] == 1

    def test_null_registry_absorbs_everything(self):
        null = NullRegistry()
        c = null.counter("x_total", labels=("k",))
        c.labels(k="a").inc(5)
        null.histogram("y").observe(1.0)
        with null.gauge("z").time():
            pass
        assert null.snapshot() == {}
        assert null.render_prometheus() == ""
