"""MetricsRegistry: instruments, thread safety, exposition formats."""

import re
import threading

import pytest

from repro.obs.metrics import (DEFAULT_BUCKETS, MetricsRegistry,
                               NullRegistry, get_registry,
                               quantile_from_cumulative, use_registry)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_is_monotonic(self, registry):
        c = registry.counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        g = registry.gauge("g")
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert g.value == 8.0

    def test_histogram_sum_count_and_cumulative_buckets(self, registry):
        h = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)
        cum = dict(h.cumulative())
        assert cum[0.1] == 1
        assert cum[1.0] == 3
        assert cum[float("inf")] == 4

    def test_histogram_time_context(self, registry):
        h = registry.histogram("t_seconds")
        with h.time():
            pass
        assert h.count == 1
        assert 0 <= h.sum < 1.0

    def test_labels_fan_out_and_memoize(self, registry):
        c = registry.counter("lbl_total", labels=("tier", "event"))
        c.labels(tier="memory", event="hit").inc(2)
        c.labels(event="hit", tier="memory").inc()     # order-free
        assert c.labels(tier="memory", event="hit").value == 3.0
        with pytest.raises(ValueError):
            c.labels(tier="memory")                    # missing label
        with pytest.raises(ValueError):
            c.inc()                                    # labeled family

    def test_reregistration_is_idempotent_but_typed(self, registry):
        a = registry.counter("same_total", labels=("k",))
        b = registry.counter("same_total", labels=("k",))
        assert a is b
        with pytest.raises(ValueError):
            registry.gauge("same_total", labels=("k",))
        with pytest.raises(ValueError):
            registry.counter("same_total", labels=("other",))


class TestThreadSafety:
    def test_hammered_counters_and_histograms_are_exact(self, registry):
        """N threads x M increments lose nothing (the satellite's
        acceptance bar: exact totals under concurrency)."""
        c = registry.counter("hammer_total", labels=("worker",))
        h = registry.histogram("hammer_seconds", buckets=DEFAULT_BUCKETS)
        g = registry.gauge("hammer_gauge")
        threads, per = 8, 2500

        def work(i):
            child = c.labels(worker=str(i % 2))
            for _ in range(per):
                child.inc()
                h.observe(0.001)
                g.inc()

        pool = [threading.Thread(target=work, args=(i,))
                for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = sum(child.value for _, child in c.children())
        assert total == threads * per
        assert h.count == threads * per
        assert h.sum == pytest.approx(threads * per * 0.001)
        assert g.value == threads * per
        cum = h.cumulative()
        assert cum[-1][1] == threads * per             # +Inf bucket


class TestSnapshotDelta:
    def test_snapshot_and_delta_subtract_cleanly(self, registry):
        c = registry.counter("win_total", labels=("k",))
        h = registry.histogram("win_seconds")
        c.labels(k="a").inc(5)
        h.observe(1.0)
        before = registry.snapshot()
        c.labels(k="a").inc(2)
        c.labels(k="b").inc(1)                 # new series mid-window
        h.observe(2.0)
        delta = registry.delta(before)
        assert delta['win_total{k="a"}'] == 2
        assert delta['win_total{k="b"}'] == 1
        assert delta["win_seconds_count"] == 1
        assert delta["win_seconds_sum"] == pytest.approx(2.0)

    def test_collectors_run_at_scrape_time(self, registry):
        g = registry.gauge("sampled")
        state = {"v": 0}
        registry.add_collector(lambda: g.set(state["v"]))
        state["v"] = 7
        assert registry.snapshot()["sampled"] == 7
        state["v"] = 9
        assert "sampled 9" in registry.render_prometheus()
        # A broken collector must not break exposition.
        registry.add_collector(lambda: 1 / 0)
        text = registry.render_prometheus()
        assert "sampled 9" in text
        assert registry.render_json()["collector_errors"] >= 1


class TestExposition:
    def test_prometheus_text_format(self, registry):
        c = registry.counter("fmt_total", "help text", labels=("k",))
        c.labels(k='va"l').inc(3)
        h = registry.histogram("fmt_seconds", buckets=(0.5,))
        h.observe(0.1)
        text = registry.render_prometheus()
        assert "# HELP fmt_total help text" in text
        assert "# TYPE fmt_total counter" in text
        assert 'fmt_total{k="va\\"l"} 3' in text
        assert 'fmt_seconds_bucket{le="0.5"} 1' in text
        assert 'fmt_seconds_bucket{le="+Inf"} 1' in text
        assert "fmt_seconds_count 1" in text
        assert text.endswith("\n")

    def test_json_document_mirrors_the_text(self, registry):
        registry.counter("j_total").inc(4)
        doc = registry.render_json()
        series = doc["metrics"]["j_total"]["series"]
        assert series == [{"labels": {}, "value": 4.0}]


def _parse_prometheus(text: str) -> dict:
    """Minimal 0.0.4 parser: ``{(name, frozen_labels): value}`` with
    label values *unescaped* — the inverse of the renderer, so a
    round trip proves the escaping."""
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
                     r'(?:\{(.*)\})? (\S+)$', line)
        assert m, f"unparseable exposition line: {line!r}"
        name, raw, value = m.groups()
        labels = {}
        if raw:
            for lm in re.finditer(
                    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"',
                    raw):
                k, v = lm.groups()
                # Left-to-right decode: sequential str.replace would
                # mis-read the 'n' after an escaped backslash.
                labels[k] = re.sub(
                    r'\\(.)',
                    lambda m: "\n" if m.group(1) == "n"
                    else m.group(1), v)
        out[(name, frozenset(labels.items()))] = float(value)
    return out


class TestExpositionRoundTrip:
    NASTY = ('back\\slash', 'new\nline', 'quo"te', '\\n literal',
             'all\\of"it\ntogether', 'trailing\\')

    def test_label_values_survive_a_round_trip(self, registry):
        c = registry.counter("rt_total", labels=("k",))
        for i, value in enumerate(self.NASTY):
            c.labels(k=value).inc(i + 1)
        parsed = _parse_prometheus(registry.render_prometheus())
        for i, value in enumerate(self.NASTY):
            key = ("rt_total", frozenset([("k", value)]))
            assert parsed[key] == i + 1, value
        # No two nasty values may collapse onto one series.
        assert len([k for k in parsed if k[0] == "rt_total"]) \
            == len(self.NASTY)

    def test_help_text_escapes_newline_and_backslash(self, registry):
        registry.counter("h_total", "line one\nand a \\ slash").inc()
        text = registry.render_prometheus()
        assert "# HELP h_total line one\\nand a \\\\ slash" in text
        # Exposition must stay line-oriented: the raw newline is gone.
        assert all(line.startswith(("#", "h_total"))
                   for line in text.splitlines() if "h_" in line)

    def test_exposition_stays_parseable_with_nasty_labels(self,
                                                          registry):
        h = registry.histogram("rt_seconds", buckets=(1.0,),
                               labels=("k",))
        h.labels(k='le="1.0"\n\\').observe(0.5)
        parsed = _parse_prometheus(registry.render_prometheus())
        key = ("rt_seconds_bucket",
               frozenset([("k", 'le="1.0"\n\\'), ("le", "1")]))
        assert parsed[key] == 1


class TestHistogramQuantile:
    def test_empty_histogram_returns_none(self, registry):
        h = registry.histogram("q_seconds", buckets=(1.0, 2.0))
        assert h.quantile(0.5) is None
        assert quantile_from_cumulative([], 0.5) is None

    def test_single_bucket_mass_interpolates_within_it(self, registry):
        h = registry.histogram("q1_seconds", buckets=(1.0, 2.0))
        for _ in range(4):
            h.observe(1.5)               # all mass in (1.0, 2.0]
        assert h.quantile(0.0) == pytest.approx(1.0)
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_inf_bucket_clamps_to_largest_finite_bound(self, registry):
        h = registry.histogram("q2_seconds", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(50.0)                  # lands in +Inf
        assert h.quantile(1.0) == pytest.approx(2.0)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_all_mass_in_inf_bucket_still_clamps(self):
        cum = [(1.0, 0), (2.0, 0), (float("inf"), 3)]
        assert quantile_from_cumulative(cum, 0.5) == pytest.approx(2.0)
        # None spelling of +Inf (the JSONL form) behaves identically.
        assert quantile_from_cumulative(
            [(1.0, 0), (2.0, 0), (None, 3)], 0.5) == pytest.approx(2.0)

    def test_first_bucket_interpolates_from_zero(self, registry):
        h = registry.histogram("q3_seconds", buckets=(2.0, 4.0))
        h.observe(1.0)
        h.observe(1.0)
        assert h.quantile(0.5) == pytest.approx(1.0)

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError):
            quantile_from_cumulative([(1.0, 1)], 1.5)
        with pytest.raises(ValueError):
            quantile_from_cumulative([(1.0, 1)], -0.1)

    def test_interpolation_matches_prometheus_semantics(self, registry):
        h = registry.histogram("q4_seconds", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        # rank p50 = 2.0 observations -> cumulative hits 2 at le=2.0:
        # lower 1.0 + (2.0-1.0) * (2-1)/2
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(0.25) == pytest.approx(1.0)

    def test_null_registry_quantile_is_none(self):
        assert NullRegistry().histogram("n_seconds").quantile(0.9) \
            is None


class TestRegistrySwap:
    def test_use_registry_scopes_the_default(self):
        assert isinstance(get_registry(), MetricsRegistry)
        mine = MetricsRegistry()
        with use_registry(mine):
            assert get_registry() is mine
            get_registry().counter("scoped_total").inc()
        assert get_registry() is not mine
        assert mine.snapshot()["scoped_total"] == 1

    def test_null_registry_absorbs_everything(self):
        null = NullRegistry()
        c = null.counter("x_total", labels=("k",))
        c.labels(k="a").inc(5)
        null.histogram("y").observe(1.0)
        with null.gauge("z").time():
            pass
        assert null.snapshot() == {}
        assert null.render_prometheus() == ""
