"""SeriesRecorder: sampling, retention, windowed queries, persistence."""

import json
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.series import SeriesRecorder


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def recorder(registry, clock):
    return SeriesRecorder(registry=registry, interval_s=0, clock=clock)


class TestSampling:
    def test_sample_captures_values_and_buckets(self, registry,
                                                recorder):
        registry.counter("s_total").inc(3)
        registry.histogram("s_seconds", buckets=(1.0,)).observe(0.5)
        entry = recorder.sample()
        assert entry["values"]["s_total"] == 3
        assert entry["buckets"]["s_seconds"] == [[1.0, 1], [None, 1]]
        assert recorder.samples_taken == 1

    def test_inf_bound_is_none_so_samples_are_strict_json(
            self, registry, recorder):
        registry.histogram("j_seconds").observe(0.1)
        assert json.loads(json.dumps(recorder.sample(),
                                     allow_nan=False))

    def test_ring_is_bounded(self, registry, clock):
        rec = SeriesRecorder(registry=registry, interval_s=0, window=5,
                             clock=clock)
        for _ in range(12):
            clock.advance(1)
            rec.sample()
        assert len(rec.samples()) == 5
        assert rec.samples_taken == 12

    def test_background_thread_samples_and_stops(self, registry):
        rec = SeriesRecorder(registry=registry, interval_s=0.01)
        registry.counter("bg_total").inc()
        with rec:
            deadline = threading.Event()
            for _ in range(200):
                if rec.samples_taken >= 3:
                    break
                deadline.wait(0.02)
        assert rec.samples_taken >= 3
        assert not rec.stats()["running"]

    def test_zero_interval_never_starts_a_thread(self, recorder):
        assert recorder.start() is recorder
        assert not recorder.stats()["running"]


class TestWindows:
    def test_delta_and_rate_over_window(self, registry, clock,
                                        recorder):
        c = registry.counter("w_total", labels=("k",))
        c.labels(k="a").inc(5)
        recorder.sample()
        clock.advance(10)
        c.labels(k="a").inc(15)
        recorder.sample()
        assert recorder.delta('w_total{k="a"}', 60) == 15
        assert recorder.rate('w_total{k="a"}', 60) == pytest.approx(1.5)

    def test_window_excludes_old_samples(self, registry, clock,
                                         recorder):
        c = registry.counter("old_total")
        c.inc(100)
        recorder.sample()
        clock.advance(500)
        c.inc(1)
        recorder.sample()
        clock.advance(10)
        c.inc(1)
        recorder.sample()
        # 60 s window only sees the last two samples: delta 1, not 102.
        assert recorder.delta("old_total", 60) == 1
        assert recorder.delta("old_total", 10000) == 2

    def test_fewer_than_two_samples_is_none(self, registry, recorder):
        registry.counter("lone_total").inc()
        assert recorder.delta("lone_total", 60) is None
        recorder.sample()
        assert recorder.delta("lone_total", 60) is None
        assert recorder.rate("lone_total", 60) is None
        assert recorder.quantile("lone_seconds", 0.5, 60) is None

    def test_series_born_mid_window_counts_from_zero(self, registry,
                                                     clock, recorder):
        recorder.sample()
        clock.advance(5)
        registry.counter("born_total").inc(4)
        recorder.sample()
        assert recorder.delta("born_total", 60) == 4

    def test_counter_reset_clamps_to_end_value(self, clock):
        a, b = MetricsRegistry(), MetricsRegistry()
        rec = SeriesRecorder(registry=a, interval_s=0, clock=clock)
        a.counter("r_total").inc(50)
        rec.sample()
        clock.advance(5)
        b.counter("r_total").inc(3)      # "restarted process"
        rec.registry = b
        rec.sample()
        assert rec.delta("r_total", 60) == 3

    def test_quantile_sees_only_window_observations(self, registry,
                                                    clock, recorder):
        h = registry.histogram("q_seconds", buckets=(0.1, 1.0, 10.0))
        for _ in range(100):
            h.observe(8.0)               # old, slow traffic
        recorder.sample()
        clock.advance(5)
        for _ in range(10):
            h.observe(0.05)              # recent, fast traffic
        recorder.sample()
        q = recorder.quantile("q_seconds", 0.95, 60)
        assert q is not None and q <= 0.1
        # All-time quantile (no window) would sit near 10: prove the
        # window actually subtracted the old mass.
        assert registry.histogram("q_seconds").quantile(0.95) > 1.0

    def test_gauge_last_and_max(self, registry, clock, recorder):
        g = registry.gauge("depth")
        g.set(3)
        recorder.sample()
        clock.advance(1)
        g.set(9)
        recorder.sample()
        clock.advance(1)
        g.set(2)
        recorder.sample()
        assert recorder.gauge_last("depth") == 2
        assert recorder.gauge_max("depth", 60) == 9


class TestWindowReport:
    def test_report_has_deltas_rates_and_quantiles(self, registry,
                                                   clock, recorder):
        c = registry.counter("rep_total")
        h = registry.histogram("rep_seconds", buckets=(0.1, 1.0))
        c.inc(1)
        recorder.sample()
        clock.advance(10)
        c.inc(9)
        for _ in range(5):
            h.observe(0.5)
        recorder.sample()
        report = recorder.window_report(60)
        assert report["samples"] == 2
        assert report["deltas"]["rep_total"] == 9
        assert report["rates"]["rep_total"] == pytest.approx(0.9)
        assert 0.1 < report["quantiles"]["rep_seconds"]["p50"] <= 1.0
        assert json.loads(json.dumps(report, allow_nan=False))

    def test_empty_report_is_well_formed(self, recorder):
        report = recorder.window_report(60)
        assert report["samples"] == 0
        assert report["deltas"] == {} and report["quantiles"] == {}


class TestPersistence:
    def test_jsonl_lines_append_per_sample(self, registry, clock,
                                           tmp_path):
        rec = SeriesRecorder(registry=registry, interval_s=0,
                             persist_dir=tmp_path / "series",
                             clock=clock)
        registry.counter("p_total").inc()
        rec.sample()
        clock.advance(1)
        rec.sample()
        lines = (tmp_path / "series" / "samples.jsonl") \
            .read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["values"]["p_total"] == 1

    def test_rotation_keeps_one_backup(self, registry, clock,
                                       tmp_path):
        rec = SeriesRecorder(registry=registry, interval_s=0,
                             persist_dir=tmp_path / "series",
                             max_bytes=200, clock=clock)
        registry.counter("rot_total").inc()
        for _ in range(20):
            clock.advance(1)
            rec.sample()
        files = sorted(p.name for p in (tmp_path / "series").iterdir())
        assert files == ["samples.jsonl", "samples.jsonl.1"]
        assert rec.persist_errors == 0

    def test_persist_failure_is_counted_not_raised(self, registry,
                                                   clock, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        rec = SeriesRecorder(registry=registry, interval_s=0,
                             persist_dir=blocker / "series",
                             clock=clock)
        rec.sample()                     # mkdir fails under a file
        assert rec.persist_errors == 1
        assert len(rec.samples()) == 1   # ring still recorded it


class TestPreload:
    def test_restart_preloads_persisted_history(self, clock, tmp_path):
        a = MetricsRegistry()
        first = SeriesRecorder(registry=a, interval_s=0,
                               persist_dir=tmp_path / "series",
                               clock=clock)
        a.counter("pre_total").inc(5)
        first.sample()
        clock.advance(10)
        a.counter("pre_total").inc(2)
        first.sample()
        # "Restart": a brand-new recorder over the same directory can
        # answer windowed queries before taking a single live sample.
        again = SeriesRecorder(registry=MetricsRegistry(),
                               interval_s=0,
                               persist_dir=tmp_path / "series",
                               clock=clock)
        assert again.stats()["preloaded"] == 2
        assert again.delta("pre_total", 60) == 2

    def test_windows_span_a_rotation_boundary(self, clock, tmp_path):
        registry = MetricsRegistry()
        rec = SeriesRecorder(registry=registry, interval_s=0,
                             persist_dir=tmp_path / "series",
                             max_bytes=400, clock=clock)
        h = registry.histogram("ro_seconds", buckets=(0.1, 1.0, 10.0))
        c = registry.counter("ro_total")
        for i in range(30):
            clock.advance(1)
            c.inc()
            h.observe(0.05 if i < 15 else 8.0)
            rec.sample()
        files = sorted(p.name for p in (tmp_path / "series").iterdir())
        assert files == ["samples.jsonl", "samples.jsonl.1"]

        def rows(name):
            return [json.loads(line) for line in
                    (tmp_path / "series" / name)
                    .read_text().splitlines()]
        kept = rows("samples.jsonl.1") + rows("samples.jsonl")
        current = rows("samples.jsonl")
        assert len(current) < len(kept)  # rotation actually happened
        restarted = SeriesRecorder(registry=MetricsRegistry(),
                                   interval_s=0,
                                   persist_dir=tmp_path / "series",
                                   clock=clock)
        # The window spans the rotation boundary: both files preload,
        # and a wide window's delta covers the backup file's samples —
        # strictly more than the post-rotation file alone could show.
        assert restarted.stats()["preloaded"] == len(kept)
        spanning = (kept[-1]["values"]["ro_total"]
                    - kept[0]["values"]["ro_total"])
        truncated = (current[-1]["values"]["ro_total"]
                     - current[0]["values"]["ro_total"])
        assert restarted.delta("ro_total", 1000) == spanning
        assert spanning > truncated

    def test_preload_tolerates_corrupt_lines(self, clock, tmp_path):
        series_dir = tmp_path / "series"
        series_dir.mkdir()
        (series_dir / "samples.jsonl").write_text(
            '{"t": 990.0, "values": {"x": 1}, "buckets": {}}\n'
            "not json at all\n"
            '["a list, not a sample"]\n'
            '{"t": 995.0, "values": {"x": 4}, "buckets": {}}\n')
        rec = SeriesRecorder(registry=MetricsRegistry(), interval_s=0,
                             persist_dir=series_dir, clock=clock)
        assert rec.stats()["preloaded"] == 2
        assert rec.delta("x", 60) == 3


class TestSourceSampling:
    def test_source_callable_replaces_the_registry(self, clock):
        snapshots = [({"fed_total": 1.0}, {}),
                     ({"fed_total": 6.0}, {})]
        rec = SeriesRecorder(interval_s=0, clock=clock,
                             source=lambda: snapshots.pop(0))
        rec.sample()
        clock.advance(10)
        rec.sample()
        assert rec.delta("fed_total", 60) == 5
        assert rec.rate("fed_total", 60) == pytest.approx(0.5)

    def test_source_buckets_feed_quantiles(self, clock):
        def sampler():
            return ({}, {"lat_seconds": [[0.1, sampler.n], [None,
                                                            sampler.n]]})
        sampler.n = 0
        rec = SeriesRecorder(interval_s=0, clock=clock, source=sampler)
        rec.sample()
        clock.advance(5)
        sampler.n = 10
        rec.sample()
        assert rec.quantile("lat_seconds", 0.5, 60) <= 0.1
