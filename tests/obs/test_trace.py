"""Span trees: nesting, error marking, disable switch, metrics feed,
and the W3C-style distributed trace context."""

import threading

import pytest

from repro.obs import disabled
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import (MAX_CHILDREN, Span, TraceContext,
                             current_context, current_span,
                             current_traceparent, format_traceparent,
                             mint_context, parse_traceparent,
                             render_tree, span, trace_context)


class TestNesting:
    def test_with_blocks_build_the_tree(self):
        with span("root", job="j1") as root:
            with span("child-a"):
                with span("leaf"):
                    pass
            with span("child-b", n=2):
                pass
        d = root.to_dict()
        assert d["name"] == "root"
        assert d["attrs"] == {"job": "j1"}
        assert [c["name"] for c in d["children"]] == ["child-a",
                                                      "child-b"]
        assert d["children"][0]["children"][0]["name"] == "leaf"
        assert d["wall_s"] >= d["children"][0]["wall_s"]

    def test_current_span_tracks_the_stack(self):
        assert current_span() is None
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_threads_have_independent_stacks(self):
        seen = {}

        def work():
            with span("worker-root") as s:
                seen["inner"] = current_span() is s
            seen["after"] = current_span()

        with span("main-root") as root:
            t = threading.Thread(target=work)
            t.start()
            t.join()
            # The worker's span must not have attached to our root.
            assert root.children == []
        assert seen["inner"] is True
        assert seen["after"] is None

    def test_error_marks_the_span_and_propagates(self):
        with pytest.raises(RuntimeError):
            with span("fails") as s:
                raise RuntimeError("boom")
        assert s.error == "RuntimeError"
        assert s.wall_s >= 0.0

    def test_child_cap_counts_drops(self):
        parent = Span("p")
        for _ in range(MAX_CHILDREN + 7):
            parent.add_child(Span("c").finish())
        assert len(parent.children) == MAX_CHILDREN
        assert parent.dropped == 7
        assert parent.to_dict()["dropped"] == 7


class TestSynthetic:
    def test_synthetic_spans_carry_external_measurements(self):
        s = Span.synthetic("queued", 1.25, start_s=100.0, job="j")
        assert s.wall_s == 1.25
        assert s.start_s == 100.0
        assert s.attrs == {"job": "j"}

    def test_round_trips_through_dicts(self):
        with span("root", k=1) as root:
            with span("child"):
                pass
        back = Span.from_dict(root.to_dict())
        assert back.to_dict() == root.to_dict()


class TestDisable:
    def test_disabled_spans_are_noops(self):
        with disabled():
            with span("invisible") as s:
                s.annotate(x=1)
                assert s.to_dict() == {}
            assert current_span() is None

    def test_reenabled_after_the_block(self):
        with disabled():
            pass
        with span("visible") as s:
            pass
        assert s.to_dict()["name"] == "visible"


class TestMetricsFeed:
    def test_every_span_observes_its_histogram(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            with span("stage.x"):
                pass
            with span("stage.x"):
                pass
            with span("stage.y"):
                pass
        snap = registry.snapshot()
        assert snap['repro_span_seconds_count{span="stage.x"}'] == 2
        assert snap['repro_span_seconds_count{span="stage.y"}'] == 1


class TestTraceContext:
    def test_mint_parse_format_round_trip(self):
        ctx = mint_context()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        header = format_traceparent(ctx)
        assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
        back = parse_traceparent(header)
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id

    @pytest.mark.parametrize("header", [
        "", "garbage", "00-short-short-01",
        "00-" + "g" * 32 + "-" + "a" * 16 + "-01",   # non-hex
        "zz-" + "a" * 32 + "-" + "b" * 16 + "-01",   # bad version
        "00-" + "a" * 32 + "-" + "b" * 16,           # missing flags
    ])
    def test_malformed_traceparent_parses_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_parse_tolerates_case_and_whitespace(self):
        header = "  00-" + "A" * 32 + "-" + "B" * 16 + "-01 "
        ctx = parse_traceparent(header)
        assert ctx.trace_id == "a" * 32

    def test_adopt_joins_the_trace(self):
        ctx = mint_context()
        s = Span("serve.job")
        downstream = s.adopt(ctx)
        assert s.trace_id == ctx.trace_id
        assert s.parent_span_id == ctx.span_id
        assert s.span_id != ctx.span_id
        # The downstream context hands *this* span to the next hop.
        assert downstream.trace_id == ctx.trace_id
        assert downstream.span_id == s.span_id
        d = s.finish().to_dict()
        assert d["trace_id"] == ctx.trace_id
        assert d["parent_span_id"] == ctx.span_id
        assert Span.from_dict(d).to_dict() == d

    def test_trace_context_installs_and_restores(self):
        assert current_context() is None
        assert current_traceparent() == ""
        ctx = mint_context()
        with trace_context(ctx):
            assert current_context() is ctx
            assert current_traceparent() == format_traceparent(ctx)
            inner = mint_context()
            with trace_context(inner):
                assert current_context() is inner
            assert current_context() is ctx
        assert current_context() is None

    def test_context_is_thread_local(self):
        seen = {}

        def work():
            seen["ctx"] = current_context()

        with trace_context(mint_context()):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        assert seen["ctx"] is None

    def test_context_dict_round_trip(self):
        ctx = mint_context()
        back = TraceContext.from_dict(ctx.to_dict())
        assert (back.trace_id, back.span_id) == (ctx.trace_id,
                                                 ctx.span_id)
        assert TraceContext.from_dict({}) is None
        assert TraceContext.from_dict({"trace_id": ""}) is None
        # A missing span id is minted, not an error.
        partial = TraceContext.from_dict({"trace_id": "a" * 32})
        assert len(partial.span_id) == 16


class TestRender:
    def test_render_tree_lines(self):
        with span("root", job="j1") as root:
            with span("child"):
                pass
        lines = render_tree(root.to_dict())
        assert lines[0].startswith("root")
        assert "[job=j1]" in lines[0]
        assert lines[1].strip().startswith("child")
        assert "ms wall" in lines[1]
        assert render_tree({}) == []
