"""Sampling profiler: attribution, collapsed rendering, robustness."""

import threading
import time

import pytest

from repro.obs.prof import Profile, SamplingProfiler


def spin_for(seconds):
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(i * i for i in range(400))


class TestSamplingProfiler:
    def test_attributes_most_of_the_wall_time(self):
        prof = SamplingProfiler(interval_s=0.002).start()
        spin_for(0.25)
        profile = prof.stop()
        assert profile.samples >= 10
        assert profile.duration_s >= 0.25
        # dt-weighting: attributed seconds track profiled duration.
        assert profile.attributed_s >= 0.8 * profile.duration_s

    def test_hot_function_dominates_the_stacks(self):
        prof = SamplingProfiler(interval_s=0.002).start()
        spin_for(0.2)
        profile = prof.stop()
        hot = sum(s for stack, s in profile.stacks.items()
                  if "spin_for" in stack)
        assert hot >= 0.5 * profile.attributed_s

    def test_profiles_another_thread(self):
        ready, done = threading.Event(), threading.Event()

        def target():
            ready.set()
            spin_for(0.2)
            done.set()

        worker = threading.Thread(target=target, daemon=True)
        worker.start()
        assert ready.wait(5)
        prof = SamplingProfiler(thread_id=worker.ident,
                                interval_s=0.002).start()
        assert done.wait(5)
        profile = prof.stop()
        worker.join(5)
        assert any("target" in stack for stack in profile.stacks)

    def test_missing_thread_yields_empty_profile_not_crash(self):
        # A thread id that exists in no thread table (a joined thread's
        # ident could be recycled by the OS, so invent one instead).
        import sys
        ghost = max(sys._current_frames()) + 104729
        prof = SamplingProfiler(thread_id=ghost,
                                interval_s=0.001).start()
        time.sleep(0.02)
        profile = prof.stop()
        assert profile.samples == 0
        assert profile.stacks == {}

    def test_zero_interval_is_a_noop(self):
        prof = SamplingProfiler(interval_s=0)
        assert prof.start() is prof
        assert prof.stop().samples == 0

    def test_stack_cardinality_is_bounded(self):
        prof = SamplingProfiler(interval_s=3600, max_stacks=2)
        prof.profile.add("a;b", 0.1, prof.max_stacks)
        prof.profile.add("a;c", 0.1, prof.max_stacks)
        prof.profile.add("a;d", 0.1, prof.max_stacks)  # overflows
        prof.profile.add("a;e", 0.1, prof.max_stacks)
        assert prof.profile.truncated
        assert set(prof.profile.stacks) == {"a;b", "a;c", "(overflow)"}
        assert prof.profile.stacks["(overflow)"] == pytest.approx(0.2)


class TestProfileDocument:
    def test_round_trips_through_dict(self):
        prof = SamplingProfiler(interval_s=0.002).start()
        spin_for(0.1)
        profile = prof.stop()
        clone = Profile.from_dict(profile.to_dict())
        assert clone.samples == profile.samples
        assert clone.attributed_s == \
            pytest.approx(profile.attributed_s, abs=1e-4)
        assert set(clone.stacks) == set(profile.stacks)

    def test_collapsed_rendering_is_flamegraph_shaped(self):
        profile = Profile(stacks={"main;work;inner": 0.2,
                                  "main;idle": 0.05}, samples=25)
        lines = profile.render_collapsed().splitlines()
        assert lines[0] == "main;work;inner 200000"   # heaviest first
        assert lines[1] == "main;idle 50000"
        for line in lines:
            frames, _, weight = line.rpartition(" ")
            assert frames and int(weight) > 0

    def test_empty_profile_renders_empty(self):
        assert Profile().render_collapsed() == ""
