"""SLO engine: rule kinds, state transitions, burn rates, rollup."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.series import SeriesRecorder
from repro.obs.slo import (DEGRADED, HEALTHY, UNHEALTHY, SloEngine,
                           SloRule, default_rules)

from .test_series import FakeClock


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def recorder(registry, clock):
    return SeriesRecorder(registry=registry, interval_s=0, clock=clock)


def latency_rule(objective=0.1, window_s=60.0, **kw):
    return SloRule(name="lat", kind="latency", series="lat_seconds",
                   objective=objective, window_s=window_s, **kw)


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SloRule(name="x", kind="vibes", objective=1.0)

    def test_warning_defaults_derive_from_objective(self):
        ceiling = latency_rule(objective=10.0)
        assert ceiling.warning == pytest.approx(8.0)
        floor = SloRule(name="f", kind="ratio_floor", objective=0.4)
        assert floor.warning == pytest.approx(0.5)


class TestLatencyRule:
    def test_ok_breach_ok_transitions_across_windows(self, registry,
                                                     clock, recorder):
        """The acceptance scenario: injected latency breaches the
        objective, then ages out of the window and the rule recovers."""
        h = registry.histogram("lat_seconds",
                               buckets=(0.05, 0.25, 1.0))
        engine = SloEngine(recorder, [latency_rule(objective=0.1,
                                                   window_s=30)])
        # Phase 1: fast traffic -> ok.
        for _ in range(10):
            h.observe(0.01)
        recorder.sample()
        clock.advance(5)
        recorder.sample()
        assert engine.evaluate()["health"] == HEALTHY
        # Phase 2: injected latency inside the window -> breach.
        for _ in range(10):
            h.observe(0.9)
        clock.advance(5)
        recorder.sample()
        report = engine.evaluate()
        assert report["health"] == UNHEALTHY
        assert report["rules"][0]["state"] == "breach"
        assert report["rules"][0]["burn_rate"] > 1.0
        # Phase 3: the slow burst ages out of the 30 s window; only
        # fresh fast traffic remains -> ok again.
        clock.advance(40)
        for _ in range(10):
            h.observe(0.01)
        recorder.sample()
        clock.advance(5)
        recorder.sample()
        report = engine.evaluate()
        assert report["health"] == HEALTHY
        assert report["rules"][0]["state"] == "ok"
        # Breach time accrued while it was breaching, then froze.
        assert report["rules"][0]["breach_s"] > 0

    def test_no_data_is_ok_not_breach(self, recorder):
        engine = SloEngine(recorder, [latency_rule()])
        report = engine.evaluate()
        assert report["health"] == HEALTHY
        assert report["rules"][0]["value"] is None

    def test_warning_band_degrades(self, registry, clock, recorder):
        h = registry.histogram("lat_seconds", buckets=(0.05, 0.09, 0.25))
        recorder.sample()
        for _ in range(10):
            h.observe(0.085)             # between warning 0.08 and 0.1
        clock.advance(5)
        recorder.sample()
        engine = SloEngine(recorder, [latency_rule(objective=0.1)])
        report = engine.evaluate()
        assert report["rules"][0]["state"] == "warning"
        assert report["health"] == DEGRADED


class TestRatioRules:
    def test_error_rate_breaches_on_failures(self, registry, clock,
                                             recorder):
        c = registry.counter("jobs_total", labels=("outcome",))
        rule = SloRule(name="err", kind="error_rate", objective=0.1,
                       numerator=('jobs_total{outcome="failed"}',),
                       denominator=('jobs_total{outcome="failed"}',
                                    'jobs_total{outcome="succeeded"}'),
                       window_s=60)
        engine = SloEngine(recorder, [rule])
        recorder.sample()
        c.labels(outcome="succeeded").inc(6)
        c.labels(outcome="failed").inc(4)
        clock.advance(5)
        recorder.sample()
        report = engine.evaluate()
        assert report["rules"][0]["value"] == pytest.approx(0.4)
        assert report["rules"][0]["state"] == "breach"
        assert report["rules"][0]["burn_rate"] == pytest.approx(4.0)

    def test_min_count_gates_cold_ratio_floor(self, registry, clock,
                                              recorder):
        c = registry.counter("cache_total", labels=("event",))
        rule = SloRule(name="hits", kind="ratio_floor", objective=0.5,
                       numerator=('cache_total{event="hit"}',),
                       denominator=('cache_total{event="hit"}',
                                    'cache_total{event="miss"}'),
                       min_count=100, window_s=60)
        engine = SloEngine(recorder, [rule])
        recorder.sample()
        c.labels(event="miss").inc(10)   # cold cache, tiny traffic
        clock.advance(5)
        recorder.sample()
        report = engine.evaluate()       # gated: not an incident
        assert report["rules"][0]["value"] is None
        assert report["health"] == HEALTHY
        c.labels(event="miss").inc(200)  # real traffic, all misses
        clock.advance(5)
        recorder.sample()
        report = engine.evaluate()
        assert report["rules"][0]["state"] == "breach"

    def test_healthy_ratio_floor_passes(self, registry, clock,
                                        recorder):
        c = registry.counter("cache_total", labels=("event",))
        rule = SloRule(name="hits", kind="ratio_floor", objective=0.5,
                       numerator=('cache_total{event="hit"}',),
                       denominator=('cache_total{event="hit"}',
                                    'cache_total{event="miss"}'),
                       min_count=10, window_s=60)
        recorder.sample()
        c.labels(event="hit").inc(90)
        c.labels(event="miss").inc(10)
        clock.advance(5)
        recorder.sample()
        report = SloEngine(recorder, [rule]).evaluate()
        assert report["rules"][0]["state"] == "ok"
        assert report["rules"][0]["burn_rate"] < 1.0


class TestGaugeCeiling:
    def test_window_max_not_instantaneous_value(self, registry, clock,
                                                recorder):
        g = registry.gauge("depth")
        rule = SloRule(name="queue", kind="gauge_ceiling",
                       series="depth", objective=10.0, window_s=60)
        engine = SloEngine(recorder, [rule])
        g.set(50)                        # spike…
        recorder.sample()
        clock.advance(5)
        g.set(0)                         # …already drained
        recorder.sample()
        report = engine.evaluate()
        assert report["rules"][0]["value"] == 50
        assert report["rules"][0]["state"] == "breach"


class TestRollup:
    def test_worst_rule_wins(self, registry, clock, recorder):
        h = registry.histogram("lat_seconds", buckets=(0.05, 0.25))
        g = registry.gauge("depth")
        recorder.sample()
        h.observe(0.01)
        g.set(3)
        clock.advance(5)
        recorder.sample()
        ok_lat = latency_rule(objective=1.0)
        breach_gauge = SloRule(name="queue", kind="gauge_ceiling",
                               series="depth", objective=1.0,
                               window_s=60)
        report = SloEngine(recorder, [ok_lat, breach_gauge]).evaluate()
        assert report["health"] == UNHEALTHY
        states = {r["name"]: r["state"] for r in report["rules"]}
        assert states == {"lat": "ok", "queue": "breach"}

    def test_degraded_severity_caps_the_rollup(self, registry, clock,
                                               recorder):
        """A breaching drift rule degrades health — it must not eject
        the shard from load balancing the way an unhealthy rule does."""
        g = registry.gauge("repro_predict_drift")
        rule = SloRule(name="predict-drift", kind="gauge_ceiling",
                       series="repro_predict_drift", objective=1.0,
                       window_s=30, severity=DEGRADED)
        engine = SloEngine(recorder, [rule])
        g.set(4.2)                       # far out of distribution
        recorder.sample()
        clock.advance(1)
        recorder.sample()
        report = engine.evaluate()
        assert report["rules"][0]["state"] == "breach"
        assert report["rules"][0]["severity"] == DEGRADED
        assert report["health"] == DEGRADED
        # Recovery: in-distribution traffic ages the spike out of the
        # window and health returns to ok.
        g.set(0.05)
        clock.advance(40)
        recorder.sample()
        clock.advance(1)
        recorder.sample()
        assert engine.evaluate()["health"] == HEALTHY

    def test_unhealthy_severity_outranks_degraded(self, registry,
                                                  clock, recorder):
        drift = registry.gauge("repro_predict_drift")
        depth = registry.gauge("repro_serve_queue_depth")
        engine = SloEngine(recorder, [
            SloRule(name="drift", kind="gauge_ceiling",
                    series="repro_predict_drift", objective=1.0,
                    window_s=30, severity=DEGRADED),
            SloRule(name="queue", kind="gauge_ceiling",
                    series="repro_serve_queue_depth", objective=5.0,
                    window_s=30)])
        drift.set(9.0)
        depth.set(100.0)
        recorder.sample()
        clock.advance(1)
        recorder.sample()
        assert engine.evaluate()["health"] == UNHEALTHY

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            SloRule(name="x", kind="gauge_ceiling", objective=1.0,
                    severity="critical")

    def test_default_rules_are_quiet_on_an_idle_service(self,
                                                       recorder):
        engine = SloEngine(recorder)     # default_rules()
        assert len(engine.rules) == 5
        assert engine.evaluate()["health"] == HEALTHY

    def test_default_rules_cover_the_four_kinds(self):
        kinds = sorted(set(r.kind for r in default_rules()))
        assert kinds == ["error_rate", "gauge_ceiling", "latency",
                        "ratio_floor"]
