"""Optimizer suite on the analytic landscape: ask/tell contracts,
convergence, determinism, portfolio racing."""

import numpy as np
import pytest

from repro.engine.records import PPAWeights
from repro.search import (EvolutionaryOptimizer, GridOptimizer,
                          ParetoArchive, PortfolioSearch,
                          QLearningOptimizer, RandomOptimizer, SearchRun,
                          SimulatedAnnealing, SurrogateGuidedOptimizer,
                          from_design_space, make_optimizer, non_dominated,
                          objectives_of, surrogate_ranker)
from repro.stco import default_space

from .conftest import FakeEngine, smooth_ppa

SPACE = default_space()


def true_best(engine=None):
    """Exhaustive optimum of the analytic landscape on the 45 grid."""
    engine = engine if engine is not None else FakeEngine()
    records = engine.evaluate_many(None, SPACE.points(), PPAWeights())
    return max(records, key=lambda r: r.reward)


def drive(optimizer, budget, engine=None):
    engine = engine if engine is not None else FakeEngine()
    result = SearchRun(None, optimizer, engine).run(budget=budget)
    return result, engine


class TestAskTellContracts:
    @pytest.mark.parametrize("name", ["qlearning", "random", "grid",
                                      "anneal", "evolution", "nsga2",
                                      "surrogate", "portfolio"])
    def test_registry_runs(self, name):
        optimizer = make_optimizer(name, SPACE, seed=0)
        result, _ = drive(optimizer, budget=12)
        assert np.isfinite(result.best_reward)
        assert len(result.rewards) <= 12
        assert result.evaluations <= len(result.rewards)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown agent"):
            make_optimizer("sgd", SPACE)

    def test_partial_tell_tolerated(self):
        """Budget can truncate a batch mid-ask; optimizers must cope."""
        optimizer = EvolutionaryOptimizer(SPACE, seed=0, mu=6, lam=6)
        result, _ = drive(optimizer, budget=4)     # < one population
        assert len(result.rewards) == 4

    def test_grid_done_stops_early(self):
        optimizer = GridOptimizer(SPACE)
        result, engine = drive(optimizer, budget=1000)
        assert optimizer.done
        assert result.evaluations == SPACE.size
        assert engine.flow_evaluations == SPACE.size


class TestConvergence:
    def test_anneal_finds_optimum(self):
        best = true_best()
        result, _ = drive(SimulatedAnnealing(SPACE, seed=0), budget=40)
        assert result.best_corner == best.corner.key()

    def test_evolution_finds_optimum(self):
        best = true_best()
        result, _ = drive(EvolutionaryOptimizer(SPACE, seed=0), budget=40)
        assert result.best_corner == best.corner.key()

    def test_qlearning_beats_nothing_but_runs(self):
        result, _ = drive(QLearningOptimizer(SPACE, seed=0), budget=20)
        assert np.isfinite(result.best_reward)

    def test_random_eventually_covers(self):
        result, _ = drive(RandomOptimizer(SPACE, seed=0), budget=200)
        best = true_best()
        assert result.best_reward == pytest.approx(best.reward)

    def test_determinism_same_seed(self):
        a, _ = drive(SimulatedAnnealing(SPACE, seed=7), budget=25)
        b, _ = drive(SimulatedAnnealing(SPACE, seed=7), budget=25)
        assert a.rewards == b.rewards
        assert a.best_corner == b.best_corner

    def test_seeds_differ(self):
        a, _ = drive(SimulatedAnnealing(SPACE, seed=1), budget=25)
        b, _ = drive(SimulatedAnnealing(SPACE, seed=2), budget=25)
        assert a.rewards != b.rewards

    def test_restart_adopts_fresh_point(self):
        """A restart must re-seed the walk unconditionally — running the
        fresh point through the (cold) Metropolis test would reject it
        and leave the walk stuck where it stalled."""
        engine = FakeEngine()
        sa = SimulatedAnnealing(SPACE, seed=0, t0=1e-6, t_final=1e-9)
        for _ in range(3):
            sa.tell(engine.evaluate_many(None, sa.ask(), PPAWeights()))
        sa._stale = sa.restart_after       # force the next ask to restart
        records = engine.evaluate_many(None, sa.ask(), PPAWeights())
        sa.tell(records)
        # Even if the restart point is worse, it becomes the current
        # state (the global best is tracked separately).
        assert sa._current[1] == records[0].reward


class TestEvolutionPareto:
    def test_pareto_mode_spreads_population(self):
        optimizer = EvolutionaryOptimizer(SPACE, seed=0, mode="pareto",
                                          mu=6, lam=6)
        drive(optimizer, budget=36)
        vectors = [objectives_of(r.result)
                   for _, r in optimizer._population]
        # Survivor selection is non-dominated-first: the surviving
        # population must contain several mutually non-dominated points,
        # not collapse onto one scalar optimum.
        front = non_dominated(vectors)
        assert len(front) >= 2

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            EvolutionaryOptimizer(SPACE, mode="weighted")


class TestSurrogate:
    def test_perfect_ranker_accelerates(self):
        """With an oracle ranker, the top-batch contains the optimum as
        soon as it enters the candidate pool."""
        engine = FakeEngine()
        best = true_best()
        weights = PPAWeights()

        def oracle(corners):
            return [weights.score(smooth_ppa(c)) for c in corners]

        guided = SurrogateGuidedOptimizer(SPACE, ranker=oracle, seed=0,
                                          pool=16, batch=2)
        result, _ = drive(guided, budget=20, engine=engine)
        unguided, _ = drive(SurrogateGuidedOptimizer(SPACE, ranker=None,
                                                     seed=0, pool=16,
                                                     batch=2), budget=20)
        assert result.best_reward >= unguided.best_reward
        assert result.best_reward == pytest.approx(best.reward, rel=1e-6)

    def test_ranker_from_builder_requires_hook(self):
        class NoHook:
            pass
        assert surrogate_ranker(NoHook()) is None

    def test_proxy_scores_memoized(self):
        """A corner screened but not chosen must not pay another
        surrogate pass when it reappears in a later candidate pool."""
        scored = []

        def counting(corners):
            scored.extend(c.key() for c in corners)
            return [0.0] * len(corners)

        optimizer = SurrogateGuidedOptimizer(SPACE, ranker=counting,
                                             seed=0, pool=16, batch=2)
        drive(optimizer, budget=20)
        assert len(scored) == len(set(scored))

    def test_does_not_reask_evaluated_corners(self):
        optimizer = SurrogateGuidedOptimizer(SPACE, seed=0, pool=16,
                                             batch=4)
        result, engine = drive(optimizer, budget=40)
        # Every told evaluation was a distinct corner: no budget wasted
        # re-asking what it already knows.
        assert result.evaluations == len(result.rewards)


class TestPortfolio:
    def test_races_and_reports_standings(self):
        members = [SimulatedAnnealing(SPACE, seed=0),
                   EvolutionaryOptimizer(SPACE, seed=1),
                   RandomOptimizer(SPACE, seed=2)]
        portfolio = PortfolioSearch(members, round_size=4)
        result, _ = drive(portfolio, budget=48)
        rows = portfolio.standings()
        assert {r["name"] for r in rows} == {"anneal", "evolution",
                                             "random"}
        assert sum(r["evaluations"] for r in rows) == len(result.rewards)
        # Standings are leader-first.
        rewards = [r["best_reward"] for r in rows]
        assert rewards == sorted(rewards, reverse=True)

    def test_budget_flows_to_winner(self):
        """A member that always proposes the optimum out-earns one that
        always proposes the worst point."""
        engine = FakeEngine()
        best = true_best()
        records = engine.evaluate_many(None, SPACE.points(), PPAWeights())
        worst = min(records, key=lambda r: r.reward)

        class Fixed(RandomOptimizer):
            def __init__(self, corner, name):
                super().__init__(SPACE, seed=0)
                self._corner = corner
                self.name = name

            def ask(self):
                return [self._corner]

        portfolio = PortfolioSearch(
            [Fixed(best.corner, "winner"), Fixed(worst.corner, "loser")],
            round_size=3)
        drive(portfolio, budget=30, engine=FakeEngine())
        stats = {r["name"]: r for r in portfolio.standings()}
        assert stats["winner"]["evaluations"] \
            > stats["loser"]["evaluations"]

    def test_duplicate_member_names_suffixed(self):
        portfolio = PortfolioSearch([RandomOptimizer(SPACE, seed=0),
                                     RandomOptimizer(SPACE, seed=1)])
        assert set(portfolio.members) == {"random", "random2"}

    def test_all_done_terminates(self):
        tiny = from_design_space(default_space())
        portfolio = PortfolioSearch([GridOptimizer(tiny)])
        result, _ = drive(portfolio, budget=1000)
        assert portfolio.done
        assert result.evaluations == tiny.size


class TestPortfolioHypervolumeScoring:
    def test_scalar_is_the_default(self):
        portfolio = PortfolioSearch([RandomOptimizer(SPACE, seed=0)])
        assert portfolio.scoring == "scalar"
        with pytest.raises(ValueError, match="scoring"):
            PortfolioSearch([RandomOptimizer(SPACE, seed=0)],
                            scoring="best")

    def test_standings_report_hypervolume(self):
        members = [SimulatedAnnealing(SPACE, seed=0),
                   EvolutionaryOptimizer(SPACE, seed=1, mode="pareto")]
        portfolio = PortfolioSearch(members, scoring="hypervolume")
        drive(portfolio, budget=36)
        rows = portfolio.standings()
        assert all(r["scoring"] == "hypervolume" for r in rows)
        hvs = [r["hypervolume"] for r in rows]
        assert hvs == sorted(hvs, reverse=True)
        assert any(hv > 0 for hv in hvs)
        assert all(r["pareto_points"] >= 1 for r in rows)

    def test_auto_resolves_by_member_modes(self):
        scalar_only = PortfolioSearch(
            [SimulatedAnnealing(SPACE, seed=0)], scoring="auto")
        assert scalar_only._resolved_scoring() == "scalar"
        with_pareto = PortfolioSearch(
            [SimulatedAnnealing(SPACE, seed=0),
             EvolutionaryOptimizer(SPACE, seed=1, mode="pareto")],
            scoring="auto")
        assert with_pareto._resolved_scoring() == "hypervolume"

    def test_front_coverage_earns_budget(self):
        """Under hypervolume scoring, a member spreading along the
        front out-earns one camped on a single point."""
        best = true_best()

        class Fixed(RandomOptimizer):
            def __init__(self, corner, name):
                super().__init__(SPACE, seed=0)
                self._corner = corner
                self.name = name

            def ask(self):
                return [self._corner]

        portfolio = PortfolioSearch(
            [Fixed(best.corner, "camper"),
             EvolutionaryOptimizer(SPACE, seed=0, mode="pareto")],
            round_size=4, scoring="hypervolume")
        drive(portfolio, budget=48, engine=FakeEngine())
        stats = {r["name"]: r for r in portfolio.standings()}
        assert stats["evolution"]["evaluations"] \
            > stats["camper"]["evaluations"]
        # Scalar scoring would have ranked the camper first every round.
        assert stats["camper"]["best_reward"] \
            >= stats["evolution"]["best_reward"]
