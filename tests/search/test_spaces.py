"""Generalised design spaces: axes, snapping, grids, mixed spaces."""

import numpy as np
import pytest

from repro.charlib import Corner
from repro.search import (Axis, SearchSpace, as_search_space, box_space,
                          default_grid, from_design_space, grid_space,
                          mixed_space)
from repro.stco import DesignSpace, default_space
from repro.utils.rng import make_rng


class TestAxis:
    def test_discrete_snap_to_nearest(self):
        axis = Axis.discrete("vdd_scale", (0.8, 1.0, 1.2))
        assert axis.snap(0.97) == 1.0
        assert axis.snap(0.0) == 0.8
        assert axis.snap(9.0) == 1.2

    def test_continuous_snap_clips_and_steps(self):
        axis = Axis.continuous("vdd_scale", 0.8, 1.2, step=0.05)
        assert axis.snap(1.03) == pytest.approx(1.05)
        assert axis.snap(0.5) == 0.8
        assert axis.snap(2.0) == pytest.approx(1.2)

    def test_continuous_snap_respects_corner_key_precision(self):
        axis = Axis.continuous("vdd_scale", 0.8, 1.2)
        v = axis.snap(1.0000000301)
        assert v == round(v, 6)

    def test_perturb_stays_in_range(self):
        rng = make_rng(0)
        axis = Axis.continuous("vth_shift", -0.1, 0.1)
        values = [axis.perturb(0.0, rng, scale=2.0) for _ in range(50)]
        assert all(-0.1 <= v <= 0.1 for v in values)

    def test_discrete_perturb_moves_one_step(self):
        rng = make_rng(1)
        axis = Axis.discrete("cox_scale", (0.8, 1.0, 1.2))
        for _ in range(20):
            v = axis.perturb(1.0, rng)
            assert v in (0.8, 1.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            Axis.discrete("x", ())
        with pytest.raises(ValueError):
            Axis.continuous("x", 1.0, 1.0)


class TestGridSpace:
    def test_matches_design_space(self):
        ds = default_space()
        grid = from_design_space(ds)
        assert grid.size == ds.size
        for i in (0, 7, 21, ds.size - 1):
            assert grid.point(i) == ds.point(i)
            assert grid.neighbors(i) == ds.neighbors(i)
            assert grid.index_of(ds.point(i)) == i

    def test_index_of_rejects_foreign_corner(self):
        grid = default_grid()
        with pytest.raises(ValueError, match="not a point"):
            grid.index_of(Corner(0.123, 0.0, 1.0))

    def test_points_are_corners(self):
        grid = grid_space(vdd_scale=(0.9, 1.1), vth_shift=(0.0,),
                          cox_scale=(1.0,))
        pts = grid.points()
        assert len(pts) == 2
        assert all(isinstance(p, Corner) for p in pts)

    def test_random_index_in_range(self):
        grid = default_grid()
        rng = make_rng(0)
        assert all(0 <= grid.random_index(rng) < grid.size
                   for _ in range(20))


class TestBoxAndMixed:
    def test_box_sample_snaps(self):
        space = box_space(step=0.1, vdd_scale=(0.8, 1.2),
                          cox_scale=(0.8, 1.2))
        rng = make_rng(3)
        for _ in range(20):
            point = space.sample_point(rng)
            corner = space.corner(point)
            assert 0.8 <= corner.vdd_scale <= 1.2
            # Snapped to the 0.1 resolution grid anchored at 0.8.
            assert round((corner.vdd_scale - 0.8) / 0.1, 6) \
                == int(round((corner.vdd_scale - 0.8) / 0.1))
            # Unlisted knobs take their nominal defaults.
            assert corner.vth_shift == 0.0

    def test_mixed_space_axes(self):
        space = mixed_space(vdd_scale=(0.8, 1.2),              # box
                            vth_shift=(-0.1, 0.0, 0.1),        # discrete
                            cox_scale=Axis.discrete("cox_scale",
                                                    (0.9, 1.1)))
        assert not space.is_grid
        rng = make_rng(0)
        for _ in range(10):
            c = space.corner(space.sample_point(rng))
            assert c.vth_shift in (-0.1, 0.0, 0.1)
            assert c.cox_scale in (0.9, 1.1)
            assert 0.8 <= c.vdd_scale <= 1.2

    def test_grid_api_requires_grid(self):
        space = box_space(vdd_scale=(0.8, 1.2))
        with pytest.raises(TypeError, match="grid"):
            space.size
        with pytest.raises(TypeError, match="grid"):
            space.neighbors(0)

    def test_perturb_moves_at_least_one_axis(self):
        space = mixed_space(vdd_scale=(0.8, 1.2),
                            vth_shift=(-0.1, 0.0, 0.1))
        rng = make_rng(5)
        point = space.snap_point((1.0, 0.0))
        for _ in range(20):
            assert space.perturb_point(point, rng) != point \
                or True  # perturb may return same discrete value at edge
        # Statistically some moves must differ.
        moved = [space.perturb_point(point, rng) != point
                 for _ in range(30)]
        assert any(moved)


class TestFactories:
    def test_unknown_knob_needs_factory(self):
        # Grids build their corner index eagerly, so the missing-factory
        # error surfaces at construction…
        with pytest.raises(ValueError, match="corner_factory"):
            grid_space(fin_count=(1.0, 2.0))
        # …continuous spaces surface it at the first corner() call.
        space = box_space(fin_count=(1.0, 2.0))
        with pytest.raises(ValueError, match="corner_factory"):
            space.corner((1.5,))

    def test_custom_corner_factory(self):
        def factory(params):
            return Corner(params["vdd"], 0.0, params["fins"] / 2.0)
        space = grid_space(corner_factory=factory,
                           vdd=(0.9, 1.1), fins=(1.0, 2.0))
        corner = space.point(3)
        assert corner == Corner(1.1, 0.0, 1.0)

    def test_as_search_space_passthrough_and_coercion(self):
        ds = DesignSpace(vdd_scales=(0.9, 1.1), vth_shifts=(0.0,),
                         cox_scales=(1.0,))
        coerced = as_search_space(ds)
        assert isinstance(coerced, SearchSpace)
        assert coerced.size == ds.size
        assert as_search_space(coerced) is coerced

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SearchSpace([Axis.discrete("a", (1.0,)),
                         Axis.discrete("a", (2.0,))])
