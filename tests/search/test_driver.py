"""SearchRun end-to-end: real engine, real GNN builder, real flow.

Includes the subsystem's acceptance test: the default scalarised
annealing/evolutionary optimizers must find the grid optimum of
``default_space()`` in fewer engine evaluations (cache misses) than
``GridSearchAgent``'s exhaustive 45.
"""

import numpy as np
import pytest

from repro.engine import EngineConfig, EvaluationEngine, PPAWeights
from repro.search import (EvolutionaryOptimizer, ParetoArchive, SearchRun,
                          SimulatedAnnealing, SurrogateGuidedOptimizer,
                          non_dominated)
from repro.stco import default_space

from .conftest import FakeEngine


class TestSearchRunMechanics:
    def test_dedup_and_counters(self, fake_engine):
        space = default_space()
        anneal = SimulatedAnnealing(space, seed=0)
        result = SearchRun(None, anneal, fake_engine).run(budget=30)
        assert len(result.rewards) == 30
        assert result.evaluations <= 30
        # Engine only ran flows for distinct corners.
        assert fake_engine.flow_evaluations == result.evaluations
        assert result.engine_misses == result.evaluations
        assert len(result.records) == result.evaluations
        assert 1 <= result.evaluations_to_optimum <= result.evaluations

    def test_budget_is_hard(self, fake_engine):
        space = default_space()
        evo = EvolutionaryOptimizer(space, seed=0, mu=8, lam=8)
        result = SearchRun(None, evo, fake_engine).run(budget=10)
        assert len(result.rewards) == 10

    def test_shared_archive_accumulates(self, fake_engine):
        space = default_space()
        archive = ParetoArchive()
        SearchRun(None, SimulatedAnnealing(space, seed=0), fake_engine,
                  archive=archive).run(budget=10)
        seen_one = archive.seen
        SearchRun(None, SimulatedAnnealing(space, seed=1), fake_engine,
                  archive=archive).run(budget=10)
        assert archive.seen == seen_one + 10

    def test_result_to_dict_json(self, fake_engine):
        import json
        space = default_space()
        result = SearchRun(None, SimulatedAnnealing(space, seed=0),
                           fake_engine).run(budget=8)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["optimizer"] == "anneal"
        assert len(payload["rewards"]) == 8


class TestProgressCallback:
    def test_snapshot_per_round(self, fake_engine):
        import json
        space = default_space()
        snapshots = []
        result = SearchRun(None, SimulatedAnnealing(space, seed=0),
                           fake_engine).run(
            budget=8, progress_callback=snapshots.append)
        # Annealing asks one corner per round: one snapshot per told
        # evaluation, monotonically advancing.
        assert [s["round"] for s in snapshots] == list(range(1, 9))
        assert snapshots[-1]["told"] == 8
        assert snapshots[-1]["budget"] == 8
        best_seen = [s["best_reward"] for s in snapshots]
        assert best_seen == sorted(best_seen)      # best only improves
        assert best_seen[-1] == result.best_reward
        assert snapshots[-1]["evaluations"] == result.evaluations
        assert snapshots[-1]["engine_misses"] == result.engine_misses
        json.dumps(snapshots)                      # JSON-able contract

    def test_none_callback_is_bit_identical(self, fake_engine):
        space = default_space()
        plain = SearchRun(None, SimulatedAnnealing(space, seed=0),
                          fake_engine).run(budget=10)
        hooked = SearchRun(None, SimulatedAnnealing(space, seed=0),
                           fake_engine).run(
            budget=10, progress_callback=lambda s: None)
        assert hooked.rewards == plain.rewards
        assert hooked.best_corner == plain.best_corner

    def test_callback_exception_aborts_run(self, fake_engine):
        space = default_space()

        class Abort(Exception):
            pass

        def bomb(snapshot):
            if snapshot["round"] >= 3:
                raise Abort()

        with pytest.raises(Abort):
            SearchRun(None, SimulatedAnnealing(space, seed=0),
                      fake_engine).run(budget=30,
                                       progress_callback=bomb)
        # The abort fired mid-run: only the rounds before it executed.
        assert fake_engine.flow_evaluations <= 3


class TestAcceptance:
    """Real engine + GNN builder on the 45-point default space."""

    def test_beats_exhaustive_grid(self, builder, netlist):
        space = default_space()
        weights = PPAWeights()
        found = {}
        for make in (lambda: SimulatedAnnealing(space, seed=0),
                     lambda: EvolutionaryOptimizer(space, seed=0)):
            engine = EvaluationEngine(builder, EngineConfig())
            optimizer = make()
            result = SearchRun(netlist, optimizer, engine,
                               weights=weights).run(budget=32)
            # Fewer engine evaluations (cache misses) than the
            # exhaustive 45-point sweep.
            assert result.engine_misses < space.size
            assert result.evaluations < space.size
            # Exhaustive ground truth through the same engine (already
            # -explored corners are cache hits, so total misses ≤ 45).
            records = engine.evaluate_many(netlist, space.points(),
                                           weights)
            best = max(records, key=lambda r: r.reward)
            assert result.best_corner == best.corner.key()
            assert result.best_reward == pytest.approx(best.reward)
            found[optimizer.name] = (result.engine_misses,
                                     result.evaluations_to_optimum)
        assert set(found) == {"anneal", "evolution"}

    def test_surrogate_ranker_uses_gnn_hook(self, builder, netlist):
        space = default_space()
        engine = EvaluationEngine(builder, EngineConfig())
        guided = SurrogateGuidedOptimizer.from_builder(
            space, builder, weights=PPAWeights(), seed=0, pool=10,
            batch=2)
        assert guided.ranker is not None
        result = SearchRun(netlist, guided, engine).run(budget=10)
        # Ranking happens outside the engine: far fewer flows than the
        # candidates the surrogate screened.
        assert result.engine_misses <= 10
        assert np.isfinite(result.best_reward)
        assert result.pareto_front

    def test_multi_objective_front_on_real_flow(self, builder, netlist):
        space = default_space()
        engine = EvaluationEngine(builder, EngineConfig())
        evo = EvolutionaryOptimizer(space, seed=0, mode="pareto")
        result = SearchRun(netlist, evo, engine).run(budget=24)
        front = result.pareto_front
        assert front
        vectors = [(f["power_w"], f["delay_s"], f["area_um2"])
                   for f in front]
        assert len(non_dominated(vectors)) == len(vectors)
        assert result.hypervolume > 0 or len(front) == 1
