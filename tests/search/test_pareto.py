"""Pareto machinery: dominance, sorting, crowding, hypervolume, archive."""

import numpy as np
import pytest

from repro.charlib import Corner
from repro.engine.records import EvaluationRecord, PPAWeights
from repro.search import (ParetoArchive, crowding_distance, dominates,
                          hypervolume, non_dominated, non_dominated_sort)

from .conftest import FakeResult


def record(power, delay, area, corner=None):
    result = FakeResult(total_power_w=power, min_period_s=delay,
                        area_um2=area)
    corner = corner if corner is not None else Corner(
        round(power * 1e5, 6), round(delay * 1e7 - 1.0, 6), 1.0)
    return EvaluationRecord(corner=corner, result=result,
                            reward=PPAWeights().score(result),
                            library_runtime_s=0.0, flow_runtime_s=0.0)


class TestDominance:
    def test_dominates(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 2), (2, 1))
        assert not dominates((1, 1), (1, 1))

    def test_non_dominated(self):
        vectors = [(1, 3), (2, 2), (3, 1), (3, 3)]
        assert non_dominated(vectors) == [0, 1, 2]

    def test_non_dominated_sort_fronts(self):
        vectors = [(1, 3), (3, 1), (2, 4), (4, 2), (5, 5)]
        fronts = non_dominated_sort(vectors)
        assert fronts[0] == [0, 1]
        assert fronts[1] == [2, 3]
        assert fronts[2] == [4]

    def test_crowding_extremes_infinite(self):
        vectors = [(1, 4), (2, 3), (3, 2), (4, 1)]
        dist = crowding_distance(vectors)
        assert np.isinf(dist[0]) and np.isinf(dist[3])
        assert np.isfinite(dist[1]) and np.isfinite(dist[2])


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume([(0.0, 0.0)], (1.0, 1.0)) == pytest.approx(1.0)

    def test_two_points_2d(self):
        hv = hypervolume([(0.0, 0.5), (0.5, 0.0)], (1.0, 1.0))
        assert hv == pytest.approx(0.75)

    def test_three_points_3d_inclusion_exclusion(self):
        pts = [(0, 0, 0.5), (0.5, 0, 0), (0, 0.5, 0)]
        assert hypervolume(pts, (1, 1, 1)) == pytest.approx(0.875)

    def test_dominated_points_add_nothing(self):
        base = hypervolume([(0.2, 0.2)], (1.0, 1.0))
        with_dup = hypervolume([(0.2, 0.2), (0.5, 0.5)], (1.0, 1.0))
        assert with_dup == pytest.approx(base)

    def test_points_outside_reference_ignored(self):
        assert hypervolume([(2.0, 2.0)], (1.0, 1.0)) == 0.0

    def test_more_points_more_volume(self):
        one = hypervolume([(0.5, 0.5, 0.5)], (1, 1, 1))
        two = hypervolume([(0.5, 0.5, 0.5), (0.1, 0.9, 0.5)], (1, 1, 1))
        assert two > one


class TestParetoArchive:
    def test_keeps_only_non_dominated(self):
        archive = ParetoArchive()
        assert archive.add(record(1e-5, 1e-7, 1e4))
        assert archive.add(record(2e-5, 0.5e-7, 1e4))   # trade-off: kept
        assert not archive.add(record(3e-5, 2e-7, 2e4))  # dominated
        assert len(archive) == 2
        assert archive.seen == 3
        assert archive.dominated == 1

    def test_insert_evicts_dominated(self):
        archive = ParetoArchive()
        archive.add(record(2e-5, 2e-7, 1e4))
        archive.add(record(1e-5, 1e-7, 1e4, corner=Corner(0.9, 0, 1)))
        assert len(archive) == 1
        assert archive.front()[0].result.total_power_w == 1e-5

    def test_duplicate_corner_skipped(self):
        archive = ParetoArchive()
        c = Corner(1.0, 0.0, 1.0)
        archive.add(record(1e-5, 1e-7, 1e4, corner=c))
        assert not archive.add(record(9e-6, 1e-7, 1e4, corner=c))
        assert len(archive) == 1

    def test_front_is_mutually_non_dominated(self):
        rng = np.random.default_rng(0)
        archive = ParetoArchive()
        for i in range(60):
            p, d, a = rng.uniform(0.5, 2.0, size=3)
            archive.add(record(p * 1e-5, d * 1e-7, a * 1e4,
                               corner=Corner(float(i), 0.0, 1.0)))
        vectors = archive.vectors()
        assert len(non_dominated(vectors)) == len(vectors)

    def test_scalarized_best_matches_weights(self):
        archive = ParetoArchive()
        records = [record(1e-5, 1e-7, 1e4, corner=Corner(1, 0, 1)),
                   record(3e-6, 3e-7, 1e4, corner=Corner(2, 0, 1)),
                   record(5e-5, 0.5e-7, 1e4, corner=Corner(3, 0, 1))]
        for r in records:
            archive.add(r)
        for weights in (PPAWeights(), PPAWeights(power=3.0),
                        PPAWeights(performance=3.0)):
            expect = max(records, key=lambda r: weights.score(r.result))
            assert archive.scalarized_best(weights) is expect

    def test_hypervolume_grows_with_coverage(self):
        archive = ParetoArchive()
        archive.add(record(1e-5, 1e-7, 1e4, corner=Corner(1, 0, 1)))
        ref = None
        archive.add(record(0.9e-5, 1.1e-7, 1e4, corner=Corner(2, 0, 1)))
        ref = archive.reference_point()
        hv_two = archive.hypervolume(ref)
        # A new trade-off point inside the reference box grows the front.
        archive.add(record(0.5e-5, 1.2e-7, 1e4, corner=Corner(3, 0, 1)))
        assert archive.hypervolume(ref) > hv_two

    def test_summary_round_trips_to_json(self):
        import json
        archive = ParetoArchive()
        archive.add(record(1e-5, 1e-7, 1e4))
        row = json.loads(json.dumps(archive.summary()))[0]
        assert set(row) == {"corner", "power_w", "delay_s", "area_um2",
                            "reward"}

    def test_empty_archive(self):
        archive = ParetoArchive()
        assert archive.hypervolume() == 0.0
        assert archive.front() == []
        with pytest.raises(ValueError):
            archive.reference_point()
