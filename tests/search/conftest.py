"""Shared fixtures for the search subsystem tests.

``FakeEngine`` evaluates corners with an analytic PPA model — the
optimizer/driver/portfolio unit tests run in milliseconds and make the
search landscape fully controllable. The ``builder`` fixture trains the
real (tiny) characterization GNN for the end-to-end acceptance tests.
"""

from dataclasses import dataclass, replace

import pytest

from repro.charlib import (CharConfig, CharTrainConfig, Corner,
                           GNNLibraryBuilder, build_char_dataset,
                           train_char_model)
from repro.eda import build_benchmark
from repro.engine.records import EvaluationRecord, PPAWeights

FAST_CFG = CharConfig(slews=(8e-9,), loads=(15e-15,), n_bisect=3,
                      max_steps=200)
CELLS = ("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1")


@dataclass
class FakeResult:
    """The SystemResult fields the search layer consumes."""

    total_power_w: float
    min_period_s: float
    area_um2: float

    @property
    def fmax_hz(self) -> float:
        return 1.0 / self.min_period_s

    def ppa(self) -> dict:
        return {"power_w": self.total_power_w,
                "performance_hz": self.fmax_hz,
                "area_um2": self.area_um2}


def smooth_ppa(corner: Corner) -> FakeResult:
    """A smooth landscape: faster at high VDD, thirstier at low Vth.

    The scalarised optimum with default weights sits at an interior
    trade-off, and the three objectives genuinely conflict, so Pareto
    fronts have more than one point.
    """
    v, t, c = corner.vdd_scale, corner.vth_shift, corner.cox_scale
    delay = 1e-7 * (1.0 + (1.3 - v) ** 2 + 2.0 * (t + 0.1) ** 2) / c
    power = 1e-5 * (v ** 3) * c * (1.0 + 4.0 * (0.15 - t))
    area = 1e4 * (1.0 + 0.2 * c)
    return FakeResult(total_power_w=power, min_period_s=delay,
                      area_um2=area)


class FakeEngine:
    """Engine-shaped analytic evaluator (cache + counters included)."""

    def __init__(self, fn=smooth_ppa):
        self.fn = fn
        self.flow_evaluations = 0
        self.characterizations = 0
        self._cache = {}

    def evaluate(self, netlist, corner, weights=None):
        return self.evaluate_many(netlist, [corner], weights)[0]

    def evaluate_many(self, netlist, corners, weights=None):
        weights = weights if weights is not None else PPAWeights()
        out = []
        for corner in corners:
            key = (corner.key(), weights.key())
            if key in self._cache:
                out.append(replace(self._cache[key], cached=True))
                continue
            result = self.fn(corner)
            record = EvaluationRecord(corner=corner, result=result,
                                      reward=weights.score(result),
                                      library_runtime_s=1e-3,
                                      flow_runtime_s=1e-3)
            self._cache[key] = record
            self.flow_evaluations += 1
            self.characterizations += 1
            out.append(record)
        return out


@pytest.fixture
def fake_engine():
    return FakeEngine()


@pytest.fixture(scope="session")
def trained(tmp_path_factory):
    cache = tmp_path_factory.mktemp("search_char_cache")
    dataset = build_char_dataset(
        "ltps", cells=CELLS,
        train_corners=[Corner(1.0, 0.0, 1.0), Corner(0.9, 0.05, 1.1)],
        test_corners=[Corner(0.95, 0.02, 1.05)],
        config=FAST_CFG, cache_dir=cache)
    model = train_char_model(dataset,
                             train_config=CharTrainConfig(epochs=10))
    return model, dataset


@pytest.fixture(scope="session")
def builder(trained):
    model, dataset = trained
    return GNNLibraryBuilder(model, dataset, cells=CELLS, config=FAST_CFG)


@pytest.fixture(scope="session")
def netlist():
    return build_benchmark("s298")
