"""Tests for transient analysis and waveform measurements."""

import numpy as np
import pytest

from repro.compact import TFTParams
from repro.spice import (Circuit, Pulse, average_power, crossing_times,
                         first_crossing, integrate_supply_energy,
                         propagation_delay, settles_to, transient,
                         transition_time)

NMOS = TFTParams(polarity="n", vth=0.8, mu0=50e-4, gamma=0.2, ss=0.2,
                 cox=1e-4, w=20e-6, l=4e-6, cov=2e-10)
PMOS = TFTParams(polarity="p", vth=-0.8, mu0=25e-4, gamma=0.2, ss=0.2,
                 cox=1e-4, w=40e-6, l=4e-6, cov=2e-10)
VDD = 3.0


def inverter_tran():
    ckt = Circuit("inv")
    ckt.vsource("vdd", "vdd", "0", VDD)
    ckt.vsource("vin", "in", "0",
                Pulse(0.0, VDD, td=1e-7, tr=2e-8, tf=2e-8, pw=3e-7))
    ckt.tft("mp", "out", "in", "vdd", PMOS)
    ckt.tft("mn", "out", "in", "0", NMOS)
    ckt.capacitor("cl", "out", "0", 50e-15)
    return ckt


class TestRCTransient:
    def _rc(self):
        ckt = Circuit("rc")
        ckt.vsource("v1", "a", "0", Pulse(0.0, 1.0, td=0.0, tr=1e-12,
                                          tf=1e-12, pw=1.0))
        ckt.resistor("r1", "a", "b", 1000.0)
        ckt.capacitor("c1", "b", "0", 1e-9)  # tau = 1 us
        return ckt

    def test_exponential_charge_be(self):
        res = transient(self._rc(), t_stop=5e-6, dt=2e-8)
        v = res.v("b")
        t = res.t
        expected = 1.0 - np.exp(-t / 1e-6)
        # BE is first order; modest tolerance.
        assert np.max(np.abs(v[5:] - expected[5:])) < 0.03

    def test_trapezoidal_more_accurate_on_smooth_input(self):
        """With an input ramp resolved by the grid (no step discontinuity),
        second-order trapezoidal beats first-order BE."""
        def rc_ramp():
            ckt = Circuit("rc")
            ckt.vsource("v1", "a", "0", Pulse(0.0, 1.0, td=0.0, tr=1e-6,
                                              tf=1e-6, pw=10.0))
            ckt.resistor("r1", "a", "b", 1000.0)
            ckt.capacitor("c1", "b", "0", 1e-9)
            return ckt

        tau, t_r = 1e-6, 1e-6

        def exact(t):
            # Ramp response of a first-order RC (piecewise analytic).
            ramp = (t - tau * (1 - np.exp(-t / tau))) / t_r
            after = ((t - t_r) - tau * (1 - np.exp(-(t - t_r) / tau))) / t_r
            return np.where(t < t_r, ramp, ramp - after)

        res_be = transient(rc_ramp(), t_stop=4e-6, dt=1e-7)
        res_tr = transient(rc_ramp(), t_stop=4e-6, dt=1e-7, method="trap")
        err_be = np.max(np.abs(res_be.v("b") - exact(res_be.t)))
        err_tr = np.max(np.abs(res_tr.v("b") - exact(res_tr.t)))
        assert err_tr < err_be

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            transient(self._rc(), 1e-6, 1e-8, method="euler")

    def test_time_axis(self):
        res = transient(self._rc(), t_stop=1e-6, dt=1e-7)
        assert res.t[0] == 0.0
        assert res.t[-1] >= 1e-6
        assert len(res.t) == 11


class TestInverterTransient:
    @pytest.fixture(scope="class")
    def result(self):
        return transient(inverter_tran(), t_stop=6e-7, dt=2e-9)

    def test_converged(self, result):
        assert result.converged

    def test_output_switches_both_ways(self, result):
        out = result.v("out")
        assert out[0] > 2.9                       # high before edge
        mid = out[(result.t > 2e-7) & (result.t < 3.5e-7)]
        assert mid.min() < 0.1                    # low after rising input

    def test_delays_positive_and_sane(self, result):
        d_f = propagation_delay(result.t, result.v("in"), result.v("out"),
                                VDD, in_rising=True, out_rising=False)
        d_r = propagation_delay(result.t, result.v("in"), result.v("out"),
                                VDD, in_rising=False, out_rising=True,
                                after=3e-7)
        assert 1e-9 < d_f < 1e-7
        assert 1e-9 < d_r < 1e-7

    def test_output_slew_measured(self, result):
        s = transition_time(result.t, result.v("out"), VDD, rising=False,
                            after=1e-7)
        assert 1e-9 < s < 2e-7

    def test_load_increases_delay(self):
        def delay_with(cl):
            ckt = Circuit("inv")
            ckt.vsource("vdd", "vdd", "0", VDD)
            ckt.vsource("vin", "in", "0",
                        Pulse(0.0, VDD, td=1e-7, tr=2e-8, tf=2e-8, pw=4e-7))
            ckt.tft("mp", "out", "in", "vdd", PMOS)
            ckt.tft("mn", "out", "in", "0", NMOS)
            ckt.capacitor("cl", "out", "0", cl)
            res = transient(ckt, t_stop=4e-7, dt=2e-9)
            return propagation_delay(res.t, res.v("in"), res.v("out"), VDD,
                                     in_rising=True, out_rising=False)

        assert delay_with(100e-15) > delay_with(20e-15)

    def test_dynamic_energy_positive(self, result):
        e = integrate_supply_energy(result.t, result.i("vdd"), VDD)
        assert e > 0
        # CV^2-scale sanity: tens of fJ to pJ for 50 fF at 3 V.
        assert 1e-14 < e < 1e-11

    def test_average_power(self, result):
        p = average_power(result.t, result.i("vdd"), VDD)
        assert p > 0


class TestRingOscillator:
    def test_three_stage_ring_oscillates(self):
        ckt = Circuit("ring3")
        ckt.vsource("vdd", "vdd", "0", VDD)
        nodes = ["n1", "n2", "n3"]
        for i in range(3):
            a, y = nodes[i], nodes[(i + 1) % 3]
            ckt.tft(f"mp{i}", y, a, "vdd", PMOS)
            ckt.tft(f"mn{i}", y, a, "0", NMOS)
            ckt.capacitor(f"c{i}", y, "0", 10e-15)
        # Kick the ring out of its metastable DC point.
        ckt.isource("kick", "0", "n1",
                    Pulse(0.0, 1e-6, td=0, tr=1e-9, tf=1e-9, pw=2e-8))
        res = transient(ckt, t_stop=2e-6, dt=4e-9)
        v = res.v("n1")[len(res.t) // 2:]
        # Oscillation: output repeatedly crosses mid-rail.
        crossings = crossing_times(res.t[len(res.t) // 2:], v, VDD / 2)
        assert len(crossings) >= 4
        assert v.max() > 2.0 and v.min() < 1.0


class TestMeasureHelpers:
    def test_crossing_times_interpolation(self):
        t = np.array([0.0, 1.0, 2.0])
        v = np.array([0.0, 2.0, 0.0])
        ups = crossing_times(t, v, 1.0, rising=True)
        downs = crossing_times(t, v, 1.0, rising=False)
        np.testing.assert_allclose(ups, [0.5])
        np.testing.assert_allclose(downs, [1.5])

    def test_first_crossing_after(self):
        t = np.linspace(0, 10, 101)
        v = np.sin(t)
        c = first_crossing(t, v, 0.0, rising=True, after=5.0)
        assert c == pytest.approx(2 * np.pi, abs=0.1)

    def test_first_crossing_none_is_nan(self):
        t = np.linspace(0, 1, 10)
        assert np.isnan(first_crossing(t, np.zeros(10), 1.0))

    def test_propagation_delay_nan_when_no_output_edge(self):
        t = np.linspace(0, 1, 100)
        vin = np.where(t > 0.5, 3.0, 0.0)
        vout = np.full_like(t, 3.0)
        assert np.isnan(propagation_delay(t, vin, vout, 3.0, True, False))

    def test_settles_to(self):
        t = np.linspace(0, 1, 100)
        v = 3.0 * (1 - np.exp(-t * 20))
        assert settles_to(t, v, 3.0, tol=0.05)
        assert not settles_to(t, v, 0.0, tol=0.05)

    def test_energy_window(self):
        t = np.linspace(0, 1, 101)
        i = np.full_like(t, -1e-3)   # constant 1 mA draw
        e = integrate_supply_energy(t, i, 2.0, t0=0.0, t1=0.5)
        assert e == pytest.approx(1e-3, rel=1e-6)
