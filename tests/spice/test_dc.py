"""Tests for netlist construction, waveforms, and DC analyses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compact import TFTParams
from repro.spice import (Circuit, DC, PWL, Pulse, dc_operating_point,
                         dc_sweep)

NMOS = TFTParams(polarity="n", vth=0.8, mu0=50e-4, gamma=0.2, ss=0.2,
                 cox=1e-4, w=20e-6, l=4e-6)
PMOS = TFTParams(polarity="p", vth=-0.8, mu0=25e-4, gamma=0.2, ss=0.2,
                 cox=1e-4, w=40e-6, l=4e-6)


def inverter(vdd=3.0, vin=0.0):
    ckt = Circuit("inv")
    ckt.vsource("vdd", "vdd", "0", vdd)
    ckt.vsource("vin", "in", "0", vin)
    ckt.tft("mp", "out", "in", "vdd", PMOS)
    ckt.tft("mn", "out", "in", "0", NMOS)
    return ckt


class TestWaveforms:
    def test_dc(self):
        assert DC(2.5)(0.0) == 2.5
        assert DC(2.5)(1e9) == 2.5

    def test_pulse_phases(self):
        p = Pulse(0.0, 3.0, td=10e-9, tr=5e-9, tf=5e-9, pw=20e-9)
        assert p(0.0) == 0.0
        assert p(10e-9 + 2.5e-9) == pytest.approx(1.5)
        assert p(20e-9) == 3.0
        assert p(10e-9 + 5e-9 + 20e-9 + 2.5e-9) == pytest.approx(1.5)
        assert p(100e-9) == 0.0

    def test_pulse_periodic(self):
        p = Pulse(0.0, 1.0, td=0, tr=1e-9, tf=1e-9, pw=3e-9, period=10e-9)
        assert p(0.5e-9) == pytest.approx(p(10.5e-9))

    def test_pwl(self):
        w = PWL((0.0, 1.0, 2.0), (0.0, 3.0, 3.0))
        assert w(0.5) == pytest.approx(1.5)
        assert w(5.0) == 3.0

    def test_pwl_validation(self):
        with pytest.raises(ValueError):
            PWL((0.0, 1.0), (1.0,))
        with pytest.raises(ValueError):
            PWL((1.0, 0.5), (0.0, 0.0))


class TestCircuit:
    def test_duplicate_name_rejected(self):
        ckt = Circuit()
        ckt.resistor("r1", "a", "0", 100.0)
        with pytest.raises(ValueError):
            ckt.resistor("r1", "b", "0", 100.0)

    def test_nodes_exclude_ground(self):
        ckt = inverter()
        assert "0" not in ckt.nodes()
        assert set(ckt.nodes()) == {"vdd", "in", "out"}

    def test_invalid_resistor(self):
        with pytest.raises(ValueError):
            Circuit().resistor("r", "a", "0", -1.0)

    def test_vsource_scalar_becomes_dc(self):
        ckt = Circuit()
        ckt.vsource("v1", "a", "0", 1.5)
        assert ckt.voltage_sources()[0].value(0.0) == 1.5


class TestLinearDC:
    def test_voltage_divider(self):
        ckt = Circuit()
        ckt.vsource("v1", "a", "0", 10.0)
        ckt.resistor("r1", "a", "b", 1000.0)
        ckt.resistor("r2", "b", "0", 3000.0)
        op = dc_operating_point(ckt)
        assert op.converged
        assert op.v("b") == pytest.approx(7.5, rel=1e-6)

    def test_source_current(self):
        ckt = Circuit()
        ckt.vsource("v1", "a", "0", 10.0)
        ckt.resistor("r1", "a", "0", 1000.0)
        op = dc_operating_point(ckt)
        # Current into + terminal is negative when sourcing.
        assert op.i("v1") == pytest.approx(-0.01, rel=1e-6)

    def test_current_source(self):
        ckt = Circuit()
        ckt.isource("i1", "0", "a", 1e-3)  # pushes current into node a
        ckt.resistor("r1", "a", "0", 2000.0)
        op = dc_operating_point(ckt)
        assert op.v("a") == pytest.approx(2.0, rel=1e-5)

    def test_kcl_conservation(self):
        """Sum of all vsource currents equals zero in a closed loop."""
        ckt = Circuit()
        ckt.vsource("v1", "a", "0", 5.0)
        ckt.resistor("r1", "a", "b", 500.0)
        ckt.vsource("v2", "b", "0", 1.0)
        op = dc_operating_point(ckt)
        assert op.i("v1") + (5.0 - 1.0) / 500.0 == pytest.approx(0, abs=1e-9)


class TestInverterDC:
    def test_output_high_for_low_input(self):
        op = dc_operating_point(inverter(vin=0.0))
        assert op.converged
        assert op.v("out") == pytest.approx(3.0, abs=0.01)

    def test_output_low_for_high_input(self):
        op = dc_operating_point(inverter(vin=3.0))
        assert op.v("out") == pytest.approx(0.0, abs=0.01)

    def test_leakage_small(self):
        op = dc_operating_point(inverter(vin=0.0))
        assert abs(op.i("vdd")) < 1e-9

    def test_transfer_curve_monotone_falling(self):
        ckt = inverter()
        sweep = dc_sweep(ckt, "vin", np.linspace(0, 3, 16),
                         record_nodes=["out"])
        out = sweep["out"]
        assert np.all(np.diff(out) <= 1e-6)
        assert out[0] > 2.9 and out[-1] < 0.1

    def test_switching_threshold_near_mid(self):
        ckt = inverter()
        sweep = dc_sweep(ckt, "vin", np.linspace(0, 3, 61),
                         record_nodes=["out"])
        vin = sweep["sweep"]
        out = sweep["out"]
        vm = float(np.interp(1.5, out[::-1], vin[::-1]))
        assert 1.0 < vm < 2.0

    def test_sweep_unknown_source_raises(self):
        with pytest.raises(KeyError):
            dc_sweep(inverter(), "nosuch", [0.0])


class TestNandDC:
    def _nand(self, va, vb, vdd=3.0):
        ckt = Circuit("nand2")
        ckt.vsource("vdd", "vdd", "0", vdd)
        ckt.vsource("va", "a", "0", va)
        ckt.vsource("vb", "b", "0", vb)
        ckt.tft("mpa", "out", "a", "vdd", PMOS)
        ckt.tft("mpb", "out", "b", "vdd", PMOS)
        ckt.tft("mna", "out", "a", "x", NMOS)
        ckt.tft("mnb", "x", "b", "0", NMOS)
        return ckt

    @pytest.mark.parametrize("va,vb,expect_high", [
        (0.0, 0.0, True), (0.0, 3.0, True), (3.0, 0.0, True),
        (3.0, 3.0, False)])
    def test_truth_table(self, va, vb, expect_high):
        op = dc_operating_point(self._nand(va, vb))
        assert op.converged
        if expect_high:
            assert op.v("out") > 2.9
        else:
            assert op.v("out") < 0.1


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=100.0, max_value=1e6),
       st.floats(min_value=100.0, max_value=1e6),
       st.floats(min_value=-10.0, max_value=10.0))
def test_property_divider_formula(r1, r2, v):
    """DC solution matches the analytic divider for any element values."""
    ckt = Circuit()
    ckt.vsource("v1", "a", "0", v)
    ckt.resistor("r1", "a", "b", r1)
    ckt.resistor("r2", "b", "0", r2)
    op = dc_operating_point(ckt)
    assert op.v("b") == pytest.approx(v * r2 / (r1 + r2), rel=1e-6,
                                      abs=1e-9)
