"""``repro predict``: the CLI front door of the tier-0 edge."""

import json

import pytest

from repro.api.cli import main
from repro.serve import ServeService, StcoServer

from .conftest import DESIGN


class TestPredictCli:
    def test_local_workspace_single_corner(self, predict_ws, capsys):
        rc = main(["predict", DESIGN, "--corner", "0.85,-0.05,0.9",
                   "--workspace", str(predict_ws.root)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["prediction"]["power_w"] > 0
        assert doc["uncertainty"]["mean_std"] >= 0.0

    def test_multiple_corners_batch(self, predict_ws, capsys):
        rc = main(["predict", DESIGN,
                   "--corner", "0.85,-0.05,0.9",
                   "--corner", "1.05,0.05,1.1",
                   "--workspace", str(predict_ws.root)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 2

    def test_remote_url(self, predict_ws, capsys):
        service = ServeService(predict_ws, workers=1)
        server = StcoServer(service).start()
        try:
            rc = main(["predict", DESIGN,
                       "--corner", "0.85,-0.05,0.9",
                       "--url", server.url])
        finally:
            server.close()
            service.close(timeout=10)
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["design"] == DESIGN

    def test_empty_workspace_exits_1(self, tmp_path, capsys):
        rc = main(["predict", DESIGN, "--corner", "1,0,1",
                   "--workspace", str(tmp_path / "empty")])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_bad_corner_exits_2(self, predict_ws, capsys):
        rc = main(["predict", DESIGN, "--corner", "1,2",
                   "--workspace", str(predict_ws.root)])
        assert rc == 2
        assert "three comma-separated" in capsys.readouterr().err

    def test_needs_target(self, capsys):
        rc = main(["predict", DESIGN, "--corner", "1,0,1"])
        assert rc == 2
        assert "--url or --workspace" in capsys.readouterr().err
