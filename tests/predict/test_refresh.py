"""ModelRefresher: warm refits track harvested truth without restarts."""

from dataclasses import replace

import pytest

from repro.api import run
from repro.predict import ModelRefresher, PredictService

from .conftest import DESIGN, SEARCH, SURROGATE, make_config


@pytest.fixture(scope="module")
def grown_ws(predict_ws):
    """The session workspace after a second, harvest-only run that
    visits corners the first run never evaluated — the registered
    ensemble goes stale, which is exactly the refresher's job (a
    ``persist_model`` run would retrain from scratch instead). Returns
    ``(ws, new_X)`` with the feature rows the second run added."""
    store = predict_ws.record_store()
    X_before, _ = store.matrices()
    run(make_config(search=replace(SEARCH, optimizer="anneal",
                                   seed=7, iterations=16),
                    surrogate=replace(SURROGATE,
                                      persist_model=False)),
        predict_ws)
    X_after, _ = store.matrices()
    assert len(X_after) > len(X_before), \
        "second run must harvest new corners"
    return predict_ws, X_after[len(X_before):]


class TestRefreshNow:
    def test_noop_below_delta(self, predict_ws):
        service = PredictService(predict_ws)
        service.predict(DESIGN, (0.85, -0.05, 0.9))
        refresher = ModelRefresher(predict_ws, service=service,
                                   delta_rows=10_000)
        out = refresher.refresh_now()
        assert out["refit"] is False

    def test_rejects_bad_delta(self, predict_ws):
        with pytest.raises(ValueError, match="delta_rows"):
            ModelRefresher(predict_ws, delta_rows=0)

    def test_refit_swaps_served_model_without_restart(self, grown_ws):
        ws, new_X = grown_ws
        service = PredictService(ws)
        service.predict(DESIGN, (0.85, -0.05, 0.9))
        before = service.info()
        stale_model = service.model()
        stale_std = stale_model.predict_batch(new_X)[1].mean()

        refresher = ModelRefresher(ws, service=service, delta_rows=1)
        out = refresher.refresh_now()
        assert out["refit"] is True
        assert out["trained_rows"] == len(ws.record_store())

        after = service.info()
        assert after["fingerprint"] != before["fingerprint"]
        assert after["trained_rows"] > before["trained_rows"]

        # The acceptance property: epistemic spread on the corners the
        # engine just ground-truthed strictly decreases.
        fresh_std = service.model().predict_batch(new_X)[1].mean()
        assert fresh_std < stale_std

        # Swap is visible to requests immediately (and the LRU key
        # change means no stale answer survives).
        doc = service.predict(DESIGN, (0.85, -0.05, 0.9))
        assert doc["model"]["fingerprint"] == after["fingerprint"]

    def test_refit_registers_artifact_in_stats(self, grown_ws):
        """The new fingerprint and row count surface through
        ``surrogate_stats`` — what /v1/workspace/stats serves."""
        ws, _ = grown_ws
        service = PredictService(ws)
        service.predict(DESIGN, (0.85, -0.05, 0.9))
        refresher = ModelRefresher(ws, service=service, delta_rows=1)
        refresher.refresh_now()           # refit (or no-op if current)
        stats = ws.surrogate_stats()
        latest = stats["latest_model"]
        assert latest["fingerprint"] == service.info()["fingerprint"]
        assert latest["trained_rows"] == len(ws.record_store())
        assert stats["rows_since_train"] == 0

    def test_second_refresh_is_noop(self, grown_ws):
        ws, _ = grown_ws
        service = PredictService(ws)
        service.predict(DESIGN, (0.85, -0.05, 0.9))
        refresher = ModelRefresher(ws, service=service, delta_rows=1)
        refresher.refresh_now()
        out = refresher.refresh_now()
        assert out["refit"] is False
        assert out["delta"] == 0


class TestBackgroundThread:
    def test_loop_refits_and_stops_cleanly(self, grown_ws):
        ws, _ = grown_ws
        service = PredictService(ws)
        service.predict(DESIGN, (0.85, -0.05, 0.9))
        # Force staleness: serve a model fitted on a strict row subset.
        from repro.surrogate.models import EnsembleConfig, EnsemblePPAModel
        X, Y = ws.record_store().matrices()
        stale = EnsemblePPAModel(
            EnsembleConfig(members=2, hidden=8, epochs=10,
                           seed=3)).fit(X[:-2], Y[:-2])
        service.swap_model(stale)
        assert service.info()["trained_rows"] < len(ws.record_store())

        refresher = ModelRefresher(ws, service=service, delta_rows=1,
                                   interval_s=0.05)
        refresher.start()
        try:
            import time
            deadline = time.monotonic() + 20
            while refresher.refits == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
        finally:
            refresher.close()
        assert refresher.refits >= 1
        assert service.info()["trained_rows"] == len(ws.record_store())
        assert refresher._thread is None
