"""/v1/predict over HTTP: shard endpoints, client, and router fan-out."""

import pytest

from repro.cluster.router import Router
from repro.serve import (ServeClient, ServeClientError, ServeService,
                         StcoServer)
from repro.serve.http import ROUTES as SHARD_ROUTES

from .conftest import DESIGN

CORNER = (0.85, -0.05, 0.9)
OTHER = (1.05, 0.05, 1.1)


def test_routes_declare_both_predict_endpoints():
    assert ("POST", "/v1/predict") in SHARD_ROUTES
    assert ("POST", "/v1/predict/batch") in SHARD_ROUTES


@pytest.fixture(scope="module")
def served(predict_ws):
    service = ServeService(predict_ws, workers=1)
    server = StcoServer(service).start()
    yield ServeClient(server.url), server
    server.close()
    service.close(timeout=10)


class TestShardEndpoints:
    def test_predict_round_trip(self, served):
        client, _ = served
        doc = client.predict(DESIGN, CORNER)
        assert doc["prediction"]["power_w"] > 0
        assert doc["uncertainty"]["mean_std"] >= 0.0
        assert doc["model"]["fingerprint"]

    def test_second_identical_query_is_cached(self, served):
        client, _ = served
        client.predict(DESIGN, OTHER)
        assert client.predict(DESIGN, OTHER)["cached"] is True

    def test_batch_round_trip(self, served):
        client, _ = served
        doc = client.predict_batch(DESIGN, [CORNER, OTHER])
        assert doc["count"] == 2
        assert all("uncertainty" in p for p in doc["predictions"])

    def test_malformed_corner_is_400(self, served):
        client, _ = served
        with pytest.raises(ServeClientError) as exc:
            client._request("POST", "/v1/predict",
                            {"design": DESIGN, "corner": [1.0]})
        assert exc.value.status == 400

    def test_unknown_design_is_400(self, served):
        client, _ = served
        with pytest.raises(ServeClientError) as exc:
            client.predict("no-such-design", CORNER)
        assert exc.value.status == 400

    def test_empty_workspace_is_409(self, tmp_path):
        from repro.api import Workspace
        service = ServeService(Workspace(tmp_path / "ws"), workers=1)
        server = StcoServer(service).start()
        try:
            with pytest.raises(ServeClientError) as exc:
                ServeClient(server.url).predict(DESIGN, CORNER)
            assert exc.value.status == 409
        finally:
            server.close()
            service.close(timeout=10)

    def test_predict_metrics_exported(self, served):
        client, _ = served
        client.predict(DESIGN, CORNER)
        client.predict(DESIGN, CORNER)
        text = client.metrics()
        assert "repro_predict_requests_total" in text
        hit_lines = [l for l in text.splitlines()
                     if l.startswith("repro_predict_cache_total")
                     and 'event="hit"' in l]
        assert hit_lines and float(hit_lines[0].rsplit(" ", 1)[1]) >= 1


class TestRouterFanOut:
    """Predict is stateless: the router answers from any shard holding
    a model, skipping 409s. Stub clients keep this test instant."""

    class _Lacking:
        def predict(self, design, corner):
            raise ServeClientError(409, "no servable model")

        def predict_batch(self, design, corners):
            raise ServeClientError(409, "no servable model")

    class _Serving:
        def __init__(self):
            self.calls = 0

        def predict(self, design, corner):
            self.calls += 1
            return {"design": design, "corner": list(corner),
                    "cached": False}

        def predict_batch(self, design, corners):
            self.calls += 1
            return {"design": design, "count": len(corners),
                    "predictions": []}

    class _Down:
        def predict(self, design, corner):
            raise ConnectionRefusedError("down")

        def predict_batch(self, design, corners):
            raise ConnectionRefusedError("down")

    def _router(self, clients):
        return Router({name: f"http://stub/{name}" for name in clients},
                      client_factory=lambda url: clients[
                          url.rsplit("/", 1)[1]])

    def test_skips_shards_without_a_model(self):
        serving = self._Serving()
        router = self._router({"a": self._Lacking(), "b": serving,
                               "c": self._Lacking()})
        doc = router.predict(DESIGN, CORNER)
        assert doc["shard"] == "b"
        assert serving.calls == 1
        assert router.predict_batch(DESIGN, [CORNER])["shard"] == "b"

    def test_identical_queries_prefer_the_same_shard(self):
        """Ring-preference routing keeps one shard's LRU hot."""
        a, b = self._Serving(), self._Serving()
        router = self._router({"a": a, "b": b})
        for _ in range(4):
            router.predict(DESIGN, CORNER)
        assert sorted((a.calls, b.calls)) == [0, 4]

    def test_all_shards_lacking_is_409(self):
        router = self._router({"a": self._Lacking(),
                               "b": self._Lacking()})
        with pytest.raises(ServeClientError) as exc:
            router.predict(DESIGN, CORNER)
        assert exc.value.status == 409

    def test_down_shard_falls_through_to_serving_one(self):
        serving = self._Serving()
        router = self._router({"a": self._Down(), "b": serving,
                               "c": self._Down()})
        assert router.predict(DESIGN, CORNER)["shard"] == "b"

    def test_all_down_is_shard_unavailable(self):
        from repro.cluster import ShardUnavailable
        router = self._router({"a": self._Down(), "b": self._Down()})
        with pytest.raises(ShardUnavailable):
            router.predict(DESIGN, CORNER)

    def test_non_409_shard_error_is_forwarded(self):
        class Erroring:
            def predict(self, design, corner):
                raise ServeClientError(400, "bad corner")

        router = self._router({"a": Erroring()})
        with pytest.raises(ServeClientError) as exc:
            router.predict(DESIGN, CORNER)
        assert exc.value.status == 400


class TestRouterHttp:
    def test_predict_through_router_server(self, predict_ws, tmp_path):
        """End to end: a real shard behind a real router, one of the
        two shards modelless — /v1/predict answers through the router
        with the shard recorded."""
        from repro.api import Workspace
        from repro.cluster import RouterServer
        lacking = ServeService(Workspace(tmp_path / "empty"), workers=1)
        lacking_srv = StcoServer(lacking).start()
        serving = ServeService(predict_ws, workers=1)
        serving_srv = StcoServer(serving).start()
        router = Router({"a": lacking_srv.url, "b": serving_srv.url},
                        timeout_s=10.0)
        try:
            with RouterServer(router) as rs:
                client = ServeClient(rs.url)
                doc = client.predict(DESIGN, CORNER)
                assert doc["shard"] == "b"
                assert doc["prediction"]["delay_s"] > 0
                batch = client.predict_batch(DESIGN, [CORNER, OTHER])
                assert batch["count"] == 2
                with pytest.raises(ServeClientError) as exc:
                    client._request("POST", "/v1/predict",
                                    {"design": DESIGN})
                assert exc.value.status == 400
        finally:
            lacking_srv.close()
            lacking.close(timeout=10)
            serving_srv.close()
            serving.close(timeout=10)
