"""Surrogate-fidelity runs and uncertainty-gated escalation economics."""

import json
import threading
from dataclasses import replace

import pytest

from repro.api import Workspace, run
from repro.api.config import PredictConfig
from repro.api.report import RunReport
from repro.predict.fidelity import escalation_config
from repro.serve import ServeClient, ServeService, StcoServer
from tests.serve.conftest import StubRunner

from .conftest import make_config


def surrogate_config(**predict_overrides):
    return make_config(predict=PredictConfig(fidelity="surrogate",
                                             **predict_overrides))


@pytest.fixture(scope="module")
def surrogate_report(predict_ws):
    return run(surrogate_config(), predict_ws)


class TestSurrogateFidelityRun:
    def test_runs_in_milliseconds_with_zero_engine_work(
            self, surrogate_report):
        """The tier-0 promise: a whole search, no engine, honest
        counters."""
        assert surrogate_report.evaluations > 0
        assert surrogate_report.engine_misses == 0
        assert surrogate_report.characterizations == 0
        assert surrogate_report.runtime["charlib_s"] == 0.0
        assert surrogate_report.runtime["flow_s"] == 0.0
        assert surrogate_report.runtime["total_s"] < 5.0

    def test_reports_real_best_corner_and_ppa(self, surrogate_report):
        assert len(surrogate_report.best_corner) == 3
        assert surrogate_report.best_ppa["power_w"] > 0
        assert surrogate_report.best_ppa["area_um2"] > 0

    def test_uncertainty_block(self, surrogate_report):
        unc = surrogate_report.uncertainty
        assert unc["fidelity"] == "surrogate"
        assert unc["corners"] >= 1
        for name in ("log_power", "log_delay", "log_area"):
            per = unc["per_objective"][name]
            assert per["max_std"] >= per["mean_std"] >= 0.0
        assert unc["best_corner_std"] >= 0.0
        assert unc["escalated"] is False
        assert unc["model"]["fingerprint"]

    def test_surrogate_block_counts_predictions(self, surrogate_report):
        sg = surrogate_report.surrogate
        assert sg["predictions"] >= surrogate_report.evaluations
        assert sg["model_fingerprint"]

    def test_report_json_round_trip(self, surrogate_report):
        text = json.dumps(surrogate_report.to_dict())
        loaded = RunReport.from_dict(json.loads(text))
        assert loaded.uncertainty == surrogate_report.uncertainty
        assert loaded.best_corner == surrogate_report.best_corner
        assert loaded.engine_misses == 0

    def test_summary_rows_show_fidelity(self, surrogate_report):
        rows = {name: value
                for name, value in surrogate_report.summary_rows()}
        assert rows["fidelity"] == "surrogate"
        assert "best-corner spread (log10)" in rows

    def test_predicted_records_never_harvested(self, predict_ws,
                                               surrogate_report):
        """Surrogate outputs must not feed the surrogate's own training
        set — the store holds engine truth only."""
        rows_before = len(predict_ws.record_store())
        run(surrogate_config(), predict_ws)
        assert len(predict_ws.record_store()) == rows_before

    def test_thin_store_fails_clean(self, tmp_path):
        with pytest.raises(ValueError, match="rows"):
            run(surrogate_config(), Workspace(tmp_path / "empty"))

    def test_unconfigured_escalation_is_reported(self, predict_ws):
        report = run(surrogate_config(escalate_threshold=1e-12),
                     predict_ws)
        unc = report.uncertainty
        assert unc["escalated"] is False
        assert "escalate_url" in unc["escalation_error"]


class TestEscalationConfig:
    def test_twin_flips_only_the_predict_block(self):
        cfg = surrogate_config(escalate_threshold=0.5,
                               escalate_url="http://x:1")
        twin = escalation_config(cfg)
        assert twin.predict.fidelity == "engine"
        assert twin.predict.escalate_threshold == 0.0
        assert twin.predict.escalate_url == ""
        assert twin.search == cfg.search
        assert twin.benchmark == cfg.benchmark

    def test_identical_runs_escalate_identical_documents(self):
        a = escalation_config(surrogate_config(
            escalate_threshold=0.3, escalate_url="http://a:1"))
        b = escalation_config(surrogate_config(
            escalate_threshold=0.7, escalate_url="http://b:2"))
        assert a.to_dict() == b.to_dict()


class TestEscalationEconomics:
    @pytest.fixture()
    def stub_server(self, tmp_path):
        runner = StubRunner()
        runner.gate = threading.Event()
        service = ServeService(Workspace(tmp_path / "ws"),
                               jobs_dir=tmp_path / "jobs",
                               workers=1, runner=runner)
        server = StcoServer(service).start()
        yield runner, server
        runner.gate.set()
        server.close()
        service.close(timeout=10)

    def test_exactly_one_engine_execution(self, predict_ws,
                                          stub_server):
        """Two identical high-uncertainty surrogate runs + one direct
        engine submission coalesce into ONE execution."""
        runner, server = stub_server
        cfg = surrogate_config(escalate_threshold=1e-12,
                               escalate_url=server.url)
        first = run(cfg, predict_ws).uncertainty
        assert first["escalated"] is True
        job_id = first["escalated_job_id"]
        assert job_id
        assert runner.started.wait(10)

        second = run(cfg, predict_ws).uncertainty
        assert second["escalated"] is True
        assert second["escalation_coalesced_with"] == job_id

        # A user racing the gate with the identical engine document
        # lands on the same job too.
        direct = ServeClient(server.url).submit(
            escalation_config(cfg).to_dict())
        assert direct["coalesced_with"] == job_id

        runner.gate.set()
        job = ServeClient(server.url).wait(job_id, timeout_s=30)
        assert job["state"] == "succeeded"
        assert len(runner.calls) == 1

    def test_escalation_hop_carries_the_trace_context(self, predict_ws,
                                                      stub_server):
        """The engine twin joins the escalating run's trace: the hop's
        ``traceparent`` rides the auto-submit, so the twin's root span
        is parented on the surrogate run's active context."""
        from repro.obs.trace import mint_context, trace_context
        runner, server = stub_server
        runner.gate.set()                # twin may execute immediately
        ctx = mint_context()
        cfg = surrogate_config(escalate_threshold=1e-12,
                               escalate_url=server.url)
        with trace_context(ctx):
            unc = run(cfg, predict_ws).uncertainty
        assert unc["escalated"] is True
        client = ServeClient(server.url)
        client.wait(unc["escalated_job_id"], timeout_s=30)
        events = client.events(unc["escalated_job_id"])
        tree = [e for e in events
                if isinstance(e, dict)
                and e.get("kind") == "trace"][-1]["trace"]
        assert tree["name"] == "serve.job"
        assert tree["trace_id"] == ctx.trace_id
        assert tree["parent_span_id"] == ctx.span_id

    def test_confident_run_never_escalates(self, predict_ws,
                                           stub_server):
        runner, server = stub_server
        report = run(surrogate_config(escalate_threshold=1e9,
                                      escalate_url=server.url),
                     predict_ws)
        assert report.uncertainty["escalated"] is False
        assert "escalated_job_id" not in report.uncertainty
        assert not runner.calls
