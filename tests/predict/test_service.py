"""PredictService: model loading, the content-keyed LRU, batching."""

import numpy as np
import pytest

from repro.api import Workspace
from repro.predict import PredictError, PredictService

from .conftest import DESIGN

CORNER = (0.85, -0.05, 0.9)
OTHER = (1.05, 0.05, 1.1)


class TestModelLoading:
    def test_fresh_workspace_answers_409(self, tmp_path):
        service = PredictService(Workspace(tmp_path))
        with pytest.raises(PredictError) as exc:
            service.predict(DESIGN, CORNER)
        assert exc.value.status == 409

    def test_loads_newest_registered_artifact(self, predict_ws):
        """The service serves whatever ensemble the registry holds —
        config-independent, so a CLI-trained model works unseen."""
        service = PredictService(predict_ws)
        loaded_before = predict_ws.counters["surrogates_loaded"]
        service.predict(DESIGN, CORNER)
        info = service.info()
        assert info["loaded"]
        assert info["trained_rows"] >= 8
        assert predict_ws.counters["surrogates_loaded"] == \
            loaded_before + 1

    def test_model_loaded_once_across_requests(self, predict_ws):
        service = PredictService(predict_ws)
        loaded_before = predict_ws.counters["surrogates_loaded"]
        for _ in range(3):
            service.predict(DESIGN, CORNER)
        assert predict_ws.counters["surrogates_loaded"] == \
            loaded_before + 1


class TestValidation:
    def test_rejects_bad_corner(self, predict_ws):
        service = PredictService(predict_ws)
        for bad in ([1.0], [1.0, 2.0, "x"], "corner", None):
            with pytest.raises(PredictError):
                service.predict(DESIGN, bad)

    def test_rejects_unknown_design(self, predict_ws):
        service = PredictService(predict_ws)
        with pytest.raises(PredictError, match="unknown design"):
            service.predict("not-a-benchmark", CORNER)

    def test_rejects_empty_batch(self, predict_ws):
        service = PredictService(predict_ws)
        with pytest.raises(PredictError, match="non-empty"):
            service.predict_batch(DESIGN, [])


class TestPrediction:
    def test_document_shape(self, predict_ws):
        doc = PredictService(predict_ws).predict(DESIGN, CORNER)
        assert doc["design"] == DESIGN
        pred = doc["prediction"]
        assert pred["power_w"] > 0
        assert pred["delay_s"] > 0
        assert pred["area_um2"] > 0
        assert pred["performance_hz"] == \
            pytest.approx(1.0 / pred["delay_s"])
        unc = doc["uncertainty"]
        for name in ("log_power", "log_delay", "log_area", "mean_std"):
            assert unc[name] >= 0.0
        assert doc["model"]["fingerprint"]
        assert doc["cached"] is False

    def test_lru_hit_on_identical_query(self, predict_ws):
        service = PredictService(predict_ws)
        first = service.predict(DESIGN, CORNER)
        second = service.predict(DESIGN, CORNER)
        assert second["cached"] is True
        assert second["prediction"] == first["prediction"]

    def test_lru_evicts_oldest(self, predict_ws):
        service = PredictService(predict_ws, cache_size=1)
        service.predict(DESIGN, CORNER)
        service.predict(DESIGN, OTHER)       # evicts CORNER
        assert service.predict(DESIGN, CORNER)["cached"] is False

    def test_swap_model_invalidates_cache(self, predict_ws):
        """LRU keys embed the model fingerprint, so a swap makes every
        old entry unreachable without an explicit flush."""
        import copy
        service = PredictService(predict_ws)
        service.predict(DESIGN, CORNER)
        model = copy.deepcopy(service.model())
        X, Y = predict_ws.record_store().matrices()
        model.refit(X, Y, epochs=5)
        service.swap_model(model)
        assert service.predict(DESIGN, CORNER)["cached"] is False

    def test_batch_is_one_forward_and_matches_single(self, predict_ws):
        service = PredictService(predict_ws)
        single = service.predict(DESIGN, OTHER)
        fresh = PredictService(predict_ws)
        batch = fresh.predict_batch(DESIGN, [CORNER, OTHER])
        assert batch["count"] == 2
        by_corner = {tuple(p["corner"]): p
                     for p in batch["predictions"]}
        got = by_corner[tuple(OTHER)]["prediction"]
        want = single["prediction"]
        assert np.isclose(got["power_w"], want["power_w"])
        assert np.isclose(got["delay_s"], want["delay_s"])

    def test_batch_answers_cached_corners_from_lru(self, predict_ws):
        service = PredictService(predict_ws)
        service.predict(DESIGN, CORNER)
        batch = service.predict_batch(DESIGN, [CORNER, OTHER])
        flags = {tuple(p["corner"]): p["cached"]
                 for p in batch["predictions"]}
        assert flags[tuple(CORNER)] is True
        assert flags[tuple(OTHER)] is False

    def test_uncertainty_matches_ensemble_spread(self, predict_ws):
        """The served uncertainty IS the member spread — no scaling,
        no calibration knob hiding in the service."""
        service = PredictService(predict_ws)
        doc = service.predict(DESIGN, CORNER)
        model = service.model()
        X = service._featurize(DESIGN, [_corner(CORNER)])
        _, std = model.predict_batch(X)
        assert doc["uncertainty"]["log_power"] == \
            pytest.approx(float(std[0, 0]))


class TestDriftTelemetry:
    """Every answer is scored against the persisted training envelope;
    the score rides on the response and feeds the drift gauge/counter."""

    FAR_OOD = (5.0, 1.0, 5.0)            # way outside every knob range

    @staticmethod
    def _vitals():
        from repro.obs.metrics import get_registry
        snap = get_registry().snapshot()
        return (snap.get("repro_predict_drift", 0.0),
                snap.get("repro_predict_ood_total", 0.0))

    def test_stats_file_exists_after_harvest_run(self, predict_ws):
        stats = predict_ws.record_store().load_feature_stats()
        assert stats["rows"] >= 8
        assert len(stats["min"]) == len(stats["names"])

    def test_in_distribution_request_scores_low(self, predict_ws):
        doc = PredictService(predict_ws).predict(DESIGN, CORNER)
        assert 0.0 <= doc["drift"] <= 1.0

    def test_ood_request_scores_high_and_counts(self, predict_ws):
        service = PredictService(predict_ws)
        _, ood_before = self._vitals()
        doc = service.predict(DESIGN, self.FAR_OOD)
        assert doc["drift"] > 1.0
        gauge, ood = self._vitals()
        assert ood == ood_before + 1
        assert gauge > 0.0

    def test_cache_hits_replay_their_stored_score(self, predict_ws):
        """A repeated out-of-distribution query is still sustained
        drift: the LRU hit re-feeds the stored score instead of going
        silent, so the gauge cannot decay through caching."""
        service = PredictService(predict_ws)
        first = service.predict(DESIGN, self.FAR_OOD)
        _, ood_before = self._vitals()
        again = service.predict(DESIGN, self.FAR_OOD)
        assert again["cached"] is True
        assert again["drift"] == first["drift"]
        gauge, ood = self._vitals()
        assert ood == ood_before + 1     # the replay counted too
        assert gauge > 1.0 * 0.3         # EMA pulled up by the replays

    def test_batch_scores_every_row(self, predict_ws):
        batch = PredictService(predict_ws).predict_batch(
            DESIGN, [CORNER, self.FAR_OOD])
        scores = {tuple(p["corner"]): p["drift"]
                  for p in batch["predictions"]}
        assert scores[tuple(self.FAR_OOD)] > 1.0
        assert scores[tuple(CORNER)] < scores[tuple(self.FAR_OOD)]

    def test_missing_envelope_scores_zero(self, predict_ws,
                                          monkeypatch):
        from repro.surrogate.records import RecordStore
        monkeypatch.setattr(RecordStore, "load_feature_stats",
                            lambda self: {})
        doc = PredictService(predict_ws).predict(DESIGN, self.FAR_OOD)
        assert doc["drift"] == 0.0

    def test_swap_model_reloads_the_envelope(self, predict_ws):
        import copy
        service = PredictService(predict_ws)
        service.predict(DESIGN, CORNER)
        assert service._drift_arrays is not None
        service.swap_model(copy.deepcopy(service.model()))
        assert service._drift_arrays is None     # lazy reload armed
        assert "drift" in service.predict(DESIGN, CORNER)


def _corner(triple):
    from repro.charlib.corners import Corner
    return Corner(*triple)
