"""Shared fixtures for the tier-0 predict subsystem tests.

One session workspace is warmed by a single real harvesting run (the
same CI-scale technology as the surrogate integration tests) and
carries a registered ensemble; every predict/fidelity/refresh test
reads from it. Tests that grow the store or adopt refit models only
*append* — nothing here asserts absolute row counts, so ordering
between modules stays irrelevant.
"""

import pytest

from repro.api import (ModelConfig, SearchConfig, StcoConfig,
                       SurrogateConfig, TechnologyConfig, Workspace,
                       run)

TECH = TechnologyConfig(
    cells=("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1"),
    train_corners=((1.0, 0.0, 1.0), (0.9, 0.05, 1.1)),
    test_corners=((0.95, 0.02, 1.05),),
    slews=(8e-9,), loads=(15e-15,), n_bisect=3, max_steps=200)

MODEL = ModelConfig(epochs=10)

SEARCH = SearchConfig(optimizer="random", seed=0, iterations=16,
                      vdd_scales=(0.85, 0.95, 1.05, 1.15),
                      vth_shifts=(-0.05, 0.05),
                      cox_scales=(0.9, 1.1))

SURROGATE = SurrogateConfig(harvest=True, persist_model=True,
                            members=3, hidden=8, epochs=40,
                            min_observations=4)

DESIGN = "s298"


def make_config(**overrides) -> StcoConfig:
    """The harvesting base document; override any top-level field."""
    base = dict(mode="search", benchmark=DESIGN, technology=TECH,
                model=MODEL, search=SEARCH, surrogate=SURROGATE)
    base.update(overrides)
    return StcoConfig(**base)


@pytest.fixture(scope="session")
def predict_ws(tmp_path_factory):
    """A workspace with harvested rows + one registered ensemble."""
    ws = Workspace(tmp_path_factory.mktemp("predict_ws"))
    report = run(make_config(), ws)
    assert report.surrogate.get("model_fingerprint"), \
        "harvest run must register a servable ensemble"
    return ws
