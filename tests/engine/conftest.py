"""Shared fixtures for the evaluation-engine tests: one tiny trained
characterization GNN (built once per session) plus a small design space."""

import pytest

from repro.charlib import (CharConfig, CharTrainConfig, Corner,
                           GNNLibraryBuilder, build_char_dataset,
                           train_char_model)
from repro.eda import build_benchmark
from repro.stco import DesignSpace

FAST_CFG = CharConfig(slews=(8e-9,), loads=(15e-15,), n_bisect=3,
                      max_steps=200)
CELLS = ("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1")


@pytest.fixture(scope="session")
def trained(tmp_path_factory):
    cache = tmp_path_factory.mktemp("engine_char_cache")
    dataset = build_char_dataset(
        "ltps", cells=CELLS,
        train_corners=[Corner(1.0, 0.0, 1.0), Corner(0.9, 0.05, 1.1)],
        test_corners=[Corner(0.95, 0.02, 1.05)],
        config=FAST_CFG, cache_dir=cache)
    model = train_char_model(dataset,
                             train_config=CharTrainConfig(epochs=10))
    return model, dataset


@pytest.fixture(scope="session")
def builder(trained):
    model, dataset = trained
    return GNNLibraryBuilder(model, dataset, cells=CELLS, config=FAST_CFG)


@pytest.fixture(scope="session")
def netlist():
    return build_benchmark("s298")


@pytest.fixture(scope="session")
def small_space():
    return DesignSpace(vdd_scales=(0.9, 1.0, 1.1), vth_shifts=(0.0,),
                       cox_scales=(0.9, 1.1))


@pytest.fixture
def corners(small_space):
    return small_space.points()
