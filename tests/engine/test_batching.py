"""Batched GNN characterization vs the serial per-cell path."""

import numpy as np

from repro.charlib import Corner
from repro.engine import BatchedGNNCharacterizer


def _assert_libraries_close(a, b):
    assert a.names() == b.names()
    assert a.vdd == b.vdd
    for name in a.names():
        ca, cb = a.cell(name), b.cell(name)
        np.testing.assert_allclose(ca.delay.values, cb.delay.values,
                                   rtol=1e-9)
        np.testing.assert_allclose(ca.output_slew.values,
                                   cb.output_slew.values, rtol=1e-9)
        assert set(ca.input_caps) == set(cb.input_caps)
        for pin, cap in ca.input_caps.items():
            np.testing.assert_allclose(cap, cb.input_caps[pin], rtol=1e-9)
        np.testing.assert_allclose(ca.leakage, cb.leakage, rtol=1e-9)
        np.testing.assert_allclose(ca.switch_energy, cb.switch_energy,
                                   rtol=1e-9)
        assert ca.is_sequential == cb.is_sequential
        if ca.is_sequential:
            np.testing.assert_allclose(
                [ca.setup, ca.hold, ca.clk_q, ca.min_pulse_width],
                [cb.setup, cb.hold, cb.clk_q, cb.min_pulse_width],
                rtol=1e-9)


class TestBatchedCharacterization:
    def test_matches_serial_per_corner(self, builder, corners):
        batched = BatchedGNNCharacterizer(builder).build_many(corners)
        assert len(batched) == len(corners)
        for corner, lib in zip(corners, batched):
            assert lib.meta["corner"] == corner.key()
            _assert_libraries_close(builder.build(corner), lib)

    def test_chunking_preserves_results(self, builder):
        corners = [Corner(0.9, 0.0, 1.0), Corner(1.1, 0.0, 1.0)]
        big = BatchedGNNCharacterizer(builder,
                                      max_graphs_per_batch=4096)
        small = BatchedGNNCharacterizer(builder, max_graphs_per_batch=3)
        libs_big = big.build_many(corners)
        libs_small = small.build_many(corners)
        assert small.last_forward_passes > big.last_forward_passes
        for a, b in zip(libs_big, libs_small):
            _assert_libraries_close(a, b)

    def test_fewer_forward_passes_than_serial(self, builder, corners):
        """The whole point: per-metric passes, not per-cell-per-corner."""
        batcher = BatchedGNNCharacterizer(builder)
        batcher.build_many(corners)
        metrics = len(builder.metrics_present())
        assert batcher.last_forward_passes <= metrics + 3  # chunk slack
