"""Hashing stability and cache-tier semantics."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.charlib import Corner
from repro.engine import (DiskCache, EvalKey, EvaluationCache, LRUCache,
                          array_digest, model_fingerprint,
                          netlist_fingerprint, stable_hash)

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestStableHash:
    def test_deterministic(self):
        payload = {"corner": Corner(0.9, -0.05, 1.1), "cells": ["INV_X1"],
                   "gamma": 0.125}
        assert stable_hash(payload) == stable_hash(payload)

    def test_key_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_distinguishes_values(self):
        assert stable_hash({"vdd": 0.9}) != stable_hash({"vdd": 0.9000001})

    def test_tuple_list_equivalent(self):
        assert stable_hash((1.0, 2.0)) == stable_hash([1.0, 2.0])

    def test_rejects_unhashable_objects(self):
        with pytest.raises(TypeError):
            stable_hash(object())

    def test_stable_across_processes(self):
        """The same payload must hash identically in a fresh interpreter
        (no dependence on Python's per-process string hash seed)."""
        code = (
            "from repro.engine import stable_hash, EvalKey\n"
            "from repro.charlib import Corner\n"
            "payload = {'corner': Corner(0.9, -0.05, 1.1),"
            " 'cells': ['INV_X1', 'DFF_X1'], 'cfg': (8e-9, 15e-15)}\n"
            "print(stable_hash(payload))\n"
            "print(EvalKey('lib', builder='abc',"
            " corner=(0.9, -0.05, 1.1)).digest)\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED="12345")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        child_hash, child_digest = out.stdout.split()
        payload = {"corner": Corner(0.9, -0.05, 1.1),
                   "cells": ["INV_X1", "DFF_X1"], "cfg": (8e-9, 15e-15)}
        assert child_hash == stable_hash(payload)
        key = EvalKey("lib", builder="abc", corner=(0.9, -0.05, 1.1))
        assert child_digest == key.digest


class TestFingerprints:
    def test_array_digest_value_sensitive(self):
        a = np.arange(12.0)
        b = a.copy()
        assert array_digest([a]) == array_digest([b])
        b[3] += 1e-12
        assert array_digest([a]) != array_digest([b])

    def test_array_digest_shape_sensitive(self):
        a = np.arange(12.0)
        assert array_digest([a]) != array_digest([a.reshape(3, 4)])

    def test_model_fingerprint_tracks_weights(self, trained):
        model, _ = trained
        fp = model_fingerprint(model)
        assert fp == model_fingerprint(model)
        param = model.parameters()[0]
        original = param.data.copy()
        try:
            param.data[0] += 1e-9
            assert model_fingerprint(model) != fp
        finally:
            param.data[:] = original
        assert model_fingerprint(model) == fp

    def test_builder_fingerprint_stable(self, builder):
        assert builder.fingerprint() == builder.fingerprint()

    def test_netlist_fingerprint(self, netlist):
        from repro.eda import build_benchmark
        assert (netlist_fingerprint(netlist)
                == netlist_fingerprint(build_benchmark("s298")))
        assert (netlist_fingerprint(netlist)
                != netlist_fingerprint(build_benchmark("s386")))


class TestEvalKey:
    def test_equality_and_hash(self):
        a = EvalKey("lib", builder="x", corner=(1.0, 0.0, 1.0))
        b = EvalKey("lib", builder="x", corner=(1.0, 0.0, 1.0))
        c = EvalKey("eval", builder="x", corner=(1.0, 0.0, 1.0))
        assert a == b and hash(a) == hash(b)
        assert a != c and a.digest != c.digest


class TestLRUCache:
    def test_hit_miss_stats(self):
        cache = LRUCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")               # refresh a; b is now LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert len(cache) == 0


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        key = "deadbeef"
        cache.put(key, {"x": np.arange(3.0)})
        fresh = DiskCache(tmp_path / "c")     # same dir, new instance
        value = fresh.get(key)
        assert np.allclose(value["x"], [0, 1, 2])
        assert key in fresh and len(fresh) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        cache.path("bad").write_bytes(b"not a pickle")
        assert cache.get("bad") is None
        assert cache.stats.misses == 1


class TestEvaluationCache:
    def test_disk_promotion(self, tmp_path):
        key = EvalKey("lib", builder="x", corner=(1.0, 0.0, 1.0))
        first = EvaluationCache(capacity=8, directory=tmp_path / "c")
        first.put(key, "library")
        second = EvaluationCache(capacity=8, directory=tmp_path / "c")
        assert second.get(key) == "library"       # disk hit
        assert second.memory.get(key.digest) == "library"  # promoted

    def test_memory_only(self):
        cache = EvaluationCache(capacity=4, directory=None)
        key = EvalKey("lib", builder="x", corner=(1.0,))
        assert cache.get(key) is None
        cache.put(key, 42)
        assert cache.get(key) == 42
        assert cache.stats().keys() == {"memory"}


class TestDiskCacheSizeEviction:
    def _put(self, cache, name, payload, mtime):
        cache.put(name, payload)
        os.utime(cache.path(name), (mtime, mtime))

    def test_oldest_entries_evicted_first(self, tmp_path):
        cache = DiskCache(tmp_path / "c", max_bytes=1)
        # Each pickled payload far exceeds 1 byte, so every put must
        # evict all *other* entries (the newest is always kept).
        self._put(cache, "a", b"x" * 64, 100)
        self._put(cache, "b", b"y" * 64, 200)
        assert "b" in cache and "a" not in cache
        assert cache.stats.evictions == 1

    def test_under_budget_keeps_everything(self, tmp_path):
        cache = DiskCache(tmp_path / "c", max_bytes=1 << 20)
        for i in range(8):
            cache.put(f"k{i}", b"z" * 128)
        assert len(cache) == 8
        assert cache.stats.evictions == 0

    def test_eviction_is_lru_not_fifo(self, tmp_path):
        cache = DiskCache(tmp_path / "c", max_bytes=None)
        self._put(cache, "old", b"x" * 400, 100)
        self._put(cache, "new", b"y" * 400, 200)
        cache.max_bytes = 1000
        # Reading "old" refreshes its mtime, so "new" is now the LRU
        # entry and the next over-budget put evicts it instead.
        assert cache.get("old") is not None
        assert cache.path("old").stat().st_mtime > 200
        self._put(cache, "third", b"z" * 400, 300)
        assert "old" in cache and "third" in cache
        assert "new" not in cache

    def test_just_written_entry_survives(self, tmp_path):
        cache = DiskCache(tmp_path / "c", max_bytes=1)
        cache.put("huge", b"w" * 4096)
        assert cache.get("huge") is not None

    def test_unbounded_by_default(self, tmp_path):
        assert DiskCache(tmp_path / "c").max_bytes is None

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            DiskCache(tmp_path / "c", max_bytes=0)

    def test_engine_config_plumbs_max_bytes(self, tmp_path):
        from repro.engine import EngineConfig
        config = EngineConfig(cache_dir=tmp_path / "e",
                              cache_max_bytes=1 << 16)
        cache = EvaluationCache(4, f"{config.cache_dir}/x",
                                max_bytes=config.cache_max_bytes)
        assert cache.disk.max_bytes == 1 << 16
