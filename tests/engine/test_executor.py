"""Execution backends: ordering, equivalence, spec parsing."""

import pytest

from repro.engine import (ProcessPoolBackend, SerialBackend,
                          ThreadPoolBackend, available_workers, get_backend)


def _square(x):
    return x * x


def _tag(payload):
    index, value = payload
    return (index, value * 2)


class TestSerialBackend:
    def test_map_in_order(self):
        backend = SerialBackend()
        assert backend.map(_square, [3, 1, 2]) == [9, 1, 4]


class TestThreadBackend:
    def test_matches_serial(self):
        backend = ThreadPoolBackend(workers=4)
        try:
            assert backend.map(_square, range(20)) == [
                x * x for x in range(20)]
        finally:
            backend.shutdown()


class TestProcessBackend:
    def test_matches_serial_and_preserves_order(self):
        backend = ProcessPoolBackend(workers=2)
        try:
            payloads = [(i, i + 10) for i in range(13)]
            results = backend.map(_tag, payloads)
            assert results == [(i, (i + 10) * 2) for i in range(13)]
        finally:
            backend.shutdown()

    def test_single_payload_runs_inline(self):
        backend = ProcessPoolBackend(workers=2)
        assert backend.map(_square, [7]) == [49]
        assert backend._pool is None      # pool never spun up
        backend.shutdown()


class TestGetBackend:
    def test_specs(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("thread"), ThreadPoolBackend)
        assert isinstance(get_backend("process"), ProcessPoolBackend)

    def test_worker_count_suffix(self):
        backend = get_backend("process:3")
        assert backend.workers == 3
        backend = get_backend("thread:5")
        assert backend.workers == 5

    def test_default_workers_positive(self):
        assert available_workers() >= 1
        assert get_backend("process").workers >= 1

    def test_passthrough_instance(self):
        backend = SerialBackend()
        assert get_backend(backend) is backend

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("quantum")
