"""Campaign orchestration: sweeps, checkpoint/resume, ledger report."""

import json

import pytest

from repro.engine import (Campaign, CampaignReport, EngineConfig,
                          EvaluationEngine, Scenario, ScenarioResult,
                          sweep_scenarios)


@pytest.fixture
def scenarios():
    return sweep_scenarios(["s298", "s386"], agents=("qlearning", "random"),
                           iterations=4)


class TestScenario:
    def test_sweep_cartesian(self):
        scenarios = sweep_scenarios(["s298", "s386"],
                                    agents=("qlearning", "grid"),
                                    seeds=(0, 1),
                                    weights_list=((1, 1, 0.5), (2, 1, 0.5)))
        assert len(scenarios) == 2 * 2 * 2 * 2
        assert len({s.scenario_id() for s in scenarios}) == len(scenarios)

    def test_roundtrip(self):
        scenario = Scenario("s298", agent="random", seed=3, iterations=9,
                            weights=(2.0, 1.0, 0.25))
        clone = Scenario.from_dict(
            json.loads(json.dumps(scenario.to_dict())))
        assert clone == scenario
        assert clone.scenario_id() == scenario.scenario_id()

    def test_weights_materialize(self):
        weights = Scenario("s298", weights=(2.0, 3.0, 0.5)).ppa_weights()
        assert (weights.power, weights.performance, weights.area) \
            == (2.0, 3.0, 0.5)


class TestCampaignRun:
    def test_shared_engine_amortizes(self, builder, small_space,
                                     scenarios):
        campaign = Campaign(builder, scenarios, space=small_space)
        report = campaign.run()
        assert len(report.results) == len(scenarios)
        assert report.resumed_scenarios == 0
        # Two agents × two benchmarks explore the same 6-point space:
        # far fewer characterizations than total evaluations.
        chars = report.engine_stats["characterizations"]
        evals = sum(r.evaluations for r in report.results)
        assert chars <= small_space.size
        assert evals > chars
        assert report.best().best_reward == max(
            r.best_reward for r in report.results)

    def test_ledger_report(self, builder, small_space, scenarios):
        report = Campaign(builder, scenarios, space=small_space).run()
        ledger = report.ledger()
        for benchmark in ("s298", "s386"):
            timing = ledger.measured[benchmark]
            assert timing.system_eval_s > 0
            assert timing.charlib_s >= 0
        assert report.summary_rows()

    def test_prefetch_characterizes_space_upfront(self, builder,
                                                  small_space,
                                                  scenarios):
        plain = Campaign(builder, scenarios, space=small_space).run()
        prefetched = Campaign(
            builder, scenarios, space=small_space,
            engine_config=EngineConfig(batch_characterization=True),
            prefetch=True).run()
        # Prefetch characterizes every space point (batched), then the
        # agents run entirely against the warm library cache.
        assert (prefetched.engine_stats["characterizations"]
                == small_space.size)
        for a, b in zip(plain.results, prefetched.results):
            assert a.best_corner == b.best_corner

    def test_warm_scenarios_report_zero_charlib_time(self, builder,
                                                     small_space,
                                                     scenarios):
        engine = EvaluationEngine(builder, EngineConfig())
        Campaign(builder, scenarios[:1], space=small_space,
                 engine=engine).run()
        warm = Campaign(builder, scenarios[:1], space=small_space,
                        engine=engine).run()
        result = warm.results[0]
        # Every record came from the engine cache: no characterization
        # or flow time may be attributed to this scenario.
        assert result.charlib_s == 0.0
        assert result.flow_s == 0.0

    def test_unknown_agent_raises(self, builder, small_space):
        campaign = Campaign(builder, [Scenario("s298", agent="sgd")],
                            space=small_space)
        with pytest.raises(ValueError, match="unknown agent"):
            campaign.run()


class TestMultiObjectiveCampaign:
    def test_search_agents_run(self, builder, small_space):
        scenarios = [Scenario("s298", agent=a, iterations=6)
                     for a in ("anneal", "evolution", "surrogate")]
        report = Campaign(builder, scenarios, space=small_space).run()
        assert len(report.results) == 3
        for r in report.results:
            assert r.evaluations >= 1
            assert r.pareto_front          # every scenario emits a front
            assert r.evaluations_to_optimum >= 1

    def test_nsga2_front_is_non_dominated(self, builder, small_space):
        from repro.search import non_dominated
        report = Campaign(builder,
                          [Scenario("s298", agent="nsga2",
                                    iterations=8)],
                          space=small_space).run()
        front = report.results[0].pareto_front
        assert front
        vectors = [(f["power_w"], f["delay_s"], f["area_um2"])
                   for f in front]
        assert len(non_dominated(vectors)) == len(vectors)
        fronts = report.pareto_fronts()
        assert "s298" in fronts and fronts["s298"]

    def test_portfolio_agent_runs(self, builder, small_space):
        report = Campaign(builder,
                          [Scenario("s386", agent="portfolio",
                                    iterations=8)],
                          space=small_space).run()
        result = report.results[0]
        assert result.evaluations <= 8
        assert result.hypervolume >= 0.0

    def test_checkpoint_preserves_pareto_fields(self, builder,
                                                small_space, tmp_path):
        ckpt = tmp_path / "mo.json"
        scenarios = [Scenario("s298", agent="nsga2", iterations=6)]
        first = Campaign(builder, scenarios, space=small_space,
                         checkpoint_path=ckpt).run()
        resumed = Campaign(builder, scenarios, space=small_space,
                           checkpoint_path=ckpt).run()
        a, b = first.results[0], resumed.results[0]
        assert b.resumed
        assert a.pareto_front == b.pareto_front
        assert a.hypervolume == pytest.approx(b.hypervolume)
        assert a.evaluations_to_optimum == b.evaluations_to_optimum

    def test_pre_search_checkpoint_rows_still_parse(self):
        """Rows written before the search subsystem lack the Pareto
        fields; they must load with defaults, not invalidate."""
        legacy = {"scenario": Scenario("s298").to_dict(),
                  "best_corner": [1.0, 0.0, 1.0],
                  "best_reward": 1.5,
                  "best_ppa": {"power_w": 1e-5},
                  "evaluations": 4, "runtime_s": 0.1,
                  "charlib_s": 0.05, "flow_s": 0.05,
                  "history_rewards": [1.0, 1.5]}
        row = ScenarioResult.from_dict(legacy, resumed=True)
        assert row.pareto_front == []
        assert row.hypervolume == 0.0
        assert row.evaluations_to_optimum == 0


class TestCheckpointResume:
    def test_full_resume_roundtrip(self, builder, small_space, scenarios,
                                   tmp_path):
        ckpt = tmp_path / "campaign.json"
        first = Campaign(builder, scenarios, space=small_space,
                         checkpoint_path=ckpt)
        report = first.run()
        assert ckpt.exists()
        second = Campaign(builder, scenarios, space=small_space,
                          checkpoint_path=ckpt)
        resumed = second.run()
        assert resumed.resumed_scenarios == len(scenarios)
        assert all(r.resumed for r in resumed.results)
        for a, b in zip(report.results, resumed.results):
            assert a.scenario == b.scenario
            assert a.best_corner == b.best_corner
            assert a.best_reward == b.best_reward
            assert a.history_rewards == b.history_rewards

    def test_partial_resume_extends(self, builder, small_space,
                                    scenarios, tmp_path):
        """A checkpoint from a shorter campaign resumes inside a longer
        one — only the new scenarios actually run."""
        ckpt = tmp_path / "campaign.json"
        Campaign(builder, scenarios[:2], space=small_space,
                 checkpoint_path=ckpt).run()
        extended = Campaign(builder, scenarios, space=small_space,
                            checkpoint_path=ckpt)
        report = extended.run()
        assert report.resumed_scenarios == 2
        assert [r.resumed for r in report.results] == [
            True, True, False, False]

    def test_space_change_invalidates(self, builder, small_space,
                                      scenarios, tmp_path):
        from repro.stco import DesignSpace
        ckpt = tmp_path / "campaign.json"
        Campaign(builder, scenarios[:1], space=small_space,
                 checkpoint_path=ckpt).run()
        other_space = DesignSpace(vdd_scales=(0.8, 1.2),
                                  vth_shifts=(0.0,), cox_scales=(1.0,))
        report = Campaign(builder, scenarios[:1], space=other_space,
                          checkpoint_path=ckpt).run()
        assert report.resumed_scenarios == 0

    def test_no_resume_flag(self, builder, small_space, scenarios,
                            tmp_path):
        ckpt = tmp_path / "campaign.json"
        Campaign(builder, scenarios[:1], space=small_space,
                 checkpoint_path=ckpt).run()
        report = Campaign(builder, scenarios[:1], space=small_space,
                          checkpoint_path=ckpt).run(resume=False)
        assert report.resumed_scenarios == 0

    def test_corrupt_checkpoint_ignored(self, builder, small_space,
                                        scenarios, tmp_path):
        ckpt = tmp_path / "campaign.json"
        ckpt.write_text("{ not json")
        report = Campaign(builder, scenarios[:1], space=small_space,
                          checkpoint_path=ckpt).run()
        assert report.resumed_scenarios == 0
        assert json.loads(ckpt.read_text())["completed"]

    def test_shared_disk_cache_between_campaigns(self, builder,
                                                 small_space, scenarios,
                                                 tmp_path):
        """Second campaign, fresh engine, same cache dir: zero
        re-characterizations (the acceptance criterion)."""
        config = EngineConfig(cache_dir=tmp_path / "shared")
        cold = Campaign(builder, scenarios, space=small_space,
                        engine=EvaluationEngine(builder, config)).run()
        assert cold.engine_stats["characterizations"] > 0
        warm = Campaign(builder, scenarios, space=small_space,
                        engine=EvaluationEngine(builder, config)).run()
        assert warm.engine_stats["characterizations"] == 0
        assert warm.best().best_corner == cold.best().best_corner
        assert isinstance(warm, CampaignReport)


class TestCheckpointSchemaGuard:
    def test_checkpoint_records_config_schema(self, builder, small_space,
                                              scenarios, tmp_path):
        from repro.api.config import SCHEMA_VERSION
        ckpt = tmp_path / "campaign.json"
        Campaign(builder, scenarios[:1], space=small_space,
                 checkpoint_path=ckpt).run()
        assert json.loads(ckpt.read_text())["config_schema"] \
            == SCHEMA_VERSION

    def test_foreign_schema_refused(self, builder, small_space,
                                    scenarios, tmp_path):
        from repro.engine import CampaignCheckpointError
        ckpt = tmp_path / "campaign.json"
        Campaign(builder, scenarios[:1], space=small_space,
                 checkpoint_path=ckpt).run()
        data = json.loads(ckpt.read_text())
        data["config_schema"] = data["config_schema"] + 1
        ckpt.write_text(json.dumps(data))
        with pytest.raises(CampaignCheckpointError,
                           match="config schema"):
            Campaign(builder, scenarios[:1], space=small_space,
                     checkpoint_path=ckpt).run()

    def test_resume_false_bypasses_guard(self, builder, small_space,
                                         scenarios, tmp_path):
        ckpt = tmp_path / "campaign.json"
        Campaign(builder, scenarios[:1], space=small_space,
                 checkpoint_path=ckpt).run()
        data = json.loads(ckpt.read_text())
        data["config_schema"] = data["config_schema"] + 1
        ckpt.write_text(json.dumps(data))
        report = Campaign(builder, scenarios[:1], space=small_space,
                          checkpoint_path=ckpt).run(resume=False)
        assert report.resumed_scenarios == 0

    def test_pre_schema_checkpoint_still_resumes(self, builder,
                                                 small_space, scenarios,
                                                 tmp_path):
        """Checkpoints written before schema tracking lack the field and
        must keep resuming (they predate any schema change)."""
        ckpt = tmp_path / "campaign.json"
        Campaign(builder, scenarios[:1], space=small_space,
                 checkpoint_path=ckpt).run()
        data = json.loads(ckpt.read_text())
        del data["config_schema"]
        ckpt.write_text(json.dumps(data))
        report = Campaign(builder, scenarios[:1], space=small_space,
                          checkpoint_path=ckpt).run()
        assert report.resumed_scenarios == 1
