"""EvaluationEngine semantics: seed equivalence, caching, parallelism."""

import time

import numpy as np
import pytest

from repro.eda import evaluate_system
from repro.engine import EngineConfig, EvaluationEngine, PPAWeights


@pytest.fixture
def engine(builder):
    return EvaluationEngine(builder, EngineConfig())


class TestSerialEquivalence:
    def test_matches_seed_serial_loop(self, builder, netlist, corners):
        """The engine's default path must be bit-identical to the
        historical loop: build library, run flow, score."""
        weights = PPAWeights()
        engine = EvaluationEngine(builder, EngineConfig())
        records = engine.evaluate_many(netlist, corners[:3], weights)
        for corner, record in zip(corners[:3], records):
            library = builder.build(corner)
            result = evaluate_system(netlist, library)
            assert record.reward == weights.score(result)
            assert record.result.fmax_hz == result.fmax_hz
            assert record.result.total_power_w == result.total_power_w
            assert record.result.area_um2 == result.area_um2

    def test_input_order_preserved(self, engine, netlist, corners):
        forward = engine.evaluate_many(netlist, corners)
        backward = engine.evaluate_many(netlist, corners[::-1])
        assert [r.corner for r in backward] == [
            r.corner for r in forward[::-1]]


class TestCaching:
    def test_warm_rerun_hits_cache(self, builder, netlist, corners):
        engine = EvaluationEngine(builder, EngineConfig())
        cold = engine.evaluate_many(netlist, corners)
        assert engine.characterizations == len(corners)
        assert not any(r.cached for r in cold)
        warm = engine.evaluate_many(netlist, corners)
        assert engine.characterizations == len(corners)   # unchanged
        assert all(r.cached for r in warm)
        assert [r.reward for r in warm] == [r.reward for r in cold]

    def test_library_reused_across_weights(self, builder, netlist,
                                           corners):
        """New PPA trade-off: new rewards, but zero re-characterization."""
        engine = EvaluationEngine(builder, EngineConfig())
        engine.evaluate_many(netlist, corners[:2], PPAWeights())
        chars = engine.characterizations
        flows = engine.flow_evaluations
        records = engine.evaluate_many(netlist, corners[:2],
                                       PPAWeights(power=2.0))
        assert engine.characterizations == chars          # libs reused
        assert engine.flow_evaluations == flows + 2       # flows re-run
        assert not any(r.cached for r in records)

    def test_disk_cache_survives_engine_restart(self, builder, netlist,
                                                corners, tmp_path):
        config = EngineConfig(cache_dir=tmp_path / "engine")
        first = EvaluationEngine(builder, config)
        cold = first.evaluate_many(netlist, corners)
        assert first.characterizations == len(corners)
        second = EvaluationEngine(builder, config)        # fresh process sim
        warm = second.evaluate_many(netlist, corners)
        assert second.characterizations == 0              # zero re-chars
        assert second.flow_evaluations == 0
        assert [r.reward for r in warm] == [r.reward for r in cold]

    def test_result_caching_can_be_disabled(self, builder, netlist,
                                            corners):
        engine = EvaluationEngine(builder,
                                  EngineConfig(cache_results=False))
        engine.evaluate_many(netlist, corners[:2])
        again = engine.evaluate_many(netlist, corners[:2])
        assert not any(r.cached for r in again)
        assert engine.flow_evaluations == 4
        assert engine.characterizations == 2              # libs still cached

    def test_duplicate_corners_evaluated_once(self, builder, netlist,
                                              corners):
        engine = EvaluationEngine(builder, EngineConfig())
        records = engine.evaluate_many(
            netlist, [corners[0], corners[1], corners[0]])
        assert engine.characterizations == 2
        assert engine.flow_evaluations == 2
        assert records[0] is records[2]
        assert records[0].reward != records[1].reward or \
            records[0].corner != records[1].corner

    def test_stats_shape(self, engine, netlist, corners):
        engine.evaluate(netlist, corners[0])
        stats = engine.stats()
        assert stats["characterizations"] == 1
        assert stats["flow_evaluations"] == 1
        assert "memory" in stats["library_cache"]
        assert "timing_s" in stats


class TestBackends:
    def test_parallel_matches_serial(self, builder, netlist, corners):
        serial = EvaluationEngine(builder, EngineConfig())
        reference = serial.evaluate_many(netlist, corners)
        with EvaluationEngine(
                builder, EngineConfig(backend="process:2")) as parallel:
            records = parallel.evaluate_many(netlist, corners)
        assert [r.reward for r in records] == [
            r.reward for r in reference]
        assert [r.corner for r in records] == [
            r.corner for r in reference]

    def test_parallel_populates_library_cache(self, builder, netlist,
                                              corners):
        with EvaluationEngine(
                builder, EngineConfig(backend="process:2")) as engine:
            engine.evaluate_many(netlist, corners[:2])
            libs = engine.libraries(corners[:2])
            assert engine.characterizations == 2          # no rebuilds
            assert all(lib is not None for lib in libs)

    def test_thread_backend_matches_serial(self, builder, netlist,
                                           corners):
        serial = EvaluationEngine(builder, EngineConfig())
        reference = serial.evaluate_many(netlist, corners)
        with EvaluationEngine(
                builder, EngineConfig(backend="thread:4")) as threaded:
            records = threaded.evaluate_many(netlist, corners)
            # Characterization stays in the calling thread (autograd
            # state is process-global); flows fan out.
            assert threaded.characterizations == len(corners)
        assert [r.reward for r in records] == [
            r.reward for r in reference]

    def test_batched_matches_serial(self, builder, netlist, corners):
        serial = EvaluationEngine(builder, EngineConfig())
        reference = serial.evaluate_many(netlist, corners)
        batched = EvaluationEngine(
            builder, EngineConfig(batch_characterization=True))
        records = batched.evaluate_many(netlist, corners)
        np.testing.assert_allclose([r.reward for r in records],
                                   [r.reward for r in reference],
                                   rtol=1e-9)
        assert ([r.corner.key() for r in records]
                == [r.corner.key() for r in reference])

    def test_process_backend_honors_batching(self, builder, netlist,
                                             corners):
        """process + batch_characterization: packed forward passes run
        in this process, only the flows fan out."""
        serial = EvaluationEngine(builder, EngineConfig())
        reference = serial.evaluate_many(netlist, corners)
        config = EngineConfig(backend="process:2",
                              batch_characterization=True)
        with EvaluationEngine(builder, config) as engine:
            records = engine.evaluate_many(netlist, corners)
            assert "characterization" in engine.timing.totals
            assert engine.characterizations == len(corners)
        np.testing.assert_allclose([r.reward for r in records],
                                   [r.reward for r in reference],
                                   rtol=1e-9)


class TestBuilderFingerprintFallback:
    def test_fingerprintless_builders_never_share_identity(self):
        class BareBuilder:
            def build(self, corner):
                raise NotImplementedError

        a = EvaluationEngine(BareBuilder(), EngineConfig())
        b = EvaluationEngine(BareBuilder(), EngineConfig())
        assert a.builder_fingerprint() != b.builder_fingerprint()
        assert a.builder_fingerprint() == a.builder_fingerprint()


class TestEngineKwargConflicts:
    def test_engine_plus_config_kwargs_rejected(self, trained,
                                                small_space, netlist,
                                                builder):
        from repro.stco import FastSTCO
        model, dataset = trained
        engine = EvaluationEngine(builder, EngineConfig())
        with pytest.raises(ValueError, match="not both"):
            FastSTCO(netlist, model, dataset, space=small_space,
                     engine=engine, backend="process:2")

    def test_engine_with_foreign_model_rejected(self, trained,
                                                small_space, netlist,
                                                builder):
        from repro.charlib import CellCharGCN
        from repro.stco import FastSTCO
        _, dataset = trained
        other_model = CellCharGCN()
        engine = EvaluationEngine(builder, EngineConfig())
        with pytest.raises(ValueError, match="different model/dataset"):
            FastSTCO(netlist, other_model, dataset, space=small_space,
                     engine=engine)

    def test_engine_plus_cells_rejected(self, trained, small_space,
                                        netlist, builder):
        from repro.stco import FastSTCO
        model, dataset = trained
        engine = EvaluationEngine(builder, EngineConfig())
        with pytest.raises(ValueError, match="cells/char_config"):
            FastSTCO(netlist, model, dataset, cells=("INV_X1",),
                     space=small_space, engine=engine)

    def test_matching_engine_accepted(self, trained, small_space,
                                      netlist, builder):
        from repro.stco import FastSTCO
        model, dataset = trained
        engine = EvaluationEngine(builder, EngineConfig())
        stco = FastSTCO(netlist, model, dataset, space=small_space,
                        engine=engine)
        assert stco.engine is engine


class TestEnvPrefetch:
    def test_prefetch_matches_serial_evaluate(self, builder, netlist,
                                              small_space):
        from repro.stco import STCOEnvironment
        serial_env = STCOEnvironment(netlist, builder, small_space)
        serial = [serial_env.evaluate(a)
                  for a in range(small_space.size)]
        batch_env = STCOEnvironment(netlist, builder, small_space)
        records = batch_env.prefetch(range(small_space.size))
        assert [r.reward for r in records] == [r.reward for r in serial]
        # Every action now resolves from the environment cache.
        for action in range(small_space.size):
            assert batch_env.evaluate(action) is records[action]
        assert len(batch_env.history) == small_space.size

    def test_prefetch_dedupes_actions(self, builder, netlist,
                                      small_space):
        from repro.stco import STCOEnvironment
        env = STCOEnvironment(netlist, builder, small_space)
        records = env.prefetch([0, 1, 0, 1])
        assert len(records) == 4
        assert records[0] is records[2]
        assert len(env.history) == 2


class TestFastSTCOEquivalence:
    def test_engine_backends_agree_on_best_corner(self, trained,
                                                  small_space):
        """FastSTCO through the default serial engine and through a
        batched engine must find the identical best corner and rewards."""
        from repro.eda import build_benchmark
        from repro.stco import FastSTCO
        from tests.engine.conftest import CELLS, FAST_CFG
        model, dataset = trained
        runs = {}
        for label, kwargs in {
            "serial": {},
            "batched": {"batch_characterization": True},
        }.items():
            stco = FastSTCO(build_benchmark("s298"), model, dataset,
                            cells=CELLS, char_config=FAST_CFG,
                            space=small_space, agent_seed=7, **kwargs)
            runs[label] = stco.run(iterations=6)
        assert (runs["serial"].best_corner
                == runs["batched"].best_corner)
        np.testing.assert_allclose(runs["serial"].history_rewards,
                                   runs["batched"].history_rewards,
                                   rtol=1e-9)
        assert runs["serial"].engine_stats["characterizations"] >= 1


class TestSnapshotDelta:
    def test_snapshot_is_flat_and_numeric(self, builder):
        engine = EvaluationEngine(builder, EngineConfig())
        snap = engine.snapshot()
        assert snap["characterizations"] == 0
        assert snap["flow_evaluations"] == 0
        assert all(isinstance(v, (int, float)) for v in snap.values())
        assert not any(k.endswith("hit_rate") for k in snap)
        assert "backend" not in snap            # strings excluded

    def test_delta_brackets_a_window_of_work(self, builder, netlist,
                                             corners):
        engine = EvaluationEngine(builder, EngineConfig())
        engine.evaluate_many(netlist, corners[:2])
        before = engine.snapshot()
        engine.evaluate_many(netlist, corners[:3])   # 2 hits + 1 miss
        delta = engine.delta(before)
        assert delta["flow_evaluations"] == 1
        assert delta["characterizations"] == 1
        assert delta["result_cache.memory.hits"] == 2
        # Untouched counters report zero movement, not absence.
        assert delta["result_cache.memory.evictions"] == 0

    def test_delta_tolerates_new_counter_keys(self, builder):
        engine = EvaluationEngine(builder, EngineConfig())
        delta = engine.delta({})                # e.g. older snapshot
        assert delta["flow_evaluations"] == 0


class TestSnapshotConsistency:
    def test_concurrent_snapshots_never_tear(self, builder, netlist,
                                             small_space):
        """A reader bracketing windows while a worker evaluates must
        never see a result-cache put without the flow tally that
        produced it (or vice versa): both move under one lock."""
        import threading

        engine = EvaluationEngine(builder, EngineConfig())
        corners = small_space.points()
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                snap = engine.snapshot()
                if snap["result_cache.memory.puts"] \
                        != snap["flow_evaluations"]:
                    torn.append(snap)

        t = threading.Thread(target=reader)
        t.start()
        try:
            # Fresh corners each pass: every record is a miss, so every
            # flow evaluation pairs with exactly one result-cache put.
            for corner in corners:
                engine.evaluate_many(netlist, [corner])
        finally:
            stop.set()
            t.join()
        assert torn == []
        final = engine.snapshot()
        assert final["flow_evaluations"] == len(corners)
        assert final["result_cache.memory.puts"] == len(corners)

    def test_cache_event_counters_match_cache_stats(self, builder,
                                                    netlist, corners):
        """The exported repro_engine_cache_events_total series agree
        exactly with the caches' own stats() tallies."""
        from repro.obs.metrics import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            engine = EvaluationEngine(builder, EngineConfig())
            engine.evaluate_many(netlist, corners[:3])
            engine.evaluate_many(netlist, corners[:3])    # warm pass
        snap = registry.snapshot()
        for cache, tier_stats in (
                ("result", engine.result_cache.stats()),
                ("library", engine.library_cache.stats())):
            memory = tier_stats["memory"]
            for event, stat in (("hit", "hits"), ("miss", "misses"),
                                ("put", "puts"),
                                ("eviction", "evictions")):
                series = (f'repro_engine_cache_events_total{{'
                          f'cache="{cache}",tier="memory",'
                          f'event="{event}"}}')
                assert snap.get(series, 0) == memory[stat], series
        assert snap["repro_engine_flow_evaluations_total"] \
            == engine.flow_evaluations
        assert snap["repro_engine_characterizations_total"] \
            == engine.characterizations
