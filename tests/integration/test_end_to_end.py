"""Integration tests: the paper's full loop across package boundaries."""

import numpy as np
import pytest

from repro.charlib import (CharConfig, CharTrainConfig, Corner,
                           GNNLibraryBuilder, SpiceLibraryBuilder,
                           build_char_dataset, train_char_model)
from repro.eda import build_benchmark, evaluate_system, table1_rows
from repro.nn import TrainConfig
from repro.stco import DesignSpace, FastSTCO
from repro.surrogate import train_surrogates
from repro.tcad import TCADDatasetBuilder

CELLS = ("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1")
CFG = CharConfig(slews=(8e-9,), loads=(15e-15,), n_bisect=3, max_steps=200)
SMALL_MESH = {"nx_channel": 7, "nx_overlap": 2, "ny_semi": 3, "ny_ox": 3}


@pytest.fixture(scope="module")
def char_assets(tmp_path_factory):
    cache = tmp_path_factory.mktemp("e2e")
    dataset = build_char_dataset(
        "ltps", cells=CELLS,
        train_corners=[Corner(1.0, 0.0, 1.0), Corner(0.9, 0.05, 1.1)],
        test_corners=[Corner(0.95, 0.02, 1.05)],
        config=CFG, cache_dir=cache)
    model = train_char_model(dataset,
                             train_config=CharTrainConfig(epochs=12))
    return dataset, model


class TestTechnologyToSystem:
    def test_spice_library_drives_flow(self):
        lib = SpiceLibraryBuilder("ltps", cells=CELLS, config=CFG).build()
        result = evaluate_system(build_benchmark("s298"), lib)
        assert result.fmax_hz > 0
        assert result.lvs_violations == 0

    def test_gnn_library_drives_flow(self, char_assets):
        dataset, model = char_assets
        lib = GNNLibraryBuilder(model, dataset, cells=CELLS,
                                config=CFG).build()
        result = evaluate_system(build_benchmark("s298"), lib)
        assert result.fmax_hz > 0

    def test_gnn_and_spice_ppa_agree_in_order_of_magnitude(self,
                                                           char_assets):
        """The GNN library's PPA must land near the SPICE library's —
        the surrogate feeds the same downstream flow."""
        dataset, model = char_assets
        nl = build_benchmark("s298")
        r_spice = evaluate_system(
            nl, SpiceLibraryBuilder("ltps", cells=CELLS,
                                    config=CFG).build())
        r_gnn = evaluate_system(
            nl, GNNLibraryBuilder(model, dataset, cells=CELLS,
                                  config=CFG).build())
        ratio = r_gnn.fmax_hz / r_spice.fmax_hz
        assert 0.2 < ratio < 5.0
        ratio_p = r_gnn.total_power_w / r_spice.total_power_w
        assert 0.1 < ratio_p < 10.0


class TestFullSTCOCampaign:
    def test_fast_stco_tracks_best_of_history(self, char_assets):
        """The campaign's best must equal the best corner it evaluated,
        and exploration must cover more than one corner."""
        dataset, model = char_assets
        nl = build_benchmark("s298")
        space = DesignSpace(vdd_scales=(0.85, 1.0, 1.15),
                            vth_shifts=(0.0,), cox_scales=(0.9, 1.1))
        stco = FastSTCO(nl, model, dataset, cells=CELLS, char_config=CFG,
                        space=space)
        outcome = stco.run(iterations=6)
        history_best = max(r.reward for r in stco.env.history)
        assert outcome.best_reward == pytest.approx(history_best)
        assert outcome.evaluations >= 2
        assert outcome.best_reward >= min(r.reward
                                          for r in stco.env.history)

    def test_campaign_runtime_structure(self, char_assets):
        dataset, model = char_assets
        stco = FastSTCO(build_benchmark("s386"), model, dataset,
                        cells=CELLS, char_config=CFG,
                        space=DesignSpace(vdd_scales=(0.9, 1.1),
                                          vth_shifts=(0.0,),
                                          cox_scales=(1.0,)))
        outcome = stco.run(iterations=4)
        assert outcome.total_runtime_s < 30.0
        assert outcome.evaluations <= 2     # space has 2 points


class TestSurrogatePipeline:
    def test_tcad_to_surrogate_to_metrics(self):
        builder = TCADDatasetBuilder(seed=3, mesh_resolution=SMALL_MESH)
        ds = builder.build(n_train=8, n_val=3, n_test=3, n_unseen=3)
        metrics, pm, im = train_surrogates(
            ds, TrainConfig(epochs=6, batch_size=4, lr=3e-3))
        assert np.isfinite(metrics["poisson"].mse_unseen)
        psi = pm.predict_potential(ds.poisson["unseen"][0])
        assert np.all(np.isfinite(psi))
        ids = im.predict_current(ds.iv["unseen"][:2])
        assert np.all(ids > 0)


class TestHeadlineClaims:
    def test_speedup_ladder_published(self):
        """1.9x to 14.1x over the ten benchmarks (Table I)."""
        speedups = [r["speedup"] for r in table1_rows()]
        assert min(speedups) == pytest.approx(1.9, abs=0.1)
        assert max(speedups) == pytest.approx(14.1, abs=0.1)

    def test_measured_charlib_speedup_over_100x(self, char_assets):
        """The >100x characterization claim, measured on this substrate."""
        dataset, model = char_assets
        spice = SpiceLibraryBuilder("ltps", cells=CELLS, config=CFG)
        spice.build()
        gnn = GNNLibraryBuilder(model, dataset, cells=CELLS, config=CFG)
        gnn.build()
        assert spice.last_runtime_s / gnn.last_runtime_s > 100
