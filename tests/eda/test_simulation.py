"""Tests for the cycle-based logic simulator."""

import numpy as np
import pytest

from repro.eda import GateNetlist, build_benchmark
from repro.eda.simulation import LogicSimulator


def adder_netlist():
    """2-bit ripple adder from HA/FA cells."""
    nl = GateNetlist("add2")
    for n in ("a0", "a1", "b0", "b1"):
        nl.add_input(n)
    nl.add("ha", "HA_X1", a="a0", b="b0", s="s0", co="c0")
    nl.add("fa", "FA_X1", a="a1", b="b1", ci="c0", s="s1", co="c1")
    for n in ("s0", "s1", "c1"):
        nl.add_output(n)
    return nl


class TestCombinationalSim:
    def test_adder_truth(self):
        nl = adder_netlist()
        sim = LogicSimulator(nl)

        def reference(inputs):
            a = int(inputs["a0"]) + 2 * int(inputs["a1"])
            b = int(inputs["b0"]) + 2 * int(inputs["b1"])
            total = a + b
            return {"s0": bool(total & 1), "s1": bool(total & 2),
                    "c1": bool(total & 4)}

        assert sim.check_combinational_equivalence(reference, vectors=32)

    def test_mac16_multiplies(self):
        """Drive mac16 with constants; after one clock the accumulator
        register holds a*b."""
        nl = build_benchmark("mac16")
        sim = LogicSimulator(nl)
        a_val, b_val = 173, 519
        stimulus = {}
        for i in range(16):
            stimulus[f"a{i}"] = [bool((a_val >> i) & 1)]
            stimulus[f"b{i}"] = [bool((b_val >> i) & 1)]
        result = sim.run(cycles=2, input_stimulus=stimulus)
        acc = 0
        for i in range(32):
            if result.final_values.get(f"acc{i}_q", False):
                acc |= 1 << i
        # After 2 cycles the accumulator holds 2 * a * b.
        assert acc == 2 * a_val * b_val


class TestSequentialSim:
    def test_ff_pipeline_shifts(self):
        nl = GateNetlist("shift")
        nl.add_input("d")
        nl.add("f0", "DFF_X1", d="d", clk="clk", q="q0")
        nl.add("f1", "DFF_X1", d="q0", clk="clk", q="q1")
        nl.add_output("q1")
        sim = LogicSimulator(nl)
        result = sim.run(cycles=4, input_stimulus={
            "d": [True, False, False, False]})
        # The pulse needs two cycles to reach q1; by cycle 2 q1 is high,
        # by end of cycle 4 it has drained to low again.
        assert result.toggle_counts.get("q1", 0) >= 2

    def test_dffr_reset_forces_low(self):
        nl = GateNetlist("rst")
        nl.add_input("d")
        nl.add_input("rst")
        nl.add("f0", "DFFR_X1", d="d", clk="clk", rst="rst", q="q")
        nl.add_output("q")
        sim = LogicSimulator(nl)
        result = sim.run(cycles=3, input_stimulus={
            "d": [True, True, True], "rst": [False, True, True]})
        assert result.final_values["q"] is False


class TestActivity:
    def test_activity_measured(self):
        nl = build_benchmark("s298")
        sim = LogicSimulator(nl)
        result = sim.run(cycles=24, seed=1)
        assert result.cycles == 24
        assert result.mean_activity() > 0
        # Activities are physical: at most one toggle per evaluation step.
        for net, count in result.toggle_counts.items():
            assert count <= 2 * result.cycles

    def test_constant_inputs_low_activity(self):
        nl = adder_netlist()
        sim = LogicSimulator(nl)
        stim = {n: [False] for n in nl.primary_inputs}
        result = sim.run(cycles=10, input_stimulus=stim)
        assert result.mean_activity() == 0.0

    def test_deterministic_given_seed(self):
        nl = build_benchmark("s386")
        r1 = LogicSimulator(nl).run(cycles=8, seed=5)
        r2 = LogicSimulator(nl).run(cycles=8, seed=5)
        assert r1.toggle_counts == r2.toggle_counts
