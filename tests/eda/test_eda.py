"""Tests for netlists, benchmark generators, and the evaluation flow."""

import numpy as np
import pytest

from repro.charlib import CharConfig, SpiceLibraryBuilder
from repro.eda import (PAPER_SYSTEM_EVAL_S, PAPER_TABLE1, PaperCosts,
                       GateNetlist, analyze_power, analyze_timing,
                       benchmark_names, build_benchmark, evaluate_system,
                       place, route, run_drc, run_lvs, synthesize,
                       table1_row, table1_rows)

FAST_CFG = CharConfig(slews=(8e-9,), loads=(15e-15,), n_bisect=3,
                      max_steps=200)
LIB_CELLS = ("INV_X1", "INV_X2", "BUF_X2", "NAND2_X1", "NOR2_X1",
             "AND2_X1", "XOR2_X1", "MUX2_X1", "HA_X1", "FA_X1", "DFF_X1")


@pytest.fixture(scope="module")
def library():
    return SpiceLibraryBuilder("ltps", cells=LIB_CELLS,
                               config=FAST_CFG).build()


@pytest.fixture(scope="module")
def s298():
    return build_benchmark("s298")


class TestGateNetlist:
    def test_simple_construction(self):
        nl = GateNetlist("t")
        nl.add_input("a")
        nl.add_input("b")
        nl.add("g1", "NAND2_X1", a="a", b="b", y="n1")
        nl.add("g2", "INV_X1", a="n1", y="out")
        nl.add_output("out")
        assert nl.num_gates == 2
        assert nl.drivers()["n1"] == "g1"

    def test_duplicate_instance_rejected(self):
        nl = GateNetlist("t")
        nl.add("g1", "INV_X1", a="a", y="y")
        with pytest.raises(ValueError):
            nl.add("g1", "INV_X1", a="y", y="z")

    def test_unconnected_pin_rejected(self):
        nl = GateNetlist("t")
        with pytest.raises(ValueError):
            nl.add("g1", "NAND2_X1", a="a", y="y")

    def test_multiple_drivers_detected(self):
        nl = GateNetlist("t")
        nl.add("g1", "INV_X1", a="a", y="n")
        nl.add("g2", "INV_X1", a="b", y="n")
        with pytest.raises(ValueError):
            nl.drivers()

    def test_topological_order_respects_deps(self):
        nl = GateNetlist("t")
        nl.add("g2", "INV_X1", a="n1", y="n2")   # added out of order
        nl.add("g1", "INV_X1", a="a", y="n1")
        order = nl.topological_order()
        assert order.index("g1") < order.index("g2")

    def test_ff_cuts_loops(self):
        nl = GateNetlist("t")
        nl.add("ff", "DFF_X1", d="n2", clk="clk", q="q")
        nl.add("g1", "INV_X1", a="q", y="n2")
        assert len(nl.topological_order()) == 2

    def test_copy_independent(self, s298):
        c = s298.copy()
        c.add("extra", "INV_X1", a="pi0", y="extra_out")
        assert c.num_gates == s298.num_gates + 1


class TestBenchmarks:
    def test_ten_benchmarks(self):
        assert len(benchmark_names()) == 10

    @pytest.mark.parametrize("name,gates,flops", [
        ("s298", 119, 14), ("s386", 159, 6), ("s526", 193, 21)])
    def test_iscas_sizes(self, name, gates, flops):
        nl = build_benchmark(name)
        assert nl.num_gates == gates
        assert nl.num_flops == flops

    def test_mac16_structure(self):
        nl = build_benchmark("mac16")
        stats = nl.stats()
        assert stats["by_cell"].get("FA_X1", 0) > 100
        assert stats["by_cell"].get("AND2_X1", 0) == 256
        assert nl.num_flops == 32

    def test_mac32_bigger_than_mac16(self):
        assert build_benchmark("mac32").num_gates > \
            2 * build_benchmark("mac16").num_gates

    def test_riscv_cores_ordering(self):
        """darkriscv must be the largest design (Table I runtime ladder)."""
        sizes = {n: build_benchmark(n).num_gates
                 for n in ("s298", "mac16", "picorv32", "darkriscv")}
        assert sizes["darkriscv"] > sizes["picorv32"] > sizes["mac16"] \
            > sizes["s298"]

    def test_deterministic(self):
        a, b = build_benchmark("s386"), build_benchmark("s386")
        assert a.stats() == b.stats()

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            build_benchmark("s9999")

    @pytest.mark.parametrize("name", ["s298", "s1196", "mac16"])
    def test_netlists_are_legal(self, name):
        nl = build_benchmark(name)
        nl.topological_order()            # no combinational loops
        assert run_lvs(nl).clean          # no floating inputs


class TestFlowStages:
    def test_synthesis_buffers_high_fanout(self, s298):
        nl = s298.copy()
        res = synthesize(nl, max_fanout=4)
        for net, sinks in res.netlist.loads().items():
            if net == nl.clock:
                continue   # clock distribution is a separate tree
            assert len(sinks) <= 4, net

    def test_placement_assigns_positions(self, s298):
        nl = s298.copy()
        res = place(nl)
        xs = [i.x for i in nl.instances.values()]
        assert all(x > 0 for x in xs)
        assert res.die_area_um2 > 0
        assert 0 < res.utilization <= 1.0

    def test_routing_wirelength_positive(self, s298):
        nl = s298.copy()
        place(nl)
        res = route(nl)
        assert res.total_wirelength_um > 0
        assert all(c >= 0 for c in res.net_cap.values())

    def test_sta_produces_positive_period(self, s298, library):
        nl = s298.copy()
        place(nl)
        r = route(nl)
        timing = analyze_timing(nl, library, r)
        assert timing.min_period_s > 0
        assert timing.fmax_hz > 0
        assert len(timing.critical_path) >= 1

    def test_power_positive_and_scales_with_freq(self, s298, library):
        nl = s298.copy()
        p1 = analyze_power(nl, library, 1e6)
        p2 = analyze_power(nl, library, 2e6)
        assert p2.dynamic_w > p1.dynamic_w
        assert p1.leakage_w == pytest.approx(p2.leakage_w)

    def test_drc_clean_after_place(self, s298):
        nl = s298.copy()
        place(nl)
        assert run_drc(nl).clean


class TestFullFlow:
    def test_evaluate_system(self, s298, library):
        res = evaluate_system(s298, library)
        assert res.gates >= s298.num_gates     # buffering may add cells
        assert res.area_um2 > 0
        assert res.fmax_hz > 0
        assert res.total_power_w > 0
        assert res.drc_violations == 0
        assert res.lvs_violations == 0
        assert set(res.stage_runtimes_s) == {
            "synthesis", "placement", "routing", "sta", "power", "drc_lvs"}

    def test_input_not_mutated(self, s298, library):
        before = s298.num_gates
        evaluate_system(s298, library)
        assert s298.num_gates == before

    def test_bigger_design_more_area(self, library):
        small = evaluate_system(build_benchmark("s298"), library)
        big = evaluate_system(build_benchmark("s1196"), library)
        assert big.area_um2 > small.area_um2

    def test_ppa_dict(self, s298, library):
        res = evaluate_system(s298, library)
        assert set(res.ppa()) == {"power_w", "performance_hz", "area_um2"}


class TestCostModel:
    def test_reproduces_table1_exactly(self):
        """Every published row must be reproduced within rounding."""
        for row in table1_rows():
            name = row["benchmark"]
            trad, ours, speedup = PAPER_TABLE1[name]
            assert row["traditional_s"] == pytest.approx(trad, abs=1.0)
            assert row["ours_s"] == pytest.approx(ours, abs=1.0)
            assert row["speedup"] == pytest.approx(speedup, abs=0.15)

    def test_speedup_range_matches_paper(self):
        speedups = [r["speedup"] for r in table1_rows()]
        assert min(speedups) == pytest.approx(1.9, abs=0.1)
        assert max(speedups) == pytest.approx(14.1, abs=0.1)

    def test_tcad_and_charlib_over_100x(self):
        costs = PaperCosts()
        assert costs.tcad_speedup() > 100
        assert costs.charlib_speedup() > 100

    def test_speedup_decreases_with_system_time(self):
        """The ladder: bigger designs -> system eval dominates -> smaller
        speedup (the paper's central observation)."""
        rows = {r["benchmark"]: r for r in table1_rows()}
        assert rows["s386"]["speedup"] > rows["mac32"]["speedup"] \
            > rows["darkriscv"]["speedup"]

    def test_custom_system_eval(self):
        row = table1_row("s298", system_eval_s=10.0)
        assert row["traditional_s"] == pytest.approx(10 + 2042.07)
