"""Tests for functional ops: softmax, concat/stack, scatter/segment ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F

from .gradcheck import check_gradients

RNG = np.random.default_rng(7)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(RNG.normal(size=(4, 6)))
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_invariant_to_shift(self):
        x = RNG.normal(size=(3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_gradient(self):
        w = RNG.normal(size=(2, 4))
        check_gradients(lambda a: (F.softmax(a) * w).sum(),
                        [RNG.normal(size=(2, 4))])

    def test_log_softmax_consistent(self):
        x = Tensor(RNG.normal(size=(3, 4)))
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(F.softmax(x).data), atol=1e-10)


class TestConcatStack:
    def test_concat_forward(self):
        a, b = RNG.normal(size=(2, 3)), RNG.normal(size=(4, 3))
        out = F.concat([Tensor(a), Tensor(b)], axis=0)
        np.testing.assert_allclose(out.data, np.concatenate([a, b]))

    def test_concat_gradient_axis0(self):
        check_gradients(
            lambda a, b: F.concat([a, b], axis=0).sum(),
            [RNG.normal(size=(2, 3)), RNG.normal(size=(3, 3))])

    def test_concat_gradient_axis1(self):
        w = RNG.normal(size=(2, 5))
        check_gradients(
            lambda a, b: (F.concat([a, b], axis=1) * w).sum(),
            [RNG.normal(size=(2, 2)), RNG.normal(size=(2, 3))])

    def test_stack_gradient(self):
        w = RNG.normal(size=(2, 3, 4))
        check_gradients(
            lambda a, b: (F.stack([a, b], axis=0) * w).sum(),
            [RNG.normal(size=(3, 4)), RNG.normal(size=(3, 4))])


class TestScatterGather:
    def test_scatter_sum_forward(self):
        src = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        out = F.scatter_sum(Tensor(src), np.array([0, 1, 0]), 2)
        np.testing.assert_allclose(out.data, [[6.0, 8.0], [3.0, 4.0]])

    def test_scatter_sum_empty_segment(self):
        src = np.ones((2, 3))
        out = F.scatter_sum(Tensor(src), np.array([0, 2]), 4)
        np.testing.assert_allclose(out.data[1], 0.0)
        np.testing.assert_allclose(out.data[3], 0.0)

    def test_scatter_sum_gradient(self):
        w = RNG.normal(size=(3, 2))
        check_gradients(
            lambda s: (F.scatter_sum(s, np.array([0, 2, 0, 1]), 3) * w).sum(),
            [RNG.normal(size=(4, 2))])

    def test_scatter_mean_forward(self):
        src = np.array([[2.0], [4.0], [6.0]])
        out = F.scatter_mean(Tensor(src), np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [6.0]])

    def test_gather_scatter_roundtrip(self):
        """scatter_sum(gather(x, idx), idx) multiplies rows by occurrence."""
        x = Tensor(RNG.normal(size=(3, 2)), requires_grad=True)
        idx = np.array([0, 0, 1, 2, 2, 2])
        gathered = F.gather_rows(x, idx)
        back = F.scatter_sum(gathered, idx, 3)
        counts = np.array([2.0, 1.0, 3.0])[:, None]
        np.testing.assert_allclose(back.data, x.data * counts)


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self):
        logits = Tensor(RNG.normal(size=8))
        index = np.array([0, 0, 0, 1, 1, 2, 2, 2])
        alpha = F.segment_softmax(logits, index, 3)
        sums = np.zeros(3)
        np.add.at(sums, index, alpha.data)
        np.testing.assert_allclose(sums, np.ones(3))

    def test_multihead_shape(self):
        logits = Tensor(RNG.normal(size=(6, 2)))
        index = np.array([0, 0, 1, 1, 1, 1])
        alpha = F.segment_softmax(logits, index, 2)
        assert alpha.shape == (6, 2)
        sums = np.zeros((2, 2))
        np.add.at(sums, index, alpha.data)
        np.testing.assert_allclose(sums, np.ones((2, 2)))

    def test_matches_dense_softmax_single_segment(self):
        logits = RNG.normal(size=5)
        index = np.zeros(5, dtype=int)
        seg = F.segment_softmax(Tensor(logits), index, 1).data
        dense = np.exp(logits) / np.exp(logits).sum()
        np.testing.assert_allclose(seg, dense, rtol=1e-10)

    def test_gradient(self):
        index = np.array([0, 0, 1, 1, 1])
        w = RNG.normal(size=5)
        check_gradients(
            lambda lg: (F.segment_softmax(lg, index, 2) * w).sum(),
            [RNG.normal(size=5)], rtol=1e-3, atol=1e-6)

    def test_large_logits_stable(self):
        logits = Tensor(np.array([1000.0, 1000.0, -1000.0]))
        alpha = F.segment_softmax(logits, np.array([0, 0, 0]), 1)
        assert np.all(np.isfinite(alpha.data))
        np.testing.assert_allclose(alpha.data.sum(), 1.0)


class TestActivationRegistry:
    @pytest.mark.parametrize("name", ["relu", "tanh", "sigmoid", "elu",
                                      "leaky_relu", "gelu", "softplus",
                                      "identity"])
    def test_lookup(self, name):
        fn = F.get_activation(name)
        out = fn(Tensor(np.array([0.5, -0.5])))
        assert out.shape == (2,)
        assert np.all(np.isfinite(out.data))

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            F.get_activation("swizzle")

    def test_callable_passthrough(self):
        fn = F.get_activation(lambda x: x)
        assert fn(Tensor(np.ones(2))).shape == (2,)

    def test_softplus_matches_reference(self):
        x = np.linspace(-20, 20, 41)
        out = F.softplus(Tensor(x)).data
        np.testing.assert_allclose(out, np.logaddexp(0, x), atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=4))
def test_property_scatter_sum_conserves_total(n_rows, n_segments):
    """Total mass is conserved by scatter_sum regardless of the index map."""
    rng = np.random.default_rng(n_rows * 13 + n_segments)
    src = rng.normal(size=(n_rows, 3))
    index = rng.integers(0, n_segments, size=n_rows)
    out = F.scatter_sum(Tensor(src), index, n_segments)
    np.testing.assert_allclose(out.data.sum(axis=0), src.sum(axis=0),
                               atol=1e-12)
