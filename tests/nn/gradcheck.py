"""Finite-difference gradient checking helper for autograd tests."""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor


def numeric_grad(fn, arrays, index, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*arrays)`` w.r.t.
    ``arrays[index]``."""
    base = [np.array(a, dtype=np.float64) for a in arrays]
    target = base[index]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = target[idx]
        target[idx] = orig + eps
        f_plus = fn(*base)
        target[idx] = orig - eps
        f_minus = fn(*base)
        target[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradients(tensor_fn, arrays, rtol: float = 1e-4,
                    atol: float = 1e-6, eps: float = 1e-6) -> None:
    """Assert autograd gradients match finite differences.

    ``tensor_fn(*tensors) -> Tensor`` must return a scalar tensor.
    """
    tensors = [Tensor(np.array(a, dtype=np.float64), requires_grad=True)
               for a in arrays]
    out = tensor_fn(*tensors)
    out.backward()

    def scalar_fn(*arrs):
        ts = [Tensor(a) for a in arrs]
        return tensor_fn(*ts).item()

    for i, t in enumerate(tensors):
        expected = numeric_grad(scalar_fn, arrays, i, eps=eps)
        actual = t.grad if t.grad is not None else np.zeros_like(expected)
        np.testing.assert_allclose(
            actual, expected, rtol=rtol, atol=atol,
            err_msg=f"gradient mismatch for argument {i}")
