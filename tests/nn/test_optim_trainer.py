"""Tests for optimizers, LR schedules, losses, metrics, trainer, and
serialization."""

import numpy as np
import pytest

from repro.nn import (Adam, CosineLR, Graph, Linear, MLP, SGD, StepLR, Tensor,
                      TrainConfig, Trainer, clip_grad_norm, huber_loss,
                      l1_loss, load_model, mape, mse, mse_loss, r2_score,
                      relative_l2_loss, rmse, save_model, mae)
from repro.nn.gnn import GCNConv, global_mean_pool
from repro.nn.layers import Module

RNG = np.random.default_rng(21)


def quadratic_params():
    """A single-parameter model for convergence tests: minimise (w - 3)^2."""
    from repro.nn import Parameter
    return Parameter(np.array([0.0]))


class TestSGD:
    def test_converges_on_quadratic(self):
        w = quadratic_params()
        opt = SGD([w], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss = ((w - 3.0) * (w - 3.0)).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, [3.0], atol=1e-3)

    def test_momentum_faster_than_plain(self):
        def run(momentum):
            w = quadratic_params()
            opt = SGD([w], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                ((w - 3.0) * (w - 3.0)).sum().backward()
                opt.step()
            return abs(w.data[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        from repro.nn import Parameter
        w = Parameter(np.array([10.0]))
        opt = SGD([w], lr=0.1, weight_decay=0.5)
        for _ in range(20):
            opt.zero_grad()
            (w * 0.0).sum().backward()
            opt.step()
        assert abs(w.data[0]) < 10.0

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        w = quadratic_params()
        opt = Adam([w], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            ((w - 3.0) * (w - 3.0)).sum().backward()
            opt.step()
        np.testing.assert_allclose(w.data, [3.0], atol=1e-2)

    def test_skips_params_without_grad(self):
        from repro.nn import Parameter
        w1, w2 = Parameter(np.array([1.0])), Parameter(np.array([1.0]))
        opt = Adam([w1, w2], lr=0.1)
        (w1 * w1).sum().backward()
        opt.step()
        np.testing.assert_allclose(w2.data, [1.0])
        assert w1.data[0] != 1.0


class TestClipAndSchedules:
    def test_clip_grad_norm(self):
        from repro.nn import Parameter
        w = Parameter(np.array([1.0, 1.0]))
        w.grad = np.array([3.0, 4.0])  # norm 5
        pre = clip_grad_norm([w], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        np.testing.assert_allclose(np.linalg.norm(w.grad), 1.0)

    def test_clip_noop_below_threshold(self):
        from repro.nn import Parameter
        w = Parameter(np.array([1.0]))
        w.grad = np.array([0.5])
        clip_grad_norm([w], max_norm=1.0)
        np.testing.assert_allclose(w.grad, [0.5])

    def test_step_lr(self):
        w = quadratic_params()
        opt = SGD([w], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5

    def test_cosine_lr_endpoints(self):
        w = quadratic_params()
        opt = SGD([w], lr=1.0)
        sched = CosineLR(opt, total_epochs=10, min_lr=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)


class TestLosses:
    def test_mse_loss_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_l1_loss_value(self):
        pred = Tensor(np.array([1.0, -3.0]))
        assert l1_loss(pred, np.zeros(2)).item() == pytest.approx(2.0)

    def test_huber_between_l1_and_l2_for_large_errors(self):
        pred = Tensor(np.array([10.0]))
        target = np.array([0.0])
        h = huber_loss(pred, target, delta=1.0).item()
        assert h < mse_loss(pred, target).item()
        assert h > 0

    def test_relative_l2_scale_invariant(self):
        pred1 = Tensor(np.array([1.1, 0.9]))
        t1 = np.array([1.0, 1.0])
        pred2 = Tensor(np.array([1100.0, 900.0]))
        t2 = np.array([1000.0, 1000.0])
        a = relative_l2_loss(pred1, t1).item()
        b = relative_l2_loss(pred2, t2).item()
        assert a == pytest.approx(b, rel=1e-6)


class TestMetrics:
    def test_mse_rmse_mae(self):
        pred, target = np.array([2.0, 4.0]), np.array([0.0, 0.0])
        assert mse(pred, target) == pytest.approx(10.0)
        assert rmse(pred, target) == pytest.approx(np.sqrt(10.0))
        assert mae(pred, target) == pytest.approx(3.0)

    def test_mape_percent(self):
        assert mape(np.array([110.0]), np.array([100.0])) == pytest.approx(10.0)

    def test_mape_ignores_zero_targets(self):
        val = mape(np.array([1.0, 110.0]), np.array([0.0, 100.0]))
        assert val == pytest.approx(10.0)

    def test_mape_all_zero_targets_nan(self):
        assert np.isnan(mape(np.ones(3), np.zeros(3)))

    def test_r2_perfect(self):
        y = RNG.normal(size=50)
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_r2_mean_predictor_zero(self):
        y = RNG.normal(size=50)
        assert r2_score(np.full_like(y, y.mean()), y) == pytest.approx(0.0, abs=1e-9)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.ones(3), np.ones(4))


class _GraphRegressor(Module):
    """Toy graph-level regressor: mean-pool then linear."""

    def __init__(self, fx, rng):
        super().__init__()
        self.conv = GCNConv(fx, 8, rng=rng)
        self.head = Linear(8, 1, rng=rng)

    def forward_batch(self, batch):
        h = self.conv(Tensor(batch.x), batch.edge_index).relu()
        pooled = global_mean_pool(h, batch.batch, batch.num_graphs)
        return self.head(pooled)


def _make_graph_dataset(n, rng):
    """Graphs whose target is the mean of node feature 0 (learnable)."""
    graphs = []
    for _ in range(n):
        k = rng.integers(3, 7)
        x = rng.normal(size=(k, 3))
        edges = np.stack([np.arange(k - 1), np.arange(1, k)])
        g = Graph(x=x, edge_index=edges, y=np.array([x[:, 0].mean()]),
                  meta={"target_level": "graph"})
        graphs.append(g)
    return graphs


class TestTrainer:
    def test_fit_reduces_loss(self):
        rng = np.random.default_rng(0)
        graphs = _make_graph_dataset(40, rng)
        model = _GraphRegressor(3, rng)
        trainer = Trainer(model, config=TrainConfig(epochs=30, batch_size=8,
                                                    lr=5e-3, seed=1))
        result = trainer.fit(graphs[:32], graphs[32:])
        assert result.train_losses[-1] < result.train_losses[0]
        assert result.epochs_run == 30

    def test_early_stopping(self):
        rng = np.random.default_rng(0)
        graphs = _make_graph_dataset(20, rng)
        model = _GraphRegressor(3, rng)
        # lr=0 keeps validation loss flat, so patience must trigger.
        cfg = TrainConfig(epochs=200, batch_size=8, lr=0.0,
                          early_stop_patience=3, seed=1)
        result = Trainer(model, config=cfg).fit(graphs[:16], graphs[16:])
        assert result.epochs_run < 200

    def test_restores_best_state(self):
        rng = np.random.default_rng(0)
        graphs = _make_graph_dataset(20, rng)
        model = _GraphRegressor(3, rng)
        cfg = TrainConfig(epochs=15, batch_size=4, lr=1e-2, seed=1)
        trainer = Trainer(model, config=cfg)
        result = trainer.fit(graphs[:16], graphs[16:])
        final_val = trainer.evaluate(graphs[16:])
        assert final_val == pytest.approx(result.best_val_loss, rel=1e-6)

    def test_predict_shape(self):
        rng = np.random.default_rng(0)
        graphs = _make_graph_dataset(10, rng)
        model = _GraphRegressor(3, rng)
        preds = Trainer(model).predict(graphs)
        assert preds.shape == (10, 1)


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        m1 = MLP([3, 7, 2], rng=np.random.default_rng(1))
        m2 = MLP([3, 7, 2], rng=np.random.default_rng(2))
        path = tmp_path / "model.npz"
        save_model(m1, path, meta={"kind": "test", "epoch": 3})
        meta = load_model(m2, path)
        assert meta == {"kind": "test", "epoch": 3}
        x = Tensor(RNG.normal(size=(4, 3)))
        np.testing.assert_allclose(m1(x).data, m2(x).data)

    def test_load_appends_npz_suffix(self, tmp_path):
        m = MLP([2, 3, 1], rng=RNG)
        path = tmp_path / "weights"
        save_model(m, path.with_suffix(".npz"))
        load_model(m, path)  # resolves weights.npz
