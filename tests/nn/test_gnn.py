"""Tests for GCNConv, RelGATConv, pooling, and graph batching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (Batch, GCNConv, Graph, RelGATConv, Tensor, add_self_loops,
                      batch_graphs, global_max_pool, global_mean_pool,
                      global_sum_pool)

RNG = np.random.default_rng(11)


def chain_graph(n, fx=4, fe=3, rng=RNG):
    edges = np.stack([np.arange(n - 1), np.arange(1, n)])
    return Graph(x=rng.normal(size=(n, fx)), edge_index=edges,
                 edge_attr=rng.normal(size=(n - 1, fe)))


class TestGraphContainer:
    def test_validates_edge_index_shape(self):
        with pytest.raises(ValueError):
            Graph(x=np.ones((3, 2)), edge_index=np.ones((3, 3), dtype=int))

    def test_validates_node_reference(self):
        with pytest.raises(ValueError):
            Graph(x=np.ones((2, 2)), edge_index=np.array([[0, 1], [1, 5]]))

    def test_validates_edge_attr_rows(self):
        with pytest.raises(ValueError):
            Graph(x=np.ones((3, 2)), edge_index=np.array([[0], [1]]),
                  edge_attr=np.ones((2, 4)))

    def test_to_undirected_doubles_edges(self):
        g = chain_graph(4)
        u = g.to_undirected()
        assert u.num_edges == 2 * g.num_edges
        assert u.edge_attr.shape[0] == u.num_edges

    def test_counts(self):
        g = chain_graph(5, fx=4, fe=3)
        assert g.num_nodes == 5
        assert g.num_edges == 4
        assert g.num_node_features == 4
        assert g.num_edge_features == 3


class TestBatching:
    def test_offsets_and_batch_vector(self):
        g1, g2 = chain_graph(3), chain_graph(5)
        b = batch_graphs([g1, g2])
        assert b.num_nodes == 8
        assert b.num_graphs == 2
        np.testing.assert_array_equal(b.node_offsets, [0, 3, 8])
        np.testing.assert_array_equal(b.batch, [0, 0, 0, 1, 1, 1, 1, 1])

    def test_edges_offset(self):
        g1, g2 = chain_graph(3), chain_graph(3)
        b = batch_graphs([g1, g2])
        # second graph's edges must reference nodes 3..5
        np.testing.assert_array_equal(b.edge_index[:, 2:],
                                      g2.edge_index + 3)

    def test_graph_level_targets_stacked(self):
        gs = []
        for i in range(3):
            g = chain_graph(4)
            g.y = np.array([float(i), float(i) * 2])
            g.meta["target_level"] = "graph"
            gs.append(g)
        b = batch_graphs(gs)
        assert b.y.shape == (3, 2)

    def test_node_level_targets_concatenated(self):
        gs = []
        for i in range(2):
            g = chain_graph(3 + i)
            g.y = np.ones((g.num_nodes, 1)) * i
            gs.append(g)
        b = batch_graphs(gs)
        assert b.y.shape == (7, 1)

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            batch_graphs([])

    def test_mixed_edge_attr_raises(self):
        g1 = chain_graph(3)
        g2 = Graph(x=np.ones((2, 4)), edge_index=np.array([[0], [1]]))
        with pytest.raises(ValueError):
            batch_graphs([g1, g2])


class TestSelfLoops:
    def test_adds_one_loop_per_node(self):
        ei = np.array([[0, 1], [1, 2]])
        out, _ = add_self_loops(ei, 4)
        assert out.shape == (2, 6)
        np.testing.assert_array_equal(out[:, 2:], [[0, 1, 2, 3]] * 2)

    def test_edge_attr_filled(self):
        ei = np.array([[0], [1]])
        ea = np.ones((1, 2))
        out_ei, out_ea = add_self_loops(ei, 2, ea, fill_value=0.5)
        assert out_ea.shape == (3, 2)
        np.testing.assert_allclose(out_ea[1:], 0.5)


class TestGCNConv:
    def test_shape(self):
        g = chain_graph(6)
        conv = GCNConv(4, 8, rng=RNG)
        assert conv(Tensor(g.x), g.edge_index).shape == (6, 8)

    def test_isolated_node_keeps_self_message(self):
        # Node 2 has no edges; with self loops its output is its own features.
        x = np.eye(3)
        ei = np.array([[0], [1]])
        conv = GCNConv(3, 3, bias=False, rng=RNG)
        out = conv(Tensor(x), ei, num_nodes=3).data
        expected_row2 = (x @ conv.lin.weight.data)[2]
        np.testing.assert_allclose(out[2], expected_row2, atol=1e-12)

    def test_permutation_equivariance(self):
        """Relabeling nodes permutes the output rows identically."""
        g = chain_graph(5).to_undirected()
        conv = GCNConv(4, 6, rng=np.random.default_rng(5))
        out = conv(Tensor(g.x), g.edge_index).data
        perm = np.array([3, 1, 4, 0, 2])
        inv = np.argsort(perm)
        x_p = g.x[perm]
        ei_p = inv[g.edge_index]
        out_p = conv(Tensor(x_p), ei_p).data
        np.testing.assert_allclose(out_p, out[perm], atol=1e-10)

    def test_gradients_reach_weights(self):
        g = chain_graph(4)
        conv = GCNConv(4, 2, rng=RNG)
        conv(Tensor(g.x), g.edge_index).sum().backward()
        assert conv.lin.weight.grad is not None
        assert np.any(conv.lin.weight.grad != 0)


class TestRelGATConv:
    def test_concat_heads_shape(self):
        g = chain_graph(5)
        conv = RelGATConv(4, 8, edge_features=3, heads=2, rng=RNG)
        out = conv(Tensor(g.x), g.edge_index, g.edge_attr)
        assert out.shape == (5, 16)

    def test_mean_heads_shape(self):
        g = chain_graph(5)
        conv = RelGATConv(4, 8, edge_features=3, heads=2, concat=False,
                          rng=RNG)
        assert conv(Tensor(g.x), g.edge_index, g.edge_attr).shape == (5, 8)

    def test_requires_edge_attr_when_configured(self):
        g = chain_graph(4)
        conv = RelGATConv(4, 8, edge_features=3, rng=RNG)
        with pytest.raises(ValueError):
            conv(Tensor(g.x), g.edge_index, None)

    def test_works_without_edge_features(self):
        g = chain_graph(4)
        conv = RelGATConv(4, 8, edge_features=0, heads=2, rng=RNG)
        assert conv(Tensor(g.x), g.edge_index).shape == (4, 16)

    def test_residual_projects(self):
        g = chain_graph(4)
        conv = RelGATConv(4, 8, edge_features=3, heads=2, residual=True,
                          rng=RNG)
        assert conv(Tensor(g.x), g.edge_index, g.edge_attr).shape == (4, 16)

    def test_edge_features_change_output(self):
        g = chain_graph(5)
        conv = RelGATConv(4, 8, edge_features=3, rng=np.random.default_rng(9))
        out1 = conv(Tensor(g.x), g.edge_index, g.edge_attr).data
        out2 = conv(Tensor(g.x), g.edge_index, g.edge_attr * 3.0).data
        assert not np.allclose(out1, out2)

    def test_permutation_equivariance(self):
        g = chain_graph(6).to_undirected()
        conv = RelGATConv(4, 5, edge_features=3, heads=2,
                          rng=np.random.default_rng(2))
        out = conv(Tensor(g.x), g.edge_index, g.edge_attr).data
        perm = RNG.permutation(6)
        inv = np.argsort(perm)
        out_p = conv(Tensor(g.x[perm]), inv[g.edge_index], g.edge_attr).data
        np.testing.assert_allclose(out_p, out[perm], atol=1e-10)

    def test_gradients_reach_attention_params(self):
        g = chain_graph(5)
        conv = RelGATConv(4, 3, edge_features=3, heads=2, rng=RNG)
        conv(Tensor(g.x), g.edge_index, g.edge_attr).sum().backward()
        for p, name in [(conv.att_src, "att_src"), (conv.att_dst, "att_dst"),
                        (conv.att_edge, "att_edge"),
                        (conv.lin.weight, "lin"),
                        (conv.lin_edge.weight, "lin_edge")]:
            assert p.grad is not None, name
            assert np.any(p.grad != 0), name

    def test_batched_equals_individual(self):
        """Disconnected batching must not leak messages between graphs."""
        g1, g2 = chain_graph(4), chain_graph(3)
        conv = RelGATConv(4, 6, edge_features=3, rng=np.random.default_rng(4))
        b = batch_graphs([g1, g2])
        out_b = conv(Tensor(b.x), b.edge_index, b.edge_attr).data
        out_1 = conv(Tensor(g1.x), g1.edge_index, g1.edge_attr).data
        out_2 = conv(Tensor(g2.x), g2.edge_index, g2.edge_attr).data
        np.testing.assert_allclose(out_b[:4], out_1, atol=1e-12)
        np.testing.assert_allclose(out_b[4:], out_2, atol=1e-12)


class TestPooling:
    def test_mean_pool(self):
        x = Tensor(np.array([[1.0], [3.0], [10.0]]))
        out = global_mean_pool(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[2.0], [10.0]])

    def test_sum_pool(self):
        x = Tensor(np.array([[1.0], [3.0], [10.0]]))
        out = global_sum_pool(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[4.0], [10.0]])

    def test_max_pool(self):
        x = Tensor(np.array([[1.0, 5.0], [3.0, 2.0], [10.0, -1.0]]))
        out = global_max_pool(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0, 5.0], [10.0, -1.0]])

    def test_max_pool_gradient_goes_to_argmax(self):
        x = Tensor(np.array([[1.0], [3.0]]), requires_grad=True)
        global_max_pool(x, np.array([0, 0]), 1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0], [1.0]])


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=8))
def test_property_gcn_chain_mirror_symmetry(n):
    """A chain with constant features is mirror-symmetric, so GCN outputs
    at positions i and n-1-i must be equal."""
    x = np.ones((n, 3))
    edges = np.stack([np.arange(n - 1), np.arange(1, n)])
    g = Graph(x=x, edge_index=edges).to_undirected()
    conv = GCNConv(3, 4, rng=np.random.default_rng(0))
    out = conv(Tensor(g.x), g.edge_index).data
    np.testing.assert_allclose(out, out[::-1], atol=1e-10)
