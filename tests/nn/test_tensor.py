"""Gradient and semantics tests for the autograd Tensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, no_grad

from .gradcheck import check_gradients

RNG = np.random.default_rng(42)


def rand(*shape):
    return RNG.normal(size=shape)


class TestBasicOps:
    def test_add_grad(self):
        check_gradients(lambda a, b: (a + b).sum(), [rand(3, 4), rand(3, 4)])

    def test_add_broadcast_grad(self):
        check_gradients(lambda a, b: (a + b).sum(), [rand(3, 4), rand(4)])

    def test_sub_grad(self):
        check_gradients(lambda a, b: (a - b).sum(), [rand(2, 5), rand(2, 5)])

    def test_mul_grad(self):
        check_gradients(lambda a, b: (a * b).sum(), [rand(3, 3), rand(3, 3)])

    def test_mul_broadcast_scalar_shape(self):
        check_gradients(lambda a, b: (a * b).sum(), [rand(4, 2), rand(1, 2)])

    def test_div_grad(self):
        b = rand(3, 3) + 3.0  # keep away from zero
        check_gradients(lambda x, y: (x / y).sum(), [rand(3, 3), b])

    def test_pow_grad(self):
        a = np.abs(rand(4, 4)) + 0.5
        check_gradients(lambda x: (x ** 3).sum(), [a])

    def test_matmul_grad(self):
        check_gradients(lambda a, b: (a @ b).sum(), [rand(3, 4), rand(4, 2)])

    def test_neg_grad(self):
        check_gradients(lambda a: (-a).sum(), [rand(5)])

    def test_rsub_rdiv(self):
        a = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        out = (1.0 - a) + (8.0 / a)
        out.sum().backward()
        np.testing.assert_allclose(out.data, [1.0 - 2 + 4, 1.0 - 4 + 2])
        np.testing.assert_allclose(a.grad, [-1 - 8 / 4, -1 - 8 / 16])


class TestElementwise:
    def test_exp_grad(self):
        check_gradients(lambda a: a.exp().sum(), [rand(3, 3)])

    def test_log_grad(self):
        a = np.abs(rand(3, 3)) + 0.5
        check_gradients(lambda x: x.log().sum(), [a])

    def test_sqrt_grad(self):
        a = np.abs(rand(3, 3)) + 0.5
        check_gradients(lambda x: x.sqrt().sum(), [a])

    def test_tanh_grad(self):
        check_gradients(lambda a: a.tanh().sum(), [rand(4, 2)])

    def test_sigmoid_grad(self):
        check_gradients(lambda a: a.sigmoid().sum(), [rand(4, 2)])

    def test_relu_grad(self):
        a = rand(5, 5) + 0.1  # avoid kink at exactly 0
        check_gradients(lambda x: x.relu().sum(), [a])

    def test_leaky_relu_values(self):
        t = Tensor(np.array([-2.0, 3.0]))
        np.testing.assert_allclose(t.leaky_relu(0.1).data, [-0.2, 3.0])

    def test_elu_grad(self):
        a = rand(4, 4) + 0.05
        check_gradients(lambda x: x.elu().sum(), [a])

    def test_abs_grad(self):
        a = rand(3, 3)
        a[np.abs(a) < 0.1] += 0.5
        check_gradients(lambda x: x.abs().sum(), [a])

    def test_clip_passes_gradient_inside_window(self):
        t = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        t.clip(-1, 1).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_grad(self):
        check_gradients(lambda a: a.sum(axis=0).sum(), [rand(3, 4)])
        check_gradients(lambda a: a.sum(axis=1, keepdims=True).sum(),
                        [rand(3, 4)])

    def test_mean_grad(self):
        check_gradients(lambda a: a.mean(), [rand(6, 2)])
        check_gradients(lambda a: a.mean(axis=-1).sum(), [rand(2, 7)])

    def test_max_grad_unique(self):
        a = np.array([[1.0, 5.0, 2.0], [7.0, 3.0, 4.0]])
        t = Tensor(a, requires_grad=True)
        t.max(axis=1).sum().backward()
        expected = np.array([[0, 1, 0], [1, 0, 0]], dtype=float)
        np.testing.assert_allclose(t.grad, expected)

    def test_max_grad_ties_split(self):
        t = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5, 0.0])


class TestShape:
    def test_reshape_grad(self):
        check_gradients(lambda a: (a.reshape(6) * np.arange(6)).sum(),
                        [rand(2, 3)])

    def test_transpose_grad(self):
        w = rand(4, 3)
        check_gradients(lambda a: (a.transpose() * w).sum(), [rand(3, 4)])

    def test_getitem_grad(self):
        t = Tensor(rand(5, 3), requires_grad=True)
        t[1:4].sum().backward()
        expected = np.zeros((5, 3))
        expected[1:4] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_gather_rows_repeated_index_accumulates(self):
        t = Tensor(np.eye(3), requires_grad=True)
        idx = np.array([0, 0, 2])
        t.gather_rows(idx).sum().backward()
        expected = np.array([[2.0] * 3, [0.0] * 3, [1.0] * 3])
        np.testing.assert_allclose(t.grad, expected)


class TestGraphMechanics:
    def test_reused_tensor_accumulates(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        out = a * a + a  # dy/da = 2a + 1 = 7
        out.backward()
        np.testing.assert_allclose(a.grad, [7.0])

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(np.ones(4), requires_grad=True)
        x = a
        for _ in range(3000):
            x = x + 1e-6
        x.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(4))

    def test_backward_nonscalar_requires_grad_arg(self):
        t = Tensor(rand(3), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(t.grad, [2.0, 4.0, 6.0])

    def test_no_grad_blocks_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = t * 5
        assert not out.requires_grad
        assert out._backward is None

    def test_detach(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        (d * 3).sum()
        assert not d.requires_grad
        assert t.grad is None

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * t).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None


@settings(max_examples=25, deadline=None)
@given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=2,
                                               min_side=1, max_side=5),
                  elements=st.floats(-5, 5)))
def test_property_sum_gradient_is_ones(arr):
    """d(sum(x))/dx = 1 everywhere, for any shape."""
    t = Tensor(arr, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(arr))


@settings(max_examples=25, deadline=None)
@given(hnp.arrays(np.float64, (4, 3), elements=st.floats(-3, 3)),
       hnp.arrays(np.float64, (4, 3), elements=st.floats(-3, 3)))
def test_property_addition_commutes(a, b):
    """Forward and gradients of a+b match b+a."""
    ta, tb = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
    (ta + tb).sum().backward()
    ga1, gb1 = ta.grad.copy(), tb.grad.copy()
    ta.zero_grad(), tb.zero_grad()
    (tb + ta).sum().backward()
    np.testing.assert_allclose(ga1, ta.grad)
    np.testing.assert_allclose(gb1, tb.grad)


@settings(max_examples=20, deadline=None)
@given(hnp.arrays(np.float64, (3, 3), elements=st.floats(-2, 2)))
def test_property_tanh_bounded(arr):
    out = Tensor(arr).tanh()
    assert np.all(np.abs(out.data) <= 1.0)
