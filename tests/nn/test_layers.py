"""Tests for Module, Linear, MLP, LayerNorm, Sequential, Dropout."""

import numpy as np
import pytest

from repro.nn import (MLP, Activation, Dropout, LayerNorm, Linear, Module,
                      ModuleList, Sequential, Tensor)

from .gradcheck import check_gradients

RNG = np.random.default_rng(3)


class TestLinear:
    def test_forward_shape(self):
        lin = Linear(4, 7, rng=RNG)
        out = lin(Tensor(RNG.normal(size=(5, 4))))
        assert out.shape == (5, 7)

    def test_matches_manual(self):
        lin = Linear(3, 2, rng=RNG)
        x = RNG.normal(size=(4, 3))
        expected = x @ lin.weight.data + lin.bias.data
        np.testing.assert_allclose(lin(Tensor(x)).data, expected)

    def test_no_bias(self):
        lin = Linear(3, 2, bias=False, rng=RNG)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_gradients_flow_to_weight_and_bias(self):
        lin = Linear(3, 2, rng=RNG)
        out = lin(Tensor(RNG.normal(size=(4, 3))))
        out.sum().backward()
        assert lin.weight.grad is not None
        assert lin.bias.grad is not None
        np.testing.assert_allclose(lin.bias.grad, [4.0, 4.0])


class TestMLP:
    def test_depth(self):
        mlp = MLP([3, 8, 8, 1], rng=RNG)
        # 3 linear layers => 6 parameters (w, b each)
        assert len(mlp.parameters()) == 6

    def test_forward_shape(self):
        mlp = MLP([5, 16, 2], rng=RNG)
        assert mlp(Tensor(RNG.normal(size=(7, 5)))).shape == (7, 2)

    def test_final_activation(self):
        mlp = MLP([2, 4, 1], final_activation="sigmoid", rng=RNG)
        out = mlp(Tensor(RNG.normal(size=(10, 2)))).data
        assert np.all((out > 0) & (out < 1))

    def test_layer_norm_variant(self):
        mlp = MLP([2, 4, 1], layer_norm=True, rng=RNG)
        # LayerNorm adds gamma/beta parameters
        assert len(mlp.parameters()) == 6
        assert mlp(Tensor(RNG.normal(size=(3, 2)))).shape == (3, 1)

    def test_rejects_single_dim(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_can_fit_linear_function(self):
        from repro.nn import Adam, mse_loss
        rng = np.random.default_rng(0)
        mlp = MLP([2, 16, 1], rng=rng)
        opt = Adam(mlp.parameters(), lr=5e-3)
        X = rng.normal(size=(128, 2))
        y = (X @ np.array([[1.5], [-2.0]])) + 0.3
        for _ in range(500):
            opt.zero_grad()
            loss = mse_loss(mlp(Tensor(X)), y)
            loss.backward()
            opt.step()
        assert loss.item() < 5e-2


class TestLayerNorm:
    def test_output_normalised(self):
        ln = LayerNorm(6)
        x = RNG.normal(size=(4, 6)) * 10 + 5
        out = ln(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gamma_beta_applied(self):
        ln = LayerNorm(3)
        ln.gamma.data = np.array([2.0, 2.0, 2.0])
        ln.beta.data = np.array([1.0, 1.0, 1.0])
        out = ln(Tensor(RNG.normal(size=(5, 3)))).data
        np.testing.assert_allclose(out.mean(axis=-1), 1.0, atol=1e-7)

    def test_gradient(self):
        ln = LayerNorm(4)
        w = RNG.normal(size=(2, 4))

        def fn(x):
            return (ln(x) * w).sum()

        check_gradients(fn, [RNG.normal(size=(2, 4))], rtol=1e-3)


class TestModuleInfra:
    def test_named_parameters_nested(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 3, rng=RNG)
                self.blocks = ModuleList([Linear(3, 3, rng=RNG),
                                          Linear(3, 1, rng=RNG)])

            def forward(self, x):
                x = self.a(x)
                for b in self.blocks:
                    x = b(x)
                return x

        net = Net()
        names = dict(net.named_parameters())
        assert "a.weight" in names
        assert "blocks.items.0.weight" in names
        assert "blocks.items.1.bias" in names
        assert net.num_parameters() == 2 * 3 + 3 + 3 * 3 + 3 + 3 + 1

    def test_state_dict_roundtrip(self):
        m1 = MLP([3, 5, 1], rng=np.random.default_rng(1))
        m2 = MLP([3, 5, 1], rng=np.random.default_rng(2))
        m2.load_state_dict(m1.state_dict())
        x = Tensor(RNG.normal(size=(4, 3)))
        np.testing.assert_allclose(m1(x).data, m2(x).data)

    def test_load_state_dict_rejects_mismatch(self):
        m = MLP([3, 5, 1], rng=RNG)
        state = m.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self):
        m = Linear(3, 2, rng=RNG)
        state = m.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            m.load_state_dict(state)

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2, rng=RNG), Dropout(0.5))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_zero_grad(self):
        m = Linear(2, 2, rng=RNG)
        m(Tensor(RNG.normal(size=(3, 2)))).sum().backward()
        assert m.weight.grad is not None
        m.zero_grad()
        assert m.weight.grad is None


class TestDropout:
    def test_identity_in_eval(self):
        d = Dropout(0.9, rng=np.random.default_rng(0))
        d.eval()
        x = RNG.normal(size=(10, 10))
        np.testing.assert_allclose(d(Tensor(x)).data, x)

    def test_scales_in_train(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((2000, 1))
        out = d(Tensor(x)).data
        # Inverted dropout keeps the expectation ~1.
        assert abs(out.mean() - 1.0) < 0.1
        assert set(np.unique(out)) <= {0.0, 2.0}

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestSequentialActivation:
    def test_sequential_iterates(self):
        seq = Sequential(Linear(2, 3, rng=RNG), Activation("relu"))
        assert len(seq) == 2
        out = seq(Tensor(RNG.normal(size=(4, 2))))
        assert out.shape == (4, 3)
        assert np.all(out.data >= 0)
