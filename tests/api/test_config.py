"""Config layer: round trips, unknown-key rejection, schema versioning."""

import json

import pytest

from repro.api import (SCHEMA_VERSION, ConfigError, EngineConfig,
                       ModelConfig, RunReport, ScenarioConfig,
                       SearchConfig, StcoConfig, TechnologyConfig)

ALL_CONFIGS = [
    TechnologyConfig(),
    TechnologyConfig(cells=("INV_X1",), train_corners=((1.0, 0.0, 1.0),),
                     slews=(8e-9,), loads=(15e-15,)),
    ModelConfig(),
    ModelConfig(kind="spice"),
    EngineConfig(),
    EngineConfig(backend="thread", cache_max_bytes=1 << 20,
                 persist=False),
    SearchConfig(),
    SearchConfig(optimizer="anneal", members=("anneal", "random")),
    ScenarioConfig(),
    ScenarioConfig(benchmark="s386", agent="nsga2", weights=(2, 1, 1)),
    StcoConfig(),
    StcoConfig(mode="campaign",
               scenarios=(ScenarioConfig(), ScenarioConfig(seed=1))),
    StcoConfig(mode="portfolio",
               search=SearchConfig(members=("anneal", "evolution"))),
]


class TestRoundTrip:
    @pytest.mark.parametrize("config", ALL_CONFIGS,
                             ids=lambda c: type(c).__name__)
    def test_dict_round_trip(self, config):
        assert type(config).from_dict(config.to_dict()) == config

    @pytest.mark.parametrize("config", ALL_CONFIGS,
                             ids=lambda c: type(c).__name__)
    def test_json_round_trip(self, config):
        # Through real JSON text, so tuples must survive list form.
        data = json.loads(json.dumps(config.to_dict()))
        assert type(config).from_dict(data) == config

    def test_root_json_helpers(self, tmp_path):
        config = StcoConfig(mode="search", benchmark="s386")
        assert StcoConfig.from_json(config.to_json()) == config
        path = config.save(tmp_path / "cfg.json")
        assert StcoConfig.load(path) == config

    def test_to_dict_is_json_native(self):
        text = json.dumps(StcoConfig(mode="campaign",
                                     scenarios=(ScenarioConfig(),))
                          .to_dict())
        assert "scenarios" in json.loads(text)


class TestValidation:
    @pytest.mark.parametrize("cls", [TechnologyConfig, ModelConfig,
                                     EngineConfig, SearchConfig,
                                     ScenarioConfig, StcoConfig])
    def test_unknown_key_rejected(self, cls):
        with pytest.raises(ConfigError, match="unknown key.*bogus"):
            cls.from_dict({"bogus": 1})

    def test_nested_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown key.*typo"):
            StcoConfig.from_dict({"search": {"typo": 3}})

    def test_schema_version_mismatch(self):
        with pytest.raises(ConfigError, match="schema_version"):
            StcoConfig.from_dict({"schema_version": SCHEMA_VERSION + 1})

    def test_schema_version_default_is_current(self):
        assert StcoConfig().schema_version == SCHEMA_VERSION

    def test_bad_mode(self):
        with pytest.raises(ConfigError, match="mode"):
            StcoConfig(mode="warp")

    def test_campaign_needs_scenarios(self):
        with pytest.raises(ConfigError, match="scenario"):
            StcoConfig(mode="campaign")

    def test_bad_model_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            ModelConfig(kind="tarot")

    def test_bad_corner_shape(self):
        with pytest.raises(ConfigError, match="triples"):
            TechnologyConfig(train_corners=((1.0, 0.0),))

    def test_non_mapping(self):
        with pytest.raises(ConfigError, match="mapping"):
            StcoConfig.from_dict([1, 2, 3])

    def test_negative_cache_bytes(self):
        with pytest.raises(ConfigError, match="cache_max_bytes"):
            EngineConfig(cache_max_bytes=-1)


class TestMapping:
    def test_char_config(self):
        tech = TechnologyConfig(slews=(1e-9,), loads=(2e-15,),
                                n_bisect=3, max_steps=99)
        cfg = tech.char_config()
        assert cfg.slews == (1e-9,) and cfg.loads == (2e-15,)
        assert cfg.n_bisect == 3 and cfg.max_steps == 99

    def test_corner_defaults_are_ci_grids(self):
        tech = TechnologyConfig()
        assert len(tech.corners("train")) == 8
        assert len(tech.corners("test")) == 27

    def test_explicit_corners(self):
        tech = TechnologyConfig(train_corners=((1.0, 0.0, 1.0),))
        [corner] = tech.corners("train")
        assert corner.key() == (1.0, 0.0, 1.0)

    def test_search_space(self):
        space = SearchConfig(vdd_scales=(0.9, 1.1), vth_shifts=(0.0,),
                             cox_scales=(1.0,)).space()
        assert space.size == 2

    def test_search_weights(self):
        w = SearchConfig(weights=(2.0, 1.0, 0.25)).ppa_weights()
        assert (w.power, w.performance, w.area) == (2.0, 1.0, 0.25)

    def test_scenario_mapping(self):
        s = ScenarioConfig(benchmark="s386", agent="anneal", seed=3,
                           iterations=7, weights=(2.0, 1.0, 0.5))
        scenario = s.scenario()
        assert scenario.benchmark == "s386"
        assert scenario.agent == "anneal"
        assert scenario.weights == (2.0, 1.0, 0.5)

    def test_builder_kind_follows_mode(self):
        assert StcoConfig(mode="fast").builder_kind() == "gnn"
        assert StcoConfig(mode="traditional").builder_kind() == "spice"
        assert StcoConfig(mode="search",
                          model=ModelConfig(kind="spice")
                          ).builder_kind() == "spice"


class TestRunReport:
    def test_json_round_trip(self):
        report = RunReport(mode="search", design="s298",
                           best_corner=(1.0, 0.0, 1.0),
                           best_reward=8.25,
                           pareto_front=[{"corner": [1.0, 0.0, 1.0]}],
                           runtime={"total_s": 1.5})
        again = RunReport.from_json(report.to_json())
        assert again == report
        assert isinstance(again.best_corner, tuple)

    def test_save_load(self, tmp_path):
        report = RunReport(mode="fast", best_reward=1.0)
        path = report.save(tmp_path / "r.json")
        assert RunReport.load(path) == report

    def test_summary_rows_render(self):
        report = RunReport(mode="search", design="s298",
                           best_ppa={"power_w": 1e-5,
                                     "performance_hz": 1e6,
                                     "area_um2": 100.0})
        rows = report.summary_rows()
        assert all(len(r) == 2 for r in rows)


class TestDeclarativeAxes:
    def _axes_config(self):
        from repro.api import AxisConfig
        return SearchConfig(
            optimizer="anneal",
            axes=(AxisConfig(name="vdd_scale", lo=0.8, hi=1.2,
                             step=0.05),
                  AxisConfig(name="vth_shift",
                             values=(-0.1, 0.0, 0.1)),
                  AxisConfig(name="cox_scale", lo=0.8, hi=1.2)))

    def test_round_trips_through_json(self):
        config = StcoConfig(mode="search", search=self._axes_config())
        assert StcoConfig.from_json(config.to_json()) == config

    def test_builds_a_mixed_search_space(self):
        from repro.search.spaces import SearchSpace
        space = self._axes_config().space()
        assert isinstance(space, SearchSpace)
        assert not space.is_grid
        names = [a.name for a in space.axes]
        assert names == ["vdd_scale", "vth_shift", "cox_scale"]
        # The stepped continuous axis snaps off-grid values.
        assert space.axes[0].snap(0.837) == pytest.approx(0.85)

    def test_all_discrete_axes_stay_a_grid(self):
        from repro.api import AxisConfig
        config = SearchConfig(
            axes=(AxisConfig(name="vdd_scale", values=(0.9, 1.1)),
                  AxisConfig(name="vth_shift", values=(0.0,))))
        space = config.space()
        assert space.is_grid and space.size == 2

    def test_default_space_unchanged_without_axes(self):
        from repro.stco.space import DesignSpace
        assert isinstance(SearchConfig().space(), DesignSpace)

    def test_rejects_unknown_knob_names(self):
        from repro.api import AxisConfig
        with pytest.raises(ConfigError, match="axis name"):
            AxisConfig(name="finfet_pitch", lo=0.0, hi=1.0)

    def test_rejects_degenerate_boxes_and_duplicates(self):
        from repro.api import AxisConfig
        with pytest.raises(ConfigError, match="hi > lo"):
            AxisConfig(name="vdd_scale", lo=1.0, hi=1.0)
        with pytest.raises(ConfigError, match="unique"):
            SearchConfig(axes=(
                AxisConfig(name="vdd_scale", values=(1.0,)),
                AxisConfig(name="vdd_scale", values=(0.9,))))

    def test_axes_from_plain_json_document(self):
        document = {"mode": "search",
                    "search": {"optimizer": "bayes",
                               "axes": [{"name": "vdd_scale",
                                         "lo": 0.8, "hi": 1.2,
                                         "step": 0.1}]}}
        config = StcoConfig.from_dict(document)
        assert config.search.space().axes[0].step == pytest.approx(0.1)


class TestSurrogateConfig:
    def test_round_trip_and_defaults(self):
        from repro.api import SurrogateConfig
        config = StcoConfig(
            mode="search",
            surrogate=SurrogateConfig(harvest=True, screen=12,
                                      promote=3, ucb_beta=2.0))
        assert StcoConfig.from_json(config.to_json()) == config
        assert StcoConfig().surrogate == SurrogateConfig()
        assert not StcoConfig().surrogate.harvest

    def test_validation(self):
        from repro.api import SurrogateConfig
        with pytest.raises(ConfigError, match="screen"):
            SurrogateConfig(screen=2, promote=4)
        with pytest.raises(ConfigError, match="members"):
            SurrogateConfig(members=0)

    def test_optimizer_name_decides_the_acquisition(self):
        """surrogate options must never override the registry name:
        selecting optimizer=\"ucb\" has to produce a UCB optimizer."""
        from repro.api import SurrogateConfig
        from repro.search import make_optimizer
        from repro.stco import default_space
        options = SurrogateConfig().optimizer_options()
        assert "acquisition" not in options
        space = default_space()
        assert make_optimizer("ucb", space, options=options).name == "ucb"
        assert make_optimizer("bayes", space,
                              options=options).name == "bayes"

    def test_maps_to_schedule_and_ensemble(self):
        from repro.api import SurrogateConfig
        config = SurrogateConfig(screen=10, promote=2, kappa=0.5,
                                 members=4, hidden=8, epochs=12)
        schedule = config.schedule()
        assert schedule.screen == 10 and schedule.promote == 2
        assert schedule.kappa == 0.5
        model = config.model_config()
        assert model.members == 4 and model.epochs == 12
        assert SurrogateConfig().schedule() is None

    def test_portfolio_scoring_validated(self):
        with pytest.raises(ConfigError, match="portfolio_scoring"):
            SearchConfig(portfolio_scoring="best")
        assert SearchConfig(
            portfolio_scoring="hypervolume").portfolio_scoring \
            == "hypervolume"


class TestAxisMutualExclusion:
    def test_discrete_axis_rejects_continuous_fields(self):
        from repro.api import AxisConfig
        with pytest.raises(ConfigError, match="mixes discrete"):
            AxisConfig(name="vdd_scale", values=(0.9, 1.1),
                       lo=0.8, hi=1.2, step=0.025)
        with pytest.raises(ConfigError, match="mixes discrete"):
            AxisConfig(name="vdd_scale", values=(0.9, 1.1), step=0.05)
