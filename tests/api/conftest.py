"""Shared fixtures for the api-layer tests.

One session workspace (tiny dataset + GNN trained once) backs the
runner / workspace / CLI tests, mirroring the engine test fixtures'
CI-scale configuration.
"""

import pytest

from repro.api import (ModelConfig, SearchConfig, StcoConfig,
                       TechnologyConfig, Workspace)

TECH = TechnologyConfig(
    cells=("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1"),
    train_corners=((1.0, 0.0, 1.0), (0.9, 0.05, 1.1)),
    test_corners=((0.95, 0.02, 1.05),),
    slews=(8e-9,), loads=(15e-15,), n_bisect=3, max_steps=200)

MODEL = ModelConfig(epochs=10)

SEARCH = SearchConfig(optimizer="qlearning", seed=0, iterations=6,
                      vdd_scales=(0.9, 1.0, 1.1), vth_shifts=(0.0,),
                      cox_scales=(0.9, 1.1))


@pytest.fixture(scope="session")
def ws_root(tmp_path_factory):
    return tmp_path_factory.mktemp("api_workspace")


@pytest.fixture(scope="session")
def workspace(ws_root):
    return Workspace(ws_root)


@pytest.fixture(scope="session")
def base_config():
    return StcoConfig(mode="search", benchmark="s298", technology=TECH,
                      model=MODEL, search=SEARCH)
