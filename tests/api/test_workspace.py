"""Workspace: artifact reuse in-process and across instances."""

import numpy as np
import pytest

from repro.api import EngineConfig, ModelConfig, Workspace
from tests.api.conftest import MODEL, TECH


class TestDatasets:
    def test_dataset_built_then_memoized(self, workspace):
        first = workspace.dataset(TECH)
        again = workspace.dataset(TECH)
        assert again is first
        assert workspace.counters["datasets_built"] >= 1

    def test_new_instance_loads_from_disk(self, workspace, ws_root):
        workspace.dataset(TECH)
        other = Workspace(ws_root)
        other.dataset(TECH)
        assert other.counters["datasets_built"] == 0
        assert other.counters["datasets_loaded"] == 1


class TestModels:
    def test_model_trained_once(self, workspace):
        first = workspace.model(TECH, MODEL)
        again = workspace.model(TECH, MODEL)
        assert again is first
        assert workspace.counters["models_trained"] == 1

    def test_reload_reproduces_weights_exactly(self, workspace, ws_root):
        model = workspace.model(TECH, MODEL)
        other = Workspace(ws_root)
        reloaded = other.model(TECH, MODEL)
        assert other.counters["models_trained"] == 0
        assert other.counters["models_loaded"] == 1
        state, state2 = model.state_dict(), reloaded.state_dict()
        assert set(state) == set(state2)
        for name in state:
            np.testing.assert_array_equal(state[name], state2[name])

    def test_reload_preserves_builder_fingerprint(self, workspace,
                                                  ws_root):
        fp = workspace.builder(TECH, MODEL).fingerprint()
        assert Workspace(ws_root).builder(TECH, MODEL).fingerprint() == fp

    def test_spice_kind_has_no_model(self, workspace):
        with pytest.raises(ValueError, match="spice"):
            workspace.model(TECH, ModelConfig(kind="spice"))

    def test_registry_records_artifacts(self, workspace):
        workspace.model(TECH, MODEL)
        kinds = {e["kind"] for e in workspace.registry().values()}
        assert {"dataset", "model"} <= kinds


class TestBuilders:
    def test_spice_builder(self, workspace):
        builder = workspace.builder(TECH, ModelConfig(kind="spice"))
        assert builder.technology == TECH.technology
        assert tuple(builder.cells) == TECH.cells

    def test_gnn_builder_memoized(self, workspace):
        assert workspace.builder(TECH, MODEL) is \
            workspace.builder(TECH, MODEL)


class TestEngines:
    def test_engine_memoized_per_config(self, workspace):
        engine = workspace.engine(TECH, MODEL, EngineConfig())
        assert workspace.engine(TECH, MODEL, EngineConfig()) is engine
        other = workspace.engine(TECH, MODEL,
                                 EngineConfig(cache_capacity=7))
        assert other is not engine

    def test_engine_uses_workspace_disk_cache(self, workspace):
        engine = workspace.engine(TECH, MODEL, EngineConfig())
        assert engine.result_cache.disk is not None
        assert str(workspace.engine_dir) in \
            str(engine.result_cache.disk.directory)

    def test_persist_false_disables_disk(self, workspace):
        engine = workspace.engine(TECH, MODEL,
                                  EngineConfig(persist=False))
        assert engine.result_cache.disk is None

    def test_cache_max_bytes_reaches_disk_tier(self, workspace):
        engine = workspace.engine(
            TECH, MODEL, EngineConfig(cache_max_bytes=1 << 20))
        assert engine.library_cache.disk.max_bytes == 1 << 20


class TestEphemeral:
    def test_ephemeral_workspace_works(self):
        ws = Workspace.ephemeral()
        assert ws.root.exists()
        assert ws.stats()["models_trained"] == 0
