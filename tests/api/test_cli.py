"""CLI: run / search / campaign / report subcommands."""

import json

import pytest

from repro.api import RunReport, ScenarioConfig, StcoConfig
from repro.api.cli import main
from tests.api.conftest import MODEL, SEARCH, TECH


@pytest.fixture(scope="module")
def config_path(tmp_path_factory, workspace):
    # Warm the session workspace once so CLI runs stay fast.
    from repro.api import run
    config = StcoConfig(mode="search", benchmark="s298",
                        technology=TECH, model=MODEL, search=SEARCH)
    run(config, workspace)
    path = tmp_path_factory.mktemp("cli") / "cfg.json"
    config.save(path)
    return path


class TestRun:
    def test_run_writes_report(self, config_path, ws_root, tmp_path,
                               capsys):
        out = tmp_path / "report.json"
        code = main(["run", str(config_path), "--workspace",
                     str(ws_root), "--out", str(out)])
        assert code == 0
        report = RunReport.load(out)
        assert report.mode == "search"
        assert report.cache_stats["workspace"]["models_trained"] == 0
        assert "best corner" in capsys.readouterr().out

    def test_run_default_out_under_workspace(self, config_path, ws_root,
                                             capsys):
        code = main(["run", str(config_path), "--workspace",
                     str(ws_root), "--quiet"])
        assert code == 0
        printed = capsys.readouterr().out.strip()
        assert printed.endswith("report.json")
        assert json.loads(open(printed).read())["mode"] == "search"

    def test_missing_config_errors(self, capsys):
        assert main(["run", "/nonexistent/cfg.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_config_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"mode": "warp"}')
        assert main(["run", str(path)]) == 2
        assert "mode" in capsys.readouterr().err


class TestSearchOverrides:
    def test_search_forces_mode_and_overrides(self, ws_root, tmp_path,
                                              capsys):
        base = StcoConfig(mode="fast", benchmark="s298",
                          technology=TECH, model=MODEL, search=SEARCH)
        path = tmp_path / "cfg.json"
        base.save(path)
        out = tmp_path / "report.json"
        code = main(["search", str(path), "--workspace", str(ws_root),
                     "--out", str(out), "--optimizer", "random",
                     "--iterations", "4", "--quiet"])
        assert code == 0
        report = RunReport.load(out)
        assert report.mode == "search"
        assert report.optimizer == "random"
        assert len(report.rewards) == 4


class TestCampaign:
    def test_campaign_subcommand(self, ws_root, tmp_path, capsys):
        config = StcoConfig(
            mode="campaign", technology=TECH, model=MODEL, search=SEARCH,
            scenarios=(ScenarioConfig(benchmark="s298", agent="random",
                                      iterations=2),))
        path = tmp_path / "cfg.json"
        config.save(path)
        out = tmp_path / "report.json"
        code = main(["campaign", str(path), "--workspace", str(ws_root),
                     "--out", str(out), "--quiet"])
        assert code == 0
        assert RunReport.load(out).mode == "campaign"


class TestCheckpointErrors:
    def test_foreign_schema_checkpoint_is_clean_error(self, ws_root,
                                                      tmp_path, capsys):
        config = StcoConfig(
            mode="campaign", technology=TECH, model=MODEL, search=SEARCH,
            checkpoint=str(tmp_path / "ckpt.json"),
            scenarios=(ScenarioConfig(benchmark="s298", agent="random",
                                      iterations=2),))
        path = tmp_path / "cfg.json"
        config.save(path)
        assert main(["run", str(path), "--workspace", str(ws_root),
                     "--quiet"]) == 0
        ckpt = json.loads((tmp_path / "ckpt.json").read_text())
        ckpt["config_schema"] += 1
        (tmp_path / "ckpt.json").write_text(json.dumps(ckpt))
        assert main(["run", str(path), "--workspace", str(ws_root),
                     "--quiet"]) == 2
        assert "config schema" in capsys.readouterr().err
        # --no-resume is the advertised way out.
        assert main(["run", str(path), "--workspace", str(ws_root),
                     "--no-resume", "--quiet"]) == 0


class TestReport:
    def test_report_pretty_prints(self, tmp_path, capsys):
        path = RunReport(mode="search", design="s298",
                         best_corner=(1.0, 0.0, 1.0),
                         best_reward=8.5).save(tmp_path / "r.json")
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "best reward" in out and "8.5" in out

    def test_report_missing_file(self, capsys):
        assert main(["report", "/nonexistent/r.json"]) == 2
