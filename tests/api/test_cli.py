"""CLI: run / search / campaign / report subcommands."""

import json

import pytest

from repro.api import RunReport, ScenarioConfig, StcoConfig
from repro.api.cli import main
from tests.api.conftest import MODEL, SEARCH, TECH


@pytest.fixture(scope="module")
def config_path(tmp_path_factory, workspace):
    # Warm the session workspace once so CLI runs stay fast.
    from repro.api import run
    config = StcoConfig(mode="search", benchmark="s298",
                        technology=TECH, model=MODEL, search=SEARCH)
    run(config, workspace)
    path = tmp_path_factory.mktemp("cli") / "cfg.json"
    config.save(path)
    return path


class TestRun:
    def test_run_writes_report(self, config_path, ws_root, tmp_path,
                               capsys):
        out = tmp_path / "report.json"
        code = main(["run", str(config_path), "--workspace",
                     str(ws_root), "--out", str(out)])
        assert code == 0
        report = RunReport.load(out)
        assert report.mode == "search"
        assert report.cache_stats["workspace"]["models_trained"] == 0
        assert "best corner" in capsys.readouterr().out

    def test_run_default_out_under_workspace(self, config_path, ws_root,
                                             capsys):
        code = main(["run", str(config_path), "--workspace",
                     str(ws_root), "--quiet"])
        assert code == 0
        printed = capsys.readouterr().out.strip()
        assert printed.endswith("report.json")
        assert json.loads(open(printed).read())["mode"] == "search"

    def test_missing_config_errors(self, capsys):
        assert main(["run", "/nonexistent/cfg.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_config_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"mode": "warp"}')
        assert main(["run", str(path)]) == 2
        assert "mode" in capsys.readouterr().err


class TestSearchOverrides:
    def test_search_forces_mode_and_overrides(self, ws_root, tmp_path,
                                              capsys):
        base = StcoConfig(mode="fast", benchmark="s298",
                          technology=TECH, model=MODEL, search=SEARCH)
        path = tmp_path / "cfg.json"
        base.save(path)
        out = tmp_path / "report.json"
        code = main(["search", str(path), "--workspace", str(ws_root),
                     "--out", str(out), "--optimizer", "random",
                     "--iterations", "4", "--quiet"])
        assert code == 0
        report = RunReport.load(out)
        assert report.mode == "search"
        assert report.optimizer == "random"
        assert len(report.rewards) == 4


class TestCampaign:
    def test_campaign_subcommand(self, ws_root, tmp_path, capsys):
        config = StcoConfig(
            mode="campaign", technology=TECH, model=MODEL, search=SEARCH,
            scenarios=(ScenarioConfig(benchmark="s298", agent="random",
                                      iterations=2),))
        path = tmp_path / "cfg.json"
        config.save(path)
        out = tmp_path / "report.json"
        code = main(["campaign", str(path), "--workspace", str(ws_root),
                     "--out", str(out), "--quiet"])
        assert code == 0
        assert RunReport.load(out).mode == "campaign"


class TestCheckpointErrors:
    def test_foreign_schema_checkpoint_is_clean_error(self, ws_root,
                                                      tmp_path, capsys):
        config = StcoConfig(
            mode="campaign", technology=TECH, model=MODEL, search=SEARCH,
            checkpoint=str(tmp_path / "ckpt.json"),
            scenarios=(ScenarioConfig(benchmark="s298", agent="random",
                                      iterations=2),))
        path = tmp_path / "cfg.json"
        config.save(path)
        assert main(["run", str(path), "--workspace", str(ws_root),
                     "--quiet"]) == 0
        ckpt = json.loads((tmp_path / "ckpt.json").read_text())
        ckpt["config_schema"] += 1
        (tmp_path / "ckpt.json").write_text(json.dumps(ckpt))
        assert main(["run", str(path), "--workspace", str(ws_root),
                     "--quiet"]) == 2
        assert "config schema" in capsys.readouterr().err
        # --no-resume is the advertised way out.
        assert main(["run", str(path), "--workspace", str(ws_root),
                     "--no-resume", "--quiet"]) == 0


class TestWorkspaceCommands:
    @pytest.fixture
    def fake_ws(self, tmp_path):
        """A workspace with fabricated artifacts: registry + files only,
        so maintenance commands are tested without any pipeline work."""
        from repro.api import Workspace
        ws = Workspace(tmp_path / "ws")
        (ws.datasets_dir / "d1.pkl").write_bytes(b"x" * 100)
        (ws.models_dir / "m1.npz").write_bytes(b"y" * 200)
        orphan_dir = ws.engine_dir / "libraries"
        orphan_dir.mkdir()
        (orphan_dir / "e1.pkl").write_bytes(b"z" * 50)
        ws._register("k-d1", {"kind": "dataset", "technology": "ltps",
                              "path": "d1.pkl"})
        ws._register("k-m1", {"kind": "model", "technology": "ltps",
                              "path": "m1.npz"})
        return ws

    def test_list_shows_artifacts(self, fake_ws, capsys):
        assert main(["workspace", "list", str(fake_ws.root)]) == 0
        out = capsys.readouterr().out
        assert "d1.pkl" in out and "m1.npz" in out

    def test_stats_prints_json(self, fake_ws, capsys):
        assert main(["workspace", "stats", str(fake_ws.root)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["artifacts"] == {"dataset": 1, "model": 1}

    def test_gc_requires_age_or_all(self, fake_ws, capsys):
        assert main(["workspace", "gc", str(fake_ws.root)]) == 2
        assert "--older-than" in capsys.readouterr().err

    def test_gc_rejects_unknown_kind(self, fake_ws, capsys):
        assert main(["workspace", "gc", str(fake_ws.root), "--all",
                     "--kinds", "model,reports"]) == 2
        assert "reports" in capsys.readouterr().err

    def test_gc_dry_run_removes_nothing(self, fake_ws, capsys):
        assert main(["workspace", "gc", str(fake_ws.root), "--all",
                     "--dry-run"]) == 0
        assert "would remove 3" in capsys.readouterr().out
        assert (fake_ws.datasets_dir / "d1.pkl").exists()
        assert (fake_ws.models_dir / "m1.npz").exists()

    def test_gc_all_reclaims_files_and_registry(self, fake_ws, capsys):
        assert main(["workspace", "gc", str(fake_ws.root), "--all"]) == 0
        out = capsys.readouterr().out
        assert "removed 3" in out
        assert not (fake_ws.datasets_dir / "d1.pkl").exists()
        assert not (fake_ws.models_dir / "m1.npz").exists()
        assert not list(fake_ws.engine_dir.rglob("*.pkl"))
        assert fake_ws.registry() == {}

    def test_gc_reclaims_terminal_serve_jobs_only(self, fake_ws,
                                                  capsys):
        jobs_dir = fake_ws.root / "serve" / "jobs"
        jobs_dir.mkdir(parents=True)
        (jobs_dir / "aaa.json").write_text(
            json.dumps({"job_id": "aaa", "state": "succeeded",
                        "finished_s": 1.0}))
        (jobs_dir / "aaa.events.jsonl").write_text('{"round": 1}\n')
        (jobs_dir / "bbb.json").write_text(
            json.dumps({"job_id": "bbb", "state": "running"}))
        assert main(["workspace", "gc", str(fake_ws.root), "--all",
                     "--kinds", "job"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert not (jobs_dir / "aaa.json").exists()
        assert not (jobs_dir / "aaa.events.jsonl").exists()
        # The interrupted job is crash-recovery state: never collected.
        assert (jobs_dir / "bbb.json").exists()

    def test_gc_registry_keeps_concurrent_registrations(self, fake_ws):
        # Simulate a live server registering a new artifact after gc
        # snapshotted the registry: the rewrite must not clobber it.
        real_registry = fake_ws.registry

        def racing_registry():
            registry = real_registry()
            if not getattr(racing_registry, "raced", False):
                racing_registry.raced = True
                (fake_ws.models_dir / "m2.npz").write_bytes(b"z" * 10)
                fake_ws._register("k-m2", {"kind": "model",
                                           "technology": "ltps",
                                           "path": "m2.npz"})
            return registry

        fake_ws.registry = racing_registry
        fake_ws.gc(kinds=("dataset", "model"))
        fake_ws.registry = real_registry
        # The snapshot-era artifacts went; the concurrently registered
        # model survived — entry *and* file (the orphan scan must use
        # the fresh registry, not the stale snapshot).
        assert "k-m2" in fake_ws.registry()
        assert (fake_ws.models_dir / "m2.npz").exists()
        assert "k-d1" not in fake_ws.registry()
        assert "k-m1" not in fake_ws.registry()

    def test_gc_respects_age_and_kinds(self, fake_ws, capsys):
        # Everything is seconds old: an hour-long horizon keeps it all.
        assert main(["workspace", "gc", str(fake_ws.root),
                     "--older-than", "3600"]) == 0
        assert "removed 0" in capsys.readouterr().out
        # Kind filtering: only the model goes.
        assert main(["workspace", "gc", str(fake_ws.root), "--all",
                     "--kinds", "model"]) == 0
        assert not (fake_ws.models_dir / "m1.npz").exists()
        assert (fake_ws.datasets_dir / "d1.pkl").exists()
        assert "k-d1" in fake_ws.registry()


class TestSubmitErrors:
    def test_unreachable_server_is_clean_error(self, tmp_path, capsys):
        config = StcoConfig(mode="search")
        path = tmp_path / "cfg.json"
        config.save(path)
        # Port 1 is never listening; urllib fails fast with ECONNREFUSED.
        assert main(["submit", str(path), "--url",
                     "http://127.0.0.1:1"]) == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_missing_config_is_clean_error(self, capsys):
        # The file is validated before any network traffic happens.
        assert main(["submit", "/nonexistent/cfg.json", "--url",
                     "http://127.0.0.1:1"]) == 2
        assert "cannot read config" in capsys.readouterr().err


class TestMetricsGrep:
    """``repro metrics --grep`` matches the *rendered* exposition."""

    TEXT = "\n".join([
        'repro_serve_jobs_total{outcome="succeeded",shard="a"} 3',
        'repro_serve_jobs_total{outcome="failed",shard="b"} 1',
        "repro_predict_drift 0.2",
    ])

    def test_bare_key_value_matches_rendered_labels(self):
        from repro.api.cli import _metrics_grep
        kept = _metrics_grep("shard=a", self.TEXT).splitlines()
        assert kept == [
            'repro_serve_jobs_total{outcome="succeeded",shard="a"} 3']

    def test_plain_substring_still_matches(self):
        from repro.api.cli import _metrics_grep
        assert _metrics_grep("drift", self.TEXT) == \
            "repro_predict_drift 0.2"

    def test_quoted_pattern_is_not_rewritten(self):
        from repro.api.cli import _metrics_grep
        # Already-rendered patterns pass through as exact substrings.
        kept = _metrics_grep('outcome="failed"', self.TEXT).splitlines()
        assert kept == [
            'repro_serve_jobs_total{outcome="failed",shard="b"} 1']
        assert _metrics_grep('shard="z"', self.TEXT) == ""


class TestReport:
    def test_report_pretty_prints(self, tmp_path, capsys):
        path = RunReport(mode="search", design="s298",
                         best_corner=(1.0, 0.0, 1.0),
                         best_reward=8.5).save(tmp_path / "r.json")
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "best reward" in out and "8.5" in out

    def test_report_missing_file(self, capsys):
        assert main(["report", "/nonexistent/r.json"]) == 2
