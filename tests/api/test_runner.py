"""Runner: dispatch, warm-workspace reuse, legacy equivalence."""

import warnings
from dataclasses import replace

import pytest

from repro.api import (ConfigError, RunReport, ScenarioConfig,
                       SearchConfig, StcoConfig, Workspace, run)
from tests.api.conftest import MODEL, SEARCH, TECH


class TestSearchMode:
    def test_search_runs_and_reports(self, base_config, workspace):
        report = run(base_config, workspace)
        assert report.mode == "search"
        assert report.design == "s298"
        assert len(report.best_corner) == 3
        assert report.evaluations >= 1
        assert report.rewards and len(report.rewards) == 6
        assert report.pareto_front
        assert report.hypervolume >= 0.0
        assert report.runtime["total_s"] > 0.0
        assert report.config == base_config.to_dict()

    def test_report_json_loadable(self, base_config, workspace,
                                  tmp_path):
        report = run(base_config, workspace)
        path = report.save(tmp_path / "report.json")
        assert RunReport.load(path).best_reward == report.best_reward

    def test_warm_workspace_skips_all_work(self, base_config, workspace):
        run(base_config, workspace)
        fresh = Workspace(workspace.root)    # new process simulation
        report = run(base_config, fresh)
        ws = report.cache_stats["workspace"]
        assert ws["models_trained"] == 0
        assert ws["models_loaded"] == 1
        assert report.characterizations == 0
        assert report.engine_misses == 0

    def test_config_accepts_dict_and_path(self, base_config, workspace,
                                          tmp_path):
        by_obj = run(base_config, workspace)
        by_dict = run(base_config.to_dict(), workspace)
        path = base_config.save(tmp_path / "cfg.json")
        by_path = run(path, workspace)
        assert by_obj.best_reward == by_dict.best_reward \
            == by_path.best_reward

    def test_bad_config_type(self):
        with pytest.raises(ConfigError, match="expects"):
            run(42)


class TestLegacyEquivalence:
    def test_fast_mode_matches_faststco_bitwise(self, base_config,
                                                workspace):
        from repro.eda import build_benchmark
        from repro.stco import DesignSpace, FastSTCO
        config = replace(base_config, mode="fast")
        report = run(config, workspace)
        model = workspace.model(TECH, MODEL)
        dataset = workspace.dataset(TECH)
        space = DesignSpace(vdd_scales=SEARCH.vdd_scales,
                            vth_shifts=SEARCH.vth_shifts,
                            cox_scales=SEARCH.cox_scales)
        with pytest.warns(DeprecationWarning, match="FastSTCO"):
            stco = FastSTCO(build_benchmark("s298"), model, dataset,
                            cells=TECH.cells,
                            char_config=TECH.char_config(),
                            space=space, agent_seed=SEARCH.seed)
        outcome = stco.run(iterations=SEARCH.iterations)
        assert tuple(report.best_corner) == tuple(outcome.best_corner)
        assert report.best_reward == outcome.best_reward
        assert report.rewards == [float(r)
                                  for r in outcome.history_rewards]

    def test_traditional_mode_uses_spice(self, workspace, base_config):
        config = replace(
            base_config, mode="traditional",
            search=SearchConfig(iterations=2, vdd_scales=(1.0,),
                                vth_shifts=(0.0,), cox_scales=(1.0,)))
        report = run(config, workspace)
        assert report.best_corner == (1.0, 0.0, 1.0)


class TestPortfolioMode:
    def test_members_race(self, base_config, workspace):
        config = replace(
            base_config, mode="portfolio",
            search=replace(SEARCH, iterations=8,
                           members=("anneal", "random")))
        report = run(config, workspace)
        assert report.optimizer == "portfolio"
        assert report.evaluations >= 1


class TestCampaignMode:
    def test_campaign_runs_and_resumes(self, base_config, workspace):
        config = replace(
            base_config, mode="campaign", checkpoint="ckpt_runner.json",
            scenarios=(ScenarioConfig(benchmark="s298",
                                      agent="qlearning", iterations=3),
                       ScenarioConfig(benchmark="s298", agent="random",
                                      iterations=3)))
        report = run(config, workspace)
        assert report.mode == "campaign"
        assert len(report.scenarios) == 2
        assert report.resumed_scenarios == 0
        assert (workspace.root / "ckpt_runner.json").exists()
        again = run(config, workspace)
        assert again.resumed_scenarios == 2
        assert again.best_reward == report.best_reward
        # The memoized engine carries lifetime counters; the report must
        # show this run's deltas (a fully-resumed run does no work).
        assert again.characterizations == 0
        assert again.engine_misses == 0

    def test_campaign_reports_fronts_per_benchmark(self, base_config,
                                                   workspace):
        config = replace(
            base_config, mode="campaign",
            scenarios=(ScenarioConfig(benchmark="s298",
                                      agent="qlearning", iterations=3),))
        report = run(config, workspace)
        assert "s298" in report.pareto_fronts

    def test_internal_campaign_emits_no_deprecation(self, base_config,
                                                    workspace):
        config = replace(
            base_config, mode="campaign",
            scenarios=(ScenarioConfig(benchmark="s298", agent="random",
                                      iterations=2),))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run(config, workspace)


class TestTraceBlock:
    def test_report_carries_the_run_span_tree(self, base_config,
                                              workspace):
        report = run(base_config, workspace)
        trace = report.trace
        assert trace["name"] == "run"
        assert trace["attrs"]["mode"] == "search"
        assert trace["attrs"]["benchmark"] == "s298"
        assert trace["wall_s"] > 0.0
        names = [c["name"] for c in trace.get("children", [])]
        # The search driver's per-round spans nest under the run root.
        assert "search.round" in names
        rounds = [c for c in trace["children"]
                  if c["name"] == "search.round"]
        inner = {g["name"] for r in rounds
                 for g in r.get("children", [])}
        assert "optimizer.ask" in inner
        # The whole tree must serialize with the report.
        assert RunReport.from_json(report.to_json()).trace == trace

    def test_disabled_tracing_leaves_the_block_empty(self, base_config,
                                                     workspace):
        from repro.obs import disabled
        with disabled():
            report = run(base_config, workspace)
        assert report.trace == {}
