"""Tests for the Poisson solver, charge physics, and charge-sheet IV."""

import numpy as np
import pytest

from repro.tcad import (ChargeModel, ChargeSheetIV, PlanarTFT, PoissonSolver,
                        Region, TCADSimulator, material, tdt_gamma,
                        tdt_mobility)
from repro.tcad.physics import srh_recombination


@pytest.fixture(scope="module")
def ltps_device():
    return PlanarTFT(channel_material="ltps")


@pytest.fixture(scope="module")
def ltps_solver(ltps_device):
    return PoissonSolver(ltps_device.mesh())


class TestChargeModel:
    def test_rejects_metal(self):
        with pytest.raises(ValueError):
            ChargeModel(material("al"))

    def test_np_product_at_equilibrium(self):
        model = ChargeModel(material("ltps"))
        psi = np.linspace(-0.4, 0.4, 9)
        np.testing.assert_allclose(model.n(psi) * model.p(psi),
                                   model.ni ** 2, rtol=1e-9)

    def test_tail_occupation_bounded(self):
        model = ChargeModel(material("igzo"))
        psi = np.linspace(-3, 5, 50)
        nt = model.n_tail(psi)
        assert np.all(nt >= 0)
        assert np.all(nt <= model.mat.tail_nt)

    def test_drho_matches_finite_difference(self):
        model = ChargeModel(material("cnt"))
        psi = np.linspace(-0.5, 1.0, 11)
        h = 1e-7
        fd = (model.rho(psi + h, 1e21) - model.rho(psi - h, 1e21)) / (2 * h)
        np.testing.assert_allclose(model.drho_dpsi(psi), fd, rtol=1e-4)

    def test_builtin_potential_sign(self):
        model = ChargeModel(material("ltps"))
        assert model.builtin_potential(1e25) > 0
        assert model.builtin_potential(-1e25) < 0

    def test_neutrality_at_builtin(self):
        """rho = 0 at psi = builtin potential (ignoring tail traps for a
        low-trap check via direct n/p balance)."""
        model = ChargeModel(material("cnt"))
        nd = 1e24
        psi_b = float(model.builtin_potential(nd))
        n, p = model.n(psi_b), model.p(psi_b)
        np.testing.assert_allclose(n - p, nd, rtol=1e-9)

    def test_srh_zero_at_equilibrium(self):
        ni = 1e16
        assert srh_recombination(ni, ni, ni, 1e-7) == pytest.approx(0.0)

    def test_srh_positive_above_equilibrium(self):
        assert srh_recombination(1e20, 1e20, 1e16, 1e-7) > 0


class TestTDTMobility:
    def test_gamma_increases_with_tail_energy(self):
        assert tdt_gamma(material("igzo")) > tdt_gamma(material("ltps"))

    def test_mobility_below_band(self):
        mat = material("igzo")
        mu = tdt_mobility(mat, 1e-4)  # small sheet charge
        assert mu < mat.mu_band

    def test_mobility_monotone_in_charge(self):
        mat = material("cnt")
        qs = np.logspace(-6, -2, 10)
        mu = tdt_mobility(mat, qs)
        assert np.all(np.diff(mu) >= 0)


class TestPoissonSolver:
    def test_converges_across_bias(self, ltps_solver):
        for vg, vd in [(-1, 0.5), (0, 0), (2, 1), (4, 3)]:
            sol = ltps_solver.solve(vg, vd)
            assert sol.converged, (vg, vd)

    def test_dirichlet_values_respected(self, ltps_device, ltps_solver):
        mesh = ltps_solver.mesh
        sol = ltps_solver.solve(vg=2.0, vd=1.0)
        gate = mesh.region == Region.GATE
        expected = 2.0 - ltps_solver._phi_ms_offset["gate"]
        np.testing.assert_allclose(sol.psi[gate], expected)

    def test_drain_contact_offset_by_vd(self, ltps_solver):
        mesh = ltps_solver.mesh
        src_ids = [i for i, k in enumerate(mesh.dirichlet_kind)
                   if k == "source"]
        drn_ids = [i for i, k in enumerate(mesh.dirichlet_kind)
                   if k == "drain"]
        sol = ltps_solver.solve(vg=1.0, vd=1.5)
        diff = sol.psi[drn_ids].mean() - sol.psi[src_ids].mean()
        assert diff == pytest.approx(1.5, abs=1e-9)

    def test_gate_bias_accumulates_channel(self, ltps_solver):
        mesh = ltps_solver.mesh
        iface = (mesh.region == Region.CHANNEL) & (
            mesh.node_xy[:, 1] == mesh.ys[mesh.ny - mesh.meta.get("", 0) - 1]
            if False else mesh.region == Region.CHANNEL)
        sol_on = ltps_solver.solve(3.0, 0.5)
        sol_off = ltps_solver.solve(-1.0, 0.5)
        assert sol_on.n[iface].max() > 1e4 * sol_off.n[iface].max()

    def test_warm_start_matches_cold(self, ltps_solver):
        cold = ltps_solver.solve(2.5, 1.0)
        warm = ltps_solver.solve(2.5, 1.0,
                                 psi0=ltps_solver.solve(2.0, 1.0).psi)
        np.testing.assert_allclose(cold.psi, warm.psi, atol=1e-6)

    def test_solve_ramped(self, ltps_solver):
        sol = ltps_solver.solve_ramped(4.0, 3.0, steps=3)
        assert sol.converged
        assert sol.vg == pytest.approx(4.0)

    def test_zero_bias_near_neutral(self):
        """At vg=vd=0 with an Al gate on LTPS the channel stays within a
        volt of its neutral level (no contact injection)."""
        dev = PlanarTFT(channel_material="ltps")
        solver = PoissonSolver(dev.mesh())
        sol = solver.solve(0.0, 0.0)
        mesh = solver.mesh
        ch = mesh.region == Region.CHANNEL
        neutral = float(
            solver._channel_model.builtin_potential(1e21))
        assert np.all(np.abs(sol.psi[ch] - neutral) < 1.0)

    @pytest.mark.parametrize("mat", ["cnt", "igzo", "a-si"])
    def test_other_materials_converge(self, mat):
        dev = PlanarTFT(channel_material=mat)
        sol = PoissonSolver(dev.mesh()).solve(2.0, 1.0)
        assert sol.converged


class TestChargeSheetIV:
    def test_sheet_charge_increases_with_vg(self, ltps_device):
        engine = ChargeSheetIV(ltps_device)
        qs = [engine.sheet_charge(vg, 0.0) for vg in (-1.0, 1.0, 3.0)]
        assert qs[0] < qs[1] < qs[2]

    def test_sheet_charge_decreases_with_vch(self, ltps_device):
        engine = ChargeSheetIV(ltps_device)
        q0 = engine.sheet_charge(3.0, 0.0)
        q1 = engine.sheet_charge(3.0, 1.5)
        assert q1 < q0

    def test_current_zero_at_zero_vd(self, ltps_device):
        engine = ChargeSheetIV(ltps_device)
        assert engine.ids(3.0, 0.0) == pytest.approx(0.0, abs=1e-15)

    def test_transfer_monotone(self, ltps_device):
        engine = ChargeSheetIV(ltps_device)
        ids = [engine.ids(vg, 2.0) for vg in (-1, 0, 1, 2, 3)]
        assert all(b > a for a, b in zip(ids, ids[1:]))

    def test_on_off_ratio(self, ltps_device):
        engine = ChargeSheetIV(ltps_device)
        on = engine.ids(4.0, 2.0)
        off = engine.ids(-1.0, 2.0)
        assert on / max(off, 1e-30) > 1e6

    def test_output_saturates(self, ltps_device):
        engine = ChargeSheetIV(ltps_device)
        res = engine.iv_surface([3.0], np.linspace(0.2, 4.0, 8))
        ids = res.ids[0]
        early_slope = (ids[1] - ids[0]) / (res.vds[1] - res.vds[0])
        late_slope = (ids[-1] - ids[-2]) / (res.vds[-1] - res.vds[-2])
        assert late_slope < early_slope / 3

    def test_surface_matches_pointwise(self, ltps_device):
        engine = ChargeSheetIV(ltps_device)
        res = engine.iv_surface([2.0, 3.0], [0.5, 1.5])
        direct = engine.ids(3.0, 1.5)
        assert res.at(3.0, 1.5) == pytest.approx(direct, rel=0.05)

    def test_width_scaling(self):
        d1 = PlanarTFT(channel_material="ltps", w=50e-6)
        d2 = PlanarTFT(channel_material="ltps", w=100e-6)
        i1 = ChargeSheetIV(d1).ids(3.0, 1.0)
        i2 = ChargeSheetIV(d2).ids(3.0, 1.0)
        assert i2 == pytest.approx(2 * i1, rel=1e-6)


class TestSimulatorFacade:
    def test_simulate_point(self):
        sim = TCADSimulator()
        sol = sim.simulate_point(PlanarTFT(channel_material="ltps"), 2.0, 1.0)
        assert sol.poisson.converged
        assert sol.ids > 0
        assert sim.timing.total("poisson") > 0
        assert sim.timing.total("iv") > 0

    def test_simulate_iv_shape(self):
        sim = TCADSimulator()
        res = sim.simulate_iv(PlanarTFT(channel_material="ltps"),
                              [0.0, 2.0], [0.5, 1.0, 2.0])
        assert res.ids.shape == (2, 3)
