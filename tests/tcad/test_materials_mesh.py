"""Tests for the material database and device meshing."""

import numpy as np
import pytest

from repro.tcad import (MATERIALS, Material, PlanarTFT, Region, material,
                        material_names)
from repro.tcad.materials import INSULATOR, METAL, SEMICONDUCTOR


class TestMaterials:
    def test_lookup(self):
        assert material("igzo").kind == SEMICONDUCTOR
        assert material("sio2").kind == INSULATOR
        assert material("al").kind == METAL

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            material("unobtainium")

    def test_indices_unique_and_dense(self):
        indices = sorted(m.index for m in MATERIALS.values())
        assert indices == list(range(len(MATERIALS)))

    def test_names_in_index_order(self):
        names = material_names()
        assert [material(n).index for n in names] == list(range(len(names)))

    def test_intrinsic_density_wide_gap_small(self):
        """IGZO (3.1 eV) must have far fewer intrinsic carriers than CNT
        (0.6 eV)."""
        assert material("igzo").ni < material("cnt").ni * 1e-10

    def test_metal_ni_zero(self):
        assert material("al").ni == 0.0

    def test_param_vector_finite_and_stable_length(self):
        lengths = {len(m.param_vector()) for m in MATERIALS.values()}
        assert len(lengths) == 1
        for m in MATERIALS.values():
            assert np.all(np.isfinite(m.param_vector()))


class TestPlanarTFT:
    def test_rejects_non_semiconductor_channel(self):
        with pytest.raises(ValueError):
            PlanarTFT(channel_material="sio2")

    def test_rejects_nonpositive_geometry(self):
        with pytest.raises(ValueError):
            PlanarTFT(l_channel=0.0)

    def test_polarity_from_doping(self):
        assert PlanarTFT(contact_doping=1e25).polarity == "n"
        assert PlanarTFT(contact_doping=-1e25).polarity == "p"

    def test_cox(self):
        dev = PlanarTFT(oxide_material="sio2", t_ox=100e-9)
        # eps0 * 3.9 / 100nm ~ 3.45e-4 F/m^2
        assert dev.cox == pytest.approx(3.45e-4, rel=0.01)


class TestMesh:
    @pytest.fixture
    def mesh(self):
        return PlanarTFT().mesh()

    def test_node_count(self, mesh):
        assert mesh.num_nodes == mesh.nx * mesh.ny

    def test_all_regions_present(self, mesh):
        present = set(mesh.region)
        assert present == {Region.GATE, Region.OXIDE, Region.CHANNEL,
                           Region.SOURCE, Region.DRAIN}

    def test_gate_nodes_dirichlet(self, mesh):
        gate = mesh.region == Region.GATE
        assert mesh.dirichlet_mask[gate].all()

    def test_source_drain_contacts_on_top(self, mesh):
        top = mesh.node_xy[:, 1] == mesh.ys[-1]
        for kind in ("source", "drain"):
            ids = [i for i, k in enumerate(mesh.dirichlet_kind) if k == kind]
            assert ids, kind
            assert all(top[i] for i in ids)

    def test_channel_not_dirichlet(self, mesh):
        ch = mesh.region == Region.CHANNEL
        assert not mesh.dirichlet_mask[ch].any()

    def test_doping_in_contacts_only(self, mesh):
        contacts = np.isin(mesh.region, [Region.SOURCE, Region.DRAIN])
        assert np.all(mesh.doping[contacts] == 1e25)
        channel = mesh.region == Region.CHANNEL
        assert np.all(mesh.doping[channel] == 1e21)

    def test_edges_bidirectional(self, mesh):
        pairs = set(map(tuple, mesh.edges.T))
        for a, b in list(pairs)[:200]:
            assert (b, a) in pairs

    def test_edge_vectors_match_coords(self, mesh):
        vec = mesh.edge_vectors()
        src, dst = mesh.edges
        delta = mesh.node_xy[dst] - mesh.node_xy[src]
        np.testing.assert_allclose(vec[:, :2], delta)
        np.testing.assert_allclose(vec[:, 2],
                                   np.linalg.norm(delta, axis=1))

    def test_semiconductor_mask(self, mesh):
        mask = mesh.semiconductor_mask()
        assert mask.sum() == np.isin(
            mesh.region, [Region.CHANNEL, Region.SOURCE, Region.DRAIN]).sum()

    def test_geometry_spans(self, mesh):
        meta = mesh.meta
        total_l = meta["l_channel"] + 2 * meta["l_overlap"]
        total_t = meta["t_gate"] + meta["t_ox"] + meta["t_semi"]
        assert mesh.xs[-1] == pytest.approx(total_l)
        assert mesh.ys[-1] == pytest.approx(total_t)
