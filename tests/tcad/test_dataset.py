"""Tests for the device sampler and TCAD dataset builder."""

import numpy as np
import pytest

from repro.tcad import (DeviceSampler, SamplerRanges, TCADDatasetBuilder,
                        denormalize_log_current, normalize_log_current)


class TestSampler:
    def test_deterministic(self):
        s1 = DeviceSampler(seed=5)
        s2 = DeviceSampler(seed=5)
        d1 = s1.sample_device()
        d2 = s2.sample_device()
        assert d1 == d2

    def test_ranges_respected(self):
        r = SamplerRanges()
        sampler = DeviceSampler(r, seed=0)
        for device, vg, vd in sampler.sample(30):
            assert r.l_channel[0] <= device.l_channel <= r.l_channel[1]
            assert r.t_ox[0] <= device.t_ox <= r.t_ox[1]
            assert device.channel_material in r.channel_materials
            assert r.vg[0] <= vg <= r.vg[1]
            assert r.vd[0] <= vd <= r.vd[1]

    def test_log_uniform_doping_spread(self):
        sampler = DeviceSampler(seed=1)
        dops = [sampler.sample_device().contact_doping for _ in range(50)]
        assert min(dops) < 1e25 < max(dops)

    def test_shifted_ranges_widen(self):
        r = SamplerRanges()
        s = r.shifted(1.2)
        assert s.l_channel[0] < r.l_channel[0]
        assert s.l_channel[1] > r.l_channel[1]
        assert s.vg == r.vg


class TestLogCurrentNormalisation:
    def test_roundtrip(self):
        for i in (1e-15, 1e-9, 1e-4):
            y = normalize_log_current(i)
            assert denormalize_log_current(y) == pytest.approx(i, rel=1e-6)

    def test_range_compact(self):
        ys = [normalize_log_current(i) for i in (1e-18, 1e-12, 1e-6, 1e-3)]
        assert all(-1.5 < y < 1.5 for y in ys)


class TestDatasetBuilder:
    @pytest.fixture(scope="class")
    def dataset(self):
        builder = TCADDatasetBuilder(seed=3)
        return builder.build(n_train=4, n_val=2, n_test=2, n_unseen=2)

    def test_split_sizes(self, dataset):
        assert dataset.sizes() == {"train": 4, "val": 2, "test": 2,
                                   "unseen": 2}

    def test_poisson_targets_node_level(self, dataset):
        for g in dataset.poisson["train"]:
            assert g.y.shape == (g.num_nodes, 1)
            assert np.all(np.isfinite(g.y))
            assert np.abs(g.y).max() < 3.0  # normalised potential

    def test_iv_targets_graph_level(self, dataset):
        for g in dataset.iv["train"]:
            assert g.y.shape == (1,)
            assert g.meta["target_level"] == "graph"
            assert g.meta["ids"] >= 0

    def test_iv_has_extra_potential_feature(self, dataset):
        p = dataset.poisson["train"][0]
        i = dataset.iv["train"][0]
        assert i.num_node_features == p.num_node_features + 1

    def test_edge_features_present(self, dataset):
        g = dataset.poisson["train"][0]
        assert g.num_edge_features == 3

    def test_deterministic_rebuild(self):
        a = TCADDatasetBuilder(seed=9).build(2, 1, 1)
        b = TCADDatasetBuilder(seed=9).build(2, 1, 1)
        np.testing.assert_allclose(a.poisson["train"][0].x,
                                   b.poisson["train"][0].x)
        np.testing.assert_allclose(a.iv["train"][0].y, b.iv["train"][0].y)

    def test_unseen_uses_widened_ranges(self, dataset):
        """Unseen devices can exceed the nominal geometry ranges."""
        # This is distributional; just assert the split exists and differs.
        assert len(dataset.poisson["unseen"]) == 2
