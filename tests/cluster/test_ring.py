"""Consistent-hash ring: cross-process stability and remap economics.

The ring is the cluster's only coordination-free agreement mechanism:
every router, shard and test must compute byte-identical assignments.
The golden values here were produced once and are frozen — if they
ever change, deployed clusters would disagree about key ownership
mid-flight, so a failure in this file is a wire-compatibility break,
not a test to update casually.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.api.config import StcoConfig
from repro.cluster.ring import HashRing, _h64, route_key
from tests.serve.conftest import make_config

KEYS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"]


class TestGoldenStability:
    """Frozen assignments: any drift is a cross-version ring break."""

    def test_h64_golden(self):
        assert _h64("key:alpha") == 12885579678385920263
        assert _h64("shard:a:0") == 6743554134973859567

    def test_two_shard_assignment_golden(self):
        ring = HashRing({"shard-0": 1.0, "shard-1": 1.0})
        assert {k: ring.shard_for(k) for k in KEYS} == {
            "alpha": "shard-0", "bravo": "shard-0",
            "charlie": "shard-0", "delta": "shard-0",
            "echo": "shard-0", "foxtrot": "shard-1"}

    def test_three_shard_assignment_golden(self):
        ring = HashRing({"a": 1.0, "b": 1.0, "c": 1.0}, vnodes=32)
        assert {k: ring.shard_for(k) for k in KEYS} == {
            "alpha": "b", "bravo": "b", "charlie": "b",
            "delta": "c", "echo": "a", "foxtrot": "a"}

    def test_assignment_identical_across_processes(self):
        """A subprocess with a different ``PYTHONHASHSEED`` must agree
        byte-for-byte — the builtin ``hash`` would not."""
        script = (
            "import json, sys\n"
            "from repro.cluster.ring import HashRing\n"
            "keys = json.loads(sys.argv[1])\n"
            "ring = HashRing({'a': 1.0, 'b': 1.0, 'c': 2.0}, vnodes=48)\n"
            "print(json.dumps({k: ring.shard_for(k) for k in keys}))\n")
        env = dict(os.environ, PYTHONHASHSEED="12345")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep \
            + env.get("PYTHONPATH", "")
        many = [f"k{i}" for i in range(200)]
        out = subprocess.run(
            [sys.executable, "-c", script, json.dumps(many)],
            capture_output=True, text=True, env=env, check=True)
        local = HashRing({"a": 1.0, "b": 1.0, "c": 2.0}, vnodes=48)
        assert json.loads(out.stdout) == {k: local.shard_for(k)
                                          for k in many}

    def test_insertion_order_is_irrelevant(self):
        a = HashRing({"x": 1.0, "y": 1.0, "z": 1.0})
        b = HashRing({"z": 1.0, "x": 1.0, "y": 1.0})
        assert all(a.shard_for(f"k{i}") == b.shard_for(f"k{i}")
                   for i in range(100))


class TestRemap:
    """The consistent-hashing contract: growth remaps ~1/N, never all."""

    def test_adding_a_shard_remaps_about_one_over_n(self):
        keys = [f"key-{i}" for i in range(300)]
        ring = HashRing({"a": 1.0, "b": 1.0})
        before = {k: ring.shard_for(k) for k in keys}
        ring.add("c")
        after = {k: ring.shard_for(k) for k in keys}
        moved = [k for k in keys if before[k] != after[k]]
        # Expected fraction is 1/3 (the share the new member claims);
        # allow generous slack for a 300-key sample.
        assert 0.15 <= len(moved) / len(keys) <= 0.55
        # Every mover lands on the *new* member — keys never shuffle
        # between survivors.
        assert all(after[k] == "c" for k in moved)

    def test_removing_the_shard_restores_the_old_map(self):
        keys = [f"key-{i}" for i in range(300)]
        ring = HashRing({"a": 1.0, "b": 1.0})
        before = {k: ring.shard_for(k) for k in keys}
        ring.add("c")
        ring.remove("c")
        assert {k: ring.shard_for(k) for k in keys} == before

    def test_spread_is_roughly_even(self):
        ring = HashRing({"a": 1.0, "b": 1.0})
        spread = ring.spread(f"k{i}" for i in range(400))
        assert set(spread) == {"a", "b"}
        assert all(400 * 0.2 <= n <= 400 * 0.8
                   for n in spread.values())

    def test_weight_scales_key_share(self):
        ring = HashRing({"big": 2.0, "small": 1.0}, vnodes=50)
        assert ring.stats()["points"] == 150
        spread = ring.spread(f"k{i}" for i in range(3000))
        assert 1.5 <= spread["big"] / spread["small"] <= 3.0


class TestRingApi:
    def test_preference_starts_with_the_owner(self):
        ring = HashRing({"a": 1.0, "b": 1.0, "c": 1.0})
        for key in KEYS:
            pref = ring.preference(key)
            assert pref[0] == ring.shard_for(key)
            assert sorted(pref) == ["a", "b", "c"]
        assert len(ring.preference("alpha", count=2)) == 2

    def test_neighbors_exclude_self_and_are_deterministic(self):
        ring = HashRing({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0})
        for name in ring.members:
            neighbors = ring.neighbors(name)
            assert name not in neighbors
            assert sorted(neighbors) == sorted(
                set(ring.members) - {name})
            assert neighbors == ring.neighbors(name)
        assert len(ring.neighbors("a", count=2)) == 2

    def test_membership_protocol(self):
        ring = HashRing()
        assert len(ring) == 0
        ring.add("a")
        ring.add("b", weight=2.0)
        assert "a" in ring and "c" not in ring
        assert ring.members == {"a": 1.0, "b": 2.0}
        ring.remove("a")
        assert ring.members == {"b": 2.0}
        assert ring.shard_for("anything") == "b"

    def test_errors(self):
        with pytest.raises(ValueError, match="no members"):
            HashRing().shard_for("k")
        with pytest.raises(ValueError, match="no members"):
            HashRing().preference("k")
        with pytest.raises(ValueError, match="positive"):
            HashRing({"a": 0.0})
        with pytest.raises(ValueError, match="non-empty"):
            HashRing({"": 1.0})
        with pytest.raises(ValueError, match="vnodes"):
            HashRing({"a": 1.0}, vnodes=0)
        assert HashRing().neighbors("a") == []


class TestRouteKey:
    def test_normalized_spellings_route_identically(self):
        config = make_config(seed=3)
        assert route_key(config) == route_key(config.to_dict())
        assert route_key(config) == route_key(
            StcoConfig.from_dict(config.to_dict()))

    def test_distinct_configs_get_distinct_keys(self):
        assert route_key(make_config(seed=1)) \
            != route_key(make_config(seed=2))

    def test_key_shape(self):
        key = route_key(make_config())
        assert len(key) == 32
        assert int(key, 16) >= 0          # pure hex
