"""Peer cache borrowing: the fetcher tier, the HTTP cache endpoint,
and the headline economics — a corner characterized on shard A is a
disk-cache install on shard B, never a re-characterization.

The economics test is the expensive one: it trains the (tiny) GNN
twice, once per shard workspace, precisely because that is the claim
under test — seeded training produces byte-identical weights, hence
identical builder fingerprints, hence compatible content-addressed
caches across shards that share no disk.
"""

import pickle

import pytest

from repro.api import Workspace
from repro.cluster.peers import (CACHE_TIERS, DIGEST_RE, PeerBorrower,
                                 PeerCacheClient)
from repro.eda import build_benchmark
from repro.engine import EngineConfig, EvaluationEngine, PPAWeights
from repro.engine.cache import EvaluationCache
from repro.serve import ServeClient, ServeService, StcoServer
from repro.stco import DesignSpace
from tests.api.conftest import MODEL, TECH
from tests.serve.conftest import StubRunner


class TestFetcherTier:
    """EvaluationCache's third tier, in isolation."""

    def test_borrowed_hit_installs_through_both_tiers(self, tmp_path):
        calls = []

        def fetcher(digest):
            calls.append(digest)
            return {"value": digest}

        cache = EvaluationCache(4, tmp_path / "tier")
        cache.set_fetcher(fetcher)
        assert cache.get("aaaa1111") == {"value": "aaaa1111"}
        assert calls == ["aaaa1111"]
        assert cache.borrows == 1
        # Paid once: now a local hit, no second network trip.
        assert cache.get("aaaa1111") == {"value": "aaaa1111"}
        assert calls == ["aaaa1111"]
        # And a disk install: a fresh cache over the same directory
        # (engine restart) still never asks the peer.
        fresh = EvaluationCache(4, tmp_path / "tier")
        fresh.set_fetcher(fetcher)
        assert fresh.get("aaaa1111") == {"value": "aaaa1111"}
        assert calls == ["aaaa1111"]
        assert fresh.borrows == 0

    def test_fetcher_miss_counts_and_falls_through(self, tmp_path):
        cache = EvaluationCache(4, tmp_path / "tier")
        cache.set_fetcher(lambda digest: None)
        assert cache.get("bbbb2222", default="sentinel") == "sentinel"
        assert cache.borrow_misses == 1
        assert cache.borrows == 0

    def test_stats_expose_peer_tier_only_when_in_play(self, tmp_path):
        cache = EvaluationCache(4, tmp_path / "tier")
        assert "peer" not in cache.stats()   # single-shard shape intact
        cache.set_fetcher(lambda digest: None)
        assert cache.stats()["peer"] == {"borrows": 0,
                                         "borrow_misses": 0}
        cache.set_fetcher(None)
        assert "peer" not in cache.stats()


class TestCacheEndpoint:
    """``GET /v1/cache/{digest}`` over a real shard HTTP server."""

    @pytest.fixture
    def shard(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        digest = "ab" * 16
        (workspace.engine_dir / "results").mkdir()
        (workspace.engine_dir / "results" / f"{digest}.pkl") \
            .write_bytes(pickle.dumps({"planted": True}))
        service = ServeService(workspace, jobs_dir=tmp_path / "jobs",
                               workers=1, runner=StubRunner(),
                               shard_name="a")
        with StcoServer(service) as server:
            yield service, server, digest
        service.close(timeout=5)

    def test_entry_round_trips_as_opaque_bytes(self, shard):
        service, server, digest = shard
        client = ServeClient(server.url, timeout_s=10)
        tier, data = client.cache_entry(digest)
        assert tier == "results"
        assert pickle.loads(data) == {"planted": True}
        assert client.cache_entry(digest, tier="results")[0] \
            == "results"
        # The other tier does not hold it.
        assert client.cache_entry(digest, tier="libraries") is None
        assert client.cache_entry("cd" * 16) is None

    def test_digest_grammar_guards_the_path(self, shard):
        service, _, _ = shard
        for bad in ("../registry", "..%2fregistry", "AB" * 16,
                    "xyz", "a" * 7, "a" * 65, ""):
            assert service.cache_entry(bad) is None
        assert not DIGEST_RE.match("../../etc/passwd")

    def test_unknown_tier_is_ignored(self, shard):
        service, _, digest = shard
        assert service.cache_entry(digest, tier="nope") is None

    def test_peer_client_first_hit_wins_and_failures_degrade(
            self, shard):
        _, server, digest = shard
        peers = PeerCacheClient([
            ("dead", "http://127.0.0.1:1"),     # refused: skipped
            ("live", server.url)])
        name, data = peers.fetch(digest, "results")
        assert name == "live"
        assert pickle.loads(data) == {"planted": True}
        assert peers.fetch("cd" * 16, "results") is None
        all_dead = PeerCacheClient([("dead", "http://127.0.0.1:1")])
        assert all_dead.fetch(digest, "results") is None


class TestPeerBorrower:
    MEMBERS = {name: {"url": f"http://127.0.0.1:{9000 + i}",
                      "weight": 1.0}
               for i, name in enumerate("abcde")}

    def test_peer_order_is_ring_neighbors_capped(self):
        borrower = PeerBorrower("c", self.MEMBERS, max_peers=2)
        assert len(borrower.peer_names) == 2
        assert "c" not in borrower.peer_names
        assert borrower.peer_names \
            == borrower.ring.neighbors("c", 2)

    def test_lone_shard_has_no_peers_and_no_network(self):
        borrower = PeerBorrower("solo", {"solo": {"url": "", "weight":
                                                  1.0}})
        assert borrower.peer_names == []
        fetch = borrower._fetcher("results")
        assert fetch("ab" * 16) is None      # no clients: instant None
        assert borrower.counters == {"hits": 0, "misses": 0,
                                     "errors": 0}

    def test_corrupt_peer_bytes_count_as_errors(self):
        borrower = PeerBorrower("a", self.MEMBERS, max_peers=1)

        class Stub:
            clients = [("b", None)]

            def fetch(self, digest, tier):
                return "b", b"certainly not a pickle"

        borrower.client = Stub()
        assert borrower._fetcher("results")("ab" * 16) is None
        assert borrower.counters["errors"] == 1

    def test_stats_shape(self):
        borrower = PeerBorrower("a", self.MEMBERS)
        stats = borrower.stats()
        assert stats["shard"] == "a"
        assert stats["peers"] == borrower.peer_names
        assert {"hits", "misses", "errors"} <= set(stats)


# -- the headline economics ------------------------------------------------

CORNERS = DesignSpace(vdd_scales=(0.9, 1.1), vth_shifts=(0.0,),
                      cox_scales=(1.0,)).points()


@pytest.fixture(scope="module")
def netlist():
    return build_benchmark("s298")


@pytest.fixture(scope="module")
def shard_a(tmp_path_factory, netlist):
    """Shard A: real workspace, real engine, corners evaluated once,
    disk cache served over real HTTP."""
    root = tmp_path_factory.mktemp("peer_shard_a")
    workspace = Workspace(root / "ws")
    engine = workspace.engine(TECH, MODEL)
    records = engine.evaluate_many(netlist, CORNERS, PPAWeights())
    assert engine.characterizations == len(CORNERS)
    service = ServeService(workspace, jobs_dir=root / "jobs",
                           workers=1, runner=StubRunner(),
                           shard_name="a")
    server = StcoServer(service).start()
    yield {"workspace": workspace, "engine": engine,
           "records": records, "url": server.url}
    server.close()
    service.close(timeout=5)


class TestBorrowEconomics:
    def test_characterize_once_cluster_wide(self, shard_a, netlist,
                                            tmp_path):
        """Shard B, fresh disk, same config: everything is borrowed —
        zero characterizations, zero flow evaluations — and the borrow
        is a durable disk-cache install."""
        ws_b = Workspace(tmp_path / "b" / "ws")
        service_b = ServeService(ws_b, jobs_dir=tmp_path / "b" / "jobs",
                                 workers=1, runner=StubRunner(),
                                 shard_name="b")
        try:
            wired = service_b.configure_peers({
                "a": {"url": shard_a["url"], "weight": 1.0},
                "b": {"url": "http://unused.invalid", "weight": 1.0}})
            assert wired["peers"] == ["a"]

            # Seeded training ⇒ the same fingerprint as shard A; this
            # identity is what makes the caches compatible at all.
            engine_b = ws_b.engine(TECH, MODEL)
            assert engine_b.builder_fingerprint() \
                == shard_a["engine"].builder_fingerprint()

            records = engine_b.evaluate_many(netlist, CORNERS,
                                             PPAWeights())
            assert engine_b.characterizations == 0
            assert engine_b.flow_evaluations == 0
            assert engine_b.result_cache.borrows == len(CORNERS)
            assert [r.reward for r in records] \
                == [r.reward for r in shard_a["records"]]
            assert engine_b.result_cache.stats()["peer"]["borrows"] \
                == len(CORNERS)
            assert service_b.health()["peers"]["hits"] >= len(CORNERS)

            # Disk-cache install: a fresh engine over shard B's own
            # directory — no peers configured — is already warm.
            engine_c = EvaluationEngine(
                engine_b.builder,
                EngineConfig(cache_dir=ws_b.engine_dir))
            again = engine_c.evaluate_many(netlist, CORNERS,
                                           PPAWeights())
            assert engine_c.characterizations == 0
            assert engine_c.flow_evaluations == 0
            assert engine_c.result_cache.borrows == 0
            assert [r.reward for r in again] \
                == [r.reward for r in records]
        finally:
            service_b.close(timeout=5)

    def test_tiers_constant_matches_engine_layout(self, shard_a):
        engine_dir = shard_a["workspace"].engine_dir
        for tier in CACHE_TIERS:
            assert (engine_dir / tier).is_dir()
