"""Router semantics over live in-process shards.

Two real stub-backed :class:`~repro.serve.pool.ServeService` shards
behind real HTTP; the router under test speaks to them exactly as it
would to subprocess shards. See ``conftest.py`` for the one in-process
caveat (shared metrics registry).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cluster import Router, ShardUnavailable
from repro.cluster.router_http import ROUTES as ROUTER_ROUTES
from repro.serve import ServeClient
from repro.serve.http import ROUTES as SHARD_ROUTES
from repro.serve.jobs import UnknownJobError
from tests.serve.conftest import make_config


def config_for_shard(router, shard_name, seeds=range(64)):
    """A config whose route key lands on ``shard_name``."""
    for seed in seeds:
        config = make_config(seed=seed)
        if router.route(config)[1] == shard_name:
            return config
    raise AssertionError(f"no seed routed to {shard_name}")


def http_get(url):
    """(status, headers, decoded-JSON-or-text) without raising."""
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            body = resp.read().decode("utf-8")
            status, headers = resp.status, dict(resp.headers)
    except urllib.error.HTTPError as exc:
        body = exc.read().decode("utf-8")
        status, headers = exc.code, dict(exc.headers)
    try:
        return status, headers, json.loads(body)
    except json.JSONDecodeError:
        return status, headers, body


class TestRouting:
    def test_submit_routes_to_the_owning_shard(self, cluster):
        shards, router = cluster
        by_name = {s.name: s for s in shards}
        for name in by_name:
            config = config_for_shard(router, name)
            job = router.submit(config)
            assert job["shard"] == name
            assert len(job["route_key"]) == 32
            router_key, owner = router.route(config)
            assert (job["route_key"], job["shard"]) \
                == (router_key, owner)
            # The job exists on the owner and nowhere else.
            owner_ids = {j["job_id"]
                         for j in by_name[name].service.store.jobs()}
            assert job["job_id"] in owner_ids
            for other in shards:
                if other.name != name:
                    assert job["job_id"] not in {
                        j["job_id"] for j in other.service.store.jobs()}

    def test_duplicate_submissions_coalesce_globally(self, cluster):
        shards, router = cluster
        config = make_config(seed=7)
        first = router.submit(config)
        second = router.submit(config)
        assert first["shard"] == second["shard"]
        owner = next(s for s in shards if s.name == first["shard"])
        owner.service.wait(first["job_id"], timeout=10)
        owner.service.wait(second["job_id"], timeout=10)
        # Identical configs met in one queue: exactly one execution.
        assert len(owner.runner.calls) == 1

    def test_job_reads_follow_the_location(self, cluster):
        shards, router = cluster
        job = router.submit(make_config(seed=11))
        owner = next(s for s in shards if s.name == job["shard"])
        owner.service.wait(job["job_id"], timeout=10)
        doc = router.job(job["job_id"])
        assert doc["shard"] == job["shard"]
        assert doc["state"] == "succeeded"
        summary = router.job(job["job_id"], summary=True)
        assert summary["shard"] == job["shard"]
        assert "report" not in summary
        events = router.events(job["job_id"])
        assert events["shard"] == job["shard"]
        assert events["events"]

    def test_cold_location_cache_falls_back_to_fan_out(self, cluster):
        shards, router = cluster
        job = router.submit(make_config(seed=13))
        owner = next(s for s in shards if s.name == job["shard"])
        owner.service.wait(job["job_id"], timeout=10)
        # A freshly built router (e.g. after restart) has no location
        # cache; the probe must still find the job.
        fresh = Router({s.name: s.url for s in shards}, timeout_s=10.0)
        assert fresh.locate(job["job_id"]) == job["shard"]
        assert fresh.job(job["job_id"])["state"] == "succeeded"

    def test_unknown_job_is_a_404_not_a_shrug(self, cluster):
        _, router = cluster
        with pytest.raises(UnknownJobError):
            router.job("no-such-job")

    def test_jobs_fan_out_and_merge(self, cluster):
        shards, router = cluster
        submitted = {router.submit(make_config(seed=s))["job_id"]
                     for s in (21, 22, 23, 24)}
        for shard in shards:
            for job in shard.service.store.jobs():
                shard.service.wait(job["job_id"], timeout=10)
        merged = router.jobs()
        assert submitted <= {j["job_id"] for j in merged["jobs"]}
        assert merged["unreachable"] == []
        names = {j["shard"] for j in merged["jobs"]}
        assert names <= {s.name for s in shards}

    def test_cancel_routes_to_the_owner(self, cluster):
        shards, router = cluster
        gated = shards[0].runner
        gated.gate = threading.Event()
        config = config_for_shard(router, shards[0].name)
        job = router.submit(config)
        try:
            doc = router.cancel(job["job_id"])
            assert doc["shard"] == shards[0].name
            assert doc["state"] in ("cancelled", "running",
                                    "submitted")
        finally:
            gated.gate.set()


class TestDegradedCluster:
    def test_dead_shard_taints_health_and_slo(self, cluster):
        shards, router = cluster
        shards[0].server.close()
        health = router.health()
        assert health["health"] in ("unhealthy", "unreachable")
        assert health["shards"][shards[0].name]["health"] \
            == "unreachable"
        assert health["accepting"]          # the survivor still accepts
        slo = router.slo()
        assert slo["health"] == "unhealthy"
        assert slo["shards"][shards[0].name]["health"] == "unreachable"
        # Rules from the live shard still arrive, tagged.
        assert {r["shard"] for r in slo["rules"]} == {shards[1].name}

    def test_submit_to_a_dead_shard_raises_shard_unavailable(
            self, cluster):
        shards, router = cluster
        config = config_for_shard(router, shards[0].name)
        shards[0].server.close()
        with pytest.raises(ShardUnavailable) as err:
            router.submit(config)
        assert err.value.shard == shards[0].name

    def test_locate_with_a_dead_shard_is_503_not_404(self, cluster):
        """With a shard unreachable, "job not found" is indistinguishable
        from "job on the dead shard" — the honest answer is 503."""
        shards, router = cluster
        shards[0].server.close()
        with pytest.raises(ShardUnavailable):
            router.locate("never-submitted")


class TestAggregation:
    def test_health_merges_job_counts(self, cluster):
        shards, router = cluster
        job = router.submit(make_config(seed=31))
        owner = next(s for s in shards if s.name == job["shard"])
        owner.service.wait(job["job_id"], timeout=10)
        health = router.health()
        assert health["role"] == "router"
        assert set(health["shards"]) == {s.name for s in shards}
        assert sum(health["jobs"].values()) >= 1
        assert health["ring"]["members"] == {s.name: 1.0
                                             for s in shards}

    def test_metrics_merge_under_a_shard_label(self, cluster):
        shards, router = cluster
        job = router.submit(make_config(seed=33))
        owner = next(s for s in shards if s.name == job["shard"])
        owner.service.wait(job["job_id"], timeout=10)
        doc = router.metrics_json()
        assert doc["unreachable"] == []
        assert "repro_serve_jobs_total" in doc["metrics"]
        for family in doc["metrics"].values():
            for series in family["series"]:
                assert series["labels"]["shard"] in {
                    s.name for s in shards}
        text = router.metrics_text()
        assert 'shard="shard-0"' in text
        assert "# TYPE repro_serve_jobs_total counter" in text

    def test_workspace_stats_fan_out(self, cluster):
        shards, router = cluster
        doc = router.workspace_stats()
        assert set(doc["shards"]) == {s.name for s in shards}

    def test_cluster_info_shape(self, cluster):
        shards, router = cluster
        info = router.cluster_info()
        assert info["role"] == "router"
        assert set(info["shards"]) == {s.name for s in shards}
        assert info["ring"]["points"] == 64 * len(shards)


class TestMembership:
    def test_push_membership_wires_peers_everywhere(self, cluster):
        shards, router = cluster
        result = router.push_membership()
        assert set(result) == {s.name for s in shards}
        for shard in shards:
            assert shard.service.peers is not None
            assert shard.service.peers.peer_names == [
                other.name for other in shards
                if other.name != shard.name]

    def test_add_shard_extends_ring_and_repushes(self, cluster,
                                                 make_shards):
        shards, router = cluster
        third = make_shards(1)[0]
        result = router.add_shard(third.name, third.url)
        assert result["ring"]["members"][third.name] == 1.0
        assert len(router.ring) == 3
        # Everyone — old and new — adopted the 3-shard membership.
        for shard in shards + [third]:
            assert sorted(shard.service.peers.ring.members) \
                == sorted([s.name for s in shards] + [third.name])


class TestRouterHttp:
    def test_submit_and_read_through_http(self, http_cluster):
        shards, router, server = http_cluster
        client = ServeClient(server.url, timeout_s=10)
        job = client.submit(make_config(seed=41))
        assert job["shard"] in {s.name for s in shards}
        done = client.wait(job["job_id"], timeout_s=30)
        assert done["state"] == "succeeded"
        assert done["shard"] == job["shard"]
        assert client.job(job["job_id"])["report"]["best_reward"] == 3.0

    def test_bare_config_submission(self, http_cluster):
        _, _, server = http_cluster
        body = json.dumps(make_config(seed=42).to_dict()).encode()
        request = urllib.request.Request(
            f"{server.url}/v1/runs", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=10) as resp:
            assert resp.status == 202
            doc = json.loads(resp.read().decode("utf-8"))
        assert "route_key" in doc and "shard" in doc

    def test_event_stream_passthrough(self, http_cluster):
        shards, router, server = http_cluster
        client = ServeClient(server.url, timeout_s=10)
        job = client.submit(make_config(seed=43))
        events = list(client.events(job["job_id"], stream=True))
        assert events[-1]["event"] == "end"
        assert events[-1]["data"]["state"] == "succeeded"
        assert "progress" in {e["event"] for e in events}

    def test_cluster_topology_endpoint(self, http_cluster):
        shards, _, server = http_cluster
        status, _, doc = http_get(f"{server.url}/v1/cluster")
        assert status == 200
        assert set(doc["shards"]) == {s.name for s in shards}
        assert doc["ring"]["points"] == 64 * len(shards)

    def test_metrics_text_and_json(self, http_cluster):
        _, _, server = http_cluster
        status, headers, text = http_get(f"{server.url}/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_" in text
        status, _, doc = http_get(
            f"{server.url}/v1/metrics?format=json")
        assert status == 200
        assert "metrics" in doc

    def test_unknown_job_is_http_404(self, http_cluster):
        _, _, server = http_cluster
        status, _, doc = http_get(f"{server.url}/v1/runs/nope")
        assert status == 404
        assert "unknown job" in doc["error"]

    def test_dead_shard_is_http_503_with_retry_after(self,
                                                     http_cluster):
        shards, router, server = http_cluster
        config = config_for_shard(router, shards[0].name)
        shards[0].server.close()
        body = json.dumps({"config": config.to_dict()}).encode()
        request = urllib.request.Request(
            f"{server.url}/v1/runs", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 503
        assert err.value.headers["Retry-After"] == "2"
        doc = json.loads(err.value.read().decode("utf-8"))
        assert doc["shard"] == shards[0].name

    def test_unhealthy_router_healthz_is_503(self, http_cluster,
                                             monkeypatch):
        _, router, server = http_cluster
        monkeypatch.setattr(
            router, "health",
            lambda: {"health": "unhealthy", "role": "router"})
        status, headers, doc = http_get(f"{server.url}/healthz")
        assert status == 503
        assert headers["Retry-After"] == "5"
        assert doc["health"] == "unhealthy"     # body still present
        # The client treats the 503-with-document as an answer.
        assert ServeClient(server.url).health()["health"] \
            == "unhealthy"

    def test_shard_error_forwarded_verbatim(self, http_cluster):
        _, _, server = http_cluster
        status, _, doc = http_get(
            f"{server.url}/v1/runs/nope/profile?format=json")
        assert status == 404

    def test_join_validation(self, http_cluster):
        _, _, server = http_cluster
        for payload in ({"url": "http://x"}, {"name": "s"},
                        {"name": "s", "url": "http://x",
                         "weight": -1}):
            body = json.dumps(payload).encode()
            request = urllib.request.Request(
                f"{server.url}/v1/cluster/join", data=body,
                method="POST",
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 400

    def test_join_extends_the_cluster(self, http_cluster, make_shards):
        shards, router, server = http_cluster
        third = make_shards(1)[0]
        body = json.dumps({"name": third.name,
                           "url": third.url}).encode()
        request = urllib.request.Request(
            f"{server.url}/v1/cluster/join", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=10) as resp:
            assert resp.status == 201
        assert third.name in router.ring
        assert third.service.peers is not None


class TestApiParity:
    """The acceptance criterion: the router exposes the same surface as
    a shard, verified by diffing the two route tables."""

    def test_route_table_diff_is_exactly_the_membership_swap(self):
        shard, cluster_routes = set(SHARD_ROUTES), set(ROUTER_ROUTES)
        assert shard - cluster_routes == {
            ("POST", "/v1/cluster/peers")}
        assert cluster_routes - shard == {
            ("GET", "/v1/cluster"), ("POST", "/v1/cluster/join")}

    def test_every_client_facing_shard_route_exists_on_the_router(
            self):
        shard_public = {r for r in SHARD_ROUTES
                        if r != ("POST", "/v1/cluster/peers")}
        assert shard_public <= set(ROUTER_ROUTES)

    def test_tables_are_well_formed(self):
        for method, path in (*SHARD_ROUTES, *ROUTER_ROUTES):
            assert method in ("GET", "POST")
            assert path.startswith("/")
