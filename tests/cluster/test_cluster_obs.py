"""Cluster-wide observability through the router.

Distributed traces stitched into one tree (router hop + shard stages
under a single trace id, serve stages still summing to the job
ledger), federated series/SLO windows over the shard-labeled merged
exposition, and the SSE proxy's liveness contract (heartbeats flow,
follower replay survives the hop, a dying shard surfaces an ``error``
event instead of a silent hang).
"""

import threading

import pytest

from repro.cluster import Router
from repro.obs.slo import shard_series
from repro.serve import ServeClient
from tests.serve.conftest import make_config

from .test_router import config_for_shard


def _trace_event(events):
    return next(e for e in reversed(events)
                if isinstance(e, dict) and e.get("kind") == "trace")


def _walk(tree):
    yield tree
    for child in tree.get("children", []):
        yield from _walk(child)


class TestStitchedTrace:
    def test_router_and_shard_spans_share_one_trace(self, cluster):
        shards, router = cluster
        job = router.submit(make_config(seed=61))
        owner = next(s for s in shards if s.name == job["shard"])
        done = owner.service.wait(job["job_id"], timeout=10)

        tree = _trace_event(router.events(job["job_id"])["events"])[
            "trace"]
        assert tree["name"] == "router.submit"
        assert tree["attrs"]["shard"] == job["shard"]
        serve_job = next(c for c in tree["children"]
                         if c["name"] == "serve.job")
        # One trace id end to end, parented across the hop.
        assert tree["trace_id"] and len(tree["trace_id"]) == 32
        assert serve_job["trace_id"] == tree["trace_id"]
        assert serve_job["parent_span_id"] == tree["span_id"]
        # Stitching wrapped the shard tree without touching it: the
        # serve stages still sum exactly to the job ledger.
        stages = {c["name"]: c["wall_s"]
                  for c in serve_job["children"]}
        assert set(stages) == {"serve.queued", "serve.lock_wait",
                               "serve.execute"}
        assert sum(stages.values()) == pytest.approx(
            sum(done.ledger.values()), abs=1e-9)

    def test_client_minted_context_parents_the_router_hop(
            self, http_cluster):
        """A ServeClient submit mints the trace context, so the
        router's hop span is a *child* in the client's trace — the
        whole cluster path hangs off the caller."""
        shards, router, server = http_cluster
        client = ServeClient(server.url, timeout_s=10)
        job = client.submit(make_config(seed=62))
        client.wait(job["job_id"], timeout_s=30)
        tree = _trace_event(client.events(job["job_id"]))["trace"]
        assert tree["name"] == "router.submit"
        assert tree["parent_span_id"]     # adopted the client context
        ids = {node["trace_id"] for node in _walk(tree)
               if node.get("trace_id")}
        assert len(ids) == 1              # one trace id, every span

    def test_shard_keeps_its_own_trace_when_submitted_directly(
            self, cluster):
        """Bypassing the router (direct shard submit) still yields a
        complete single-shard trace — the shard mints its own root."""
        shards, _ = cluster
        shard = shards[0]
        client = ServeClient(shard.url, timeout_s=10)
        job = client.submit(make_config(seed=63))
        client.wait(job["job_id"], timeout_s=30)
        tree = _trace_event(client.events(job["job_id"]))["trace"]
        assert tree["name"] == "serve.job"
        assert tree["trace_id"] and len(tree["trace_id"]) == 32

    def test_graft_attaches_twin_at_its_parent_span(self):
        tree = {"name": "router.submit", "span_id": "aa",
                "children": [
                    {"name": "serve.job", "span_id": "bb",
                     "children": [
                         {"name": "serve.execute", "span_id": "cc",
                          "children": []}]}]}
        twin = {"name": "serve.job", "span_id": "dd",
                "parent_span_id": "cc", "children": []}
        Router._graft(tree, twin)
        execute = tree["children"][0]["children"][0]
        assert twin in execute["children"]
        # No matching parent: fall back to the root, never drop it.
        orphan = {"name": "serve.job", "span_id": "ee",
                  "parent_span_id": "zz", "children": []}
        Router._graft(tree, orphan)
        assert orphan in tree["children"]


class TestFederatedWindows:
    def test_window_report_covers_shard_labeled_series(self, cluster):
        shards, router = cluster
        router.recorder.sample()
        job = router.submit(make_config(seed=65))
        owner = next(s for s in shards if s.name == job["shard"])
        owner.service.wait(job["job_id"], timeout=10)
        router.recorder.sample()
        report = router.metrics_window(600)
        assert report["role"] == "router"
        assert report["samples"] == 2
        assert set(report["shards"]) == {s.name for s in shards}
        succeeded = shard_series(
            'repro_serve_jobs_total{outcome="succeeded"}',
            job["shard"])
        assert report["deltas"][succeeded] >= 1

    def test_slo_separates_shard_and_cluster_scopes(self, cluster):
        shards, router = cluster
        report = router.slo()
        assert report["role"] == "router"
        # Every merged rule is a live shard's, tagged with its name.
        assert {r["shard"] for r in report["rules"]} \
            == {s.name for s in shards}
        names = {r["name"] for r in report["cluster"]["rules"]}
        assert "predict-availability" in names
        for shard in shards:
            assert f"shard-execute-latency[{shard.name}]" in names
            assert f"shard-predict-drift[{shard.name}]" in names
        assert report["cluster"]["health"] == "healthy"

    def test_cluster_drift_rule_degrades_the_router(self, cluster,
                                                    monkeypatch):
        """A sustained out-of-distribution stream on one shard flips
        the *cluster* health to degraded — and only to degraded."""
        shards, router = cluster
        key = shard_series("repro_predict_drift", shards[0].name)
        base = router._federated_sample

        def drifting():
            values, buckets = base()
            values[key] = 7.5
            return values, buckets
        monkeypatch.setattr(router, "_federated_sample", drifting)
        monkeypatch.setattr(router.recorder, "source", drifting)
        router.recorder.sample()
        router.recorder.sample()
        report = router.slo()
        assert report["cluster"]["health"] == "degraded"
        assert report["health"] == "degraded"
        rule = next(r for r in report["cluster"]["rules"]
                    if r["name"]
                    == f"shard-predict-drift[{shards[0].name}]")
        assert rule["state"] == "breach"
        assert rule["severity"] == "degraded"


class TestSseProxy:
    def test_heartbeats_flow_while_a_job_is_gated(self, http_cluster):
        shards, router, server = http_cluster
        for shard in shards:
            shard.server.httpd.sse_heartbeat_s = 0.2
        gated = shards[0].runner
        gated.gate = threading.Event()
        client = ServeClient(server.url, timeout_s=10)
        job = client.submit(config_for_shard(router, shards[0].name))
        got = []

        def consume():
            for item in client.events(job["job_id"], stream=True,
                                      heartbeats=True):
                got.append(item)
                if item["event"] == "heartbeat":
                    gated.gate.set()     # saw liveness: let it finish

        worker = threading.Thread(target=consume, daemon=True)
        worker.start()
        worker.join(30)
        try:
            assert not worker.is_alive()
            kinds = [g["event"] for g in got]
            assert "heartbeat" in kinds
            assert got[-1]["event"] == "end"
            assert got[-1]["data"]["state"] == "succeeded"
        finally:
            gated.gate.set()

    def test_follower_replays_its_leaders_feed(self, http_cluster):
        shards, router, server = http_cluster
        for shard in shards:
            shard.runner.gate = threading.Event()
        client = ServeClient(server.url, timeout_s=10)
        config = make_config(seed=67)
        try:
            leader = client.submit(config)
            follower = client.submit(config)    # coalesces globally
        finally:
            for shard in shards:
                shard.runner.gate.set()
        assert follower["job_id"] != leader["job_id"]
        got = list(client.events(follower["job_id"], stream=True))
        kinds = [g["event"] for g in got]
        assert "trace" in kinds           # the leader's full feed
        assert got[-1]["event"] == "end"
        assert got[-1]["data"]["source"] == leader["job_id"]
        assert got[-1]["data"]["state"] == "succeeded"

    def test_mid_stream_shard_death_is_an_error_event(
            self, http_cluster, monkeypatch):
        shards, router, server = http_cluster

        def dying_stream(job_id):
            yield {"event": "progress", "data": {"round": 1}}
            raise ConnectionResetError("shard went away")
        monkeypatch.setattr(router, "event_stream", dying_stream)
        client = ServeClient(server.url, timeout_s=10)
        got = list(client.events("j-doomed", stream=True))
        assert [g["event"] for g in got] == ["progress", "error"]
        assert "ConnectionResetError" in got[-1]["data"]["error"]
        assert got[-1]["data"]["job_id"] == "j-doomed"

    def test_upstream_eof_without_end_is_an_error_event(
            self, http_cluster, monkeypatch):
        """A stream that just stops (shard restarted, socket reset
        swallowed upstream) must not look like a clean finish."""
        shards, router, server = http_cluster

        def truncated_stream(job_id):
            yield {"event": "progress", "data": {"round": 1}}
        monkeypatch.setattr(router, "event_stream", truncated_stream)
        client = ServeClient(server.url, timeout_s=10)
        got = list(client.events("j-cut", stream=True))
        assert [g["event"] for g in got] == ["progress", "error"]
        assert "terminal state" in got[-1]["data"]["error"]
