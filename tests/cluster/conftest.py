"""Shared fixtures for the cluster-layer tests.

Router semantics are tested against *in-process* stub-backed shards
(two real :class:`~repro.serve.pool.ServeService` instances, each with
its own workspace and HTTP server) — fast, controllable, and exactly
the surface the router speaks. Note one in-process caveat: the obs
metrics registry is process-wide, so these shards share counters;
anything asserting per-shard metric *values* must use subprocess
shards (:class:`~repro.cluster.client.LocalCluster`) instead — here we
only assert the router's label plumbing.
"""

import pytest

from repro.api import Workspace
from repro.cluster import Router, RouterServer
from repro.serve import ServeService, StcoServer
from tests.serve.conftest import StubRunner, make_config

__all__ = ["StubRunner", "make_config"]


class ShardFixture:
    """One in-process shard: service + HTTP server + its stub runner."""

    def __init__(self, name, service, server, runner):
        self.name = name
        self.service = service
        self.server = server
        self.runner = runner

    @property
    def url(self):
        return self.server.url


@pytest.fixture
def make_shards(tmp_path):
    """Factory for N stub-backed shards on ephemeral ports."""
    created = []

    def factory(count: int = 2, runner_factory=StubRunner, **kwargs):
        shards = []
        for i in range(len(created), len(created) + count):
            name = f"shard-{i}"
            runner = runner_factory()
            service = ServeService(
                Workspace(tmp_path / name / "ws"),
                jobs_dir=tmp_path / name / "jobs",
                workers=2, runner=runner, shard_name=name, **kwargs)
            server = StcoServer(service).start()
            shard = ShardFixture(name, service, server, runner)
            created.append(shard)
            shards.append(shard)
        return shards

    yield factory
    for shard in created:
        shard.server.close()
        shard.service.close(timeout=5)


@pytest.fixture
def cluster(make_shards):
    """Two stub shards + a router over them (no router HTTP server)."""
    shards = make_shards(2)
    router = Router({s.name: s.url for s in shards}, timeout_s=10.0)
    return shards, router


@pytest.fixture
def http_cluster(cluster):
    """The same two shards with the router behind real HTTP."""
    shards, router = cluster
    with RouterServer(router) as server:
        yield shards, router, server
