"""Tests for the unified device encoding (paper Fig. 2)."""

import numpy as np
import pytest

from repro.encoding import DeviceEncoder, encode_charge_density, \
    encode_potential
from repro.tcad import PlanarTFT, Region
from repro.tcad.materials import NUM_MATERIALS


@pytest.fixture(scope="module")
def mesh():
    return PlanarTFT(channel_material="igzo").mesh()


class TestFeatureLayout:
    def test_feature_counts(self, mesh):
        enc = DeviceEncoder(include_charge=False)
        g = enc.encode(mesh, 1.0, 0.5)
        assert g.num_node_features == enc.base_features

    def test_charge_adds_one(self, mesh):
        enc = DeviceEncoder(include_charge=True)
        g = enc.encode(mesh, 1.0, 0.5, charge=np.ones(mesh.num_nodes))
        assert g.num_node_features == enc.base_features + 1

    def test_charge_and_potential_add_two(self, mesh):
        enc = DeviceEncoder(include_charge=True, include_potential=True)
        g = enc.encode(mesh, 1.0, 0.5, charge=np.ones(mesh.num_nodes),
                       psi=np.zeros(mesh.num_nodes))
        assert g.num_node_features == enc.base_features + 2

    def test_missing_charge_raises(self, mesh):
        enc = DeviceEncoder(include_charge=True)
        with pytest.raises(ValueError):
            enc.encode(mesh, 1.0, 0.5)

    def test_missing_potential_raises(self, mesh):
        enc = DeviceEncoder(include_charge=False, include_potential=True)
        with pytest.raises(ValueError):
            enc.encode(mesh, 1.0, 0.5)


class TestMaterialEmbedding:
    def test_one_hot_valid(self, mesh):
        enc = DeviceEncoder(include_charge=False)
        g = enc.encode(mesh, 0.0, 0.0)
        onehot = g.x[:, :NUM_MATERIALS]
        np.testing.assert_allclose(onehot.sum(axis=1), 1.0)
        assert set(np.unique(onehot)) <= {0.0, 1.0}

    def test_one_hot_matches_mesh(self, mesh):
        enc = DeviceEncoder(include_charge=False)
        g = enc.encode(mesh, 0.0, 0.0)
        onehot = g.x[:, :NUM_MATERIALS]
        np.testing.assert_array_equal(np.argmax(onehot, axis=1),
                                      mesh.material_idx)


class TestDeviceEmbedding:
    def test_region_one_hot(self, mesh):
        enc = DeviceEncoder(include_charge=False)
        g = enc.encode(mesh, 0.0, 0.0)
        start = NUM_MATERIALS + 9  # material params vector length
        region = g.x[:, start:start + Region.COUNT]
        np.testing.assert_allclose(region.sum(axis=1), 1.0)
        np.testing.assert_array_equal(np.argmax(region, axis=1), mesh.region)

    def test_positions_normalised(self, mesh):
        enc = DeviceEncoder(include_charge=False)
        g = enc.encode(mesh, 0.0, 0.0)
        start = NUM_MATERIALS + 9 + Region.COUNT
        xs, ys = g.x[:, start], g.x[:, start + 1]
        assert xs.min() == pytest.approx(0.0)
        assert xs.max() == pytest.approx(1.0)
        assert ys.max() == pytest.approx(1.0)

    def test_bias_encoded_globally(self, mesh):
        enc = DeviceEncoder(include_charge=False)
        g = enc.encode(mesh, 2.5, 1.0)
        start = NUM_MATERIALS + 9 + Region.COUNT
        vg_col = g.x[:, start + 4]
        vd_col = g.x[:, start + 5]
        np.testing.assert_allclose(vg_col, 0.5)
        np.testing.assert_allclose(vd_col, 0.2)

    def test_bias_changes_features(self, mesh):
        enc = DeviceEncoder(include_charge=False)
        g1 = enc.encode(mesh, 0.0, 0.0)
        g2 = enc.encode(mesh, 3.0, 1.0)
        assert not np.allclose(g1.x, g2.x)


class TestSpatialEmbedding:
    def test_edge_features_antisymmetric(self, mesh):
        """Edge (a->b) has dx,dy = -(b->a); distance equal."""
        enc = DeviceEncoder(include_charge=False)
        g = enc.encode(mesh, 0.0, 0.0)
        # Mesh emits consecutive (a->b, b->a) pairs.
        ea = g.edge_attr
        np.testing.assert_allclose(ea[0::2, :2], -ea[1::2, :2])
        np.testing.assert_allclose(ea[0::2, 2], ea[1::2, 2])

    def test_edge_distances_positive_normalised(self, mesh):
        enc = DeviceEncoder(include_charge=False)
        g = enc.encode(mesh, 0.0, 0.0)
        assert np.all(g.edge_attr[:, 2] > 0)
        assert np.all(g.edge_attr[:, 2] <= 1.0)


class TestSelfConsistentFeatures:
    def test_charge_compression_monotone(self):
        n = np.array([0.0, 1e10, 1e20, 1e25])
        enc = encode_charge_density(n)
        assert np.all(np.diff(enc) > 0)
        assert enc.max() < 1.0

    def test_potential_scaling(self):
        psi = np.array([-5.0, 0.0, 5.0])
        np.testing.assert_allclose(encode_potential(psi), [-1, 0, 1])

    def test_charge_feature_in_last_column(self, mesh):
        enc = DeviceEncoder(include_charge=True)
        charge = np.full(mesh.num_nodes, 1e20)
        g = enc.encode(mesh, 0.0, 0.0, charge=charge)
        np.testing.assert_allclose(g.x[:, -1],
                                   encode_charge_density(charge))


class TestGraphTargets:
    def test_node_target_passthrough(self, mesh):
        enc = DeviceEncoder(include_charge=False)
        y = np.zeros((mesh.num_nodes, 1))
        g = enc.encode(mesh, 0.0, 0.0, y=y, target_level="node")
        assert g.y.shape == (mesh.num_nodes, 1)

    def test_meta_carries_bias_and_geometry(self, mesh):
        enc = DeviceEncoder(include_charge=False)
        g = enc.encode(mesh, 1.5, 0.7)
        assert g.meta["vg"] == 1.5
        assert g.meta["vd"] == 0.7
        assert "l_channel" in g.meta
