"""Tests for the 35-cell library: structure, logic, and transistor-level
truth tables (an LVS-style check of every combinational cell)."""

import numpy as np
import pytest

from repro.cells import (Cell, Transistor, build_library, cell_names,
                         get_cell, VDD_NET)
from repro.charlib import technology_pair
from repro.spice import Circuit, dc_operating_point

LIB = build_library()
TECH = technology_pair("ltps")
VDD = TECH.vdd


class TestLibraryInventory:
    def test_exactly_35_cells(self):
        assert len(LIB) == 35

    def test_five_sequential(self):
        seq = [c for c in LIB.values() if c.is_sequential]
        assert len(seq) == 5
        assert {c.name for c in seq} == {"DLATCH_X1", "DFF_X1", "DFF_X2",
                                         "DFFR_X1", "DFFS_X1"}

    def test_cell_names_sorted(self):
        names = cell_names()
        assert names == sorted(names)
        assert len(names) == 35

    def test_unknown_cell_raises(self):
        with pytest.raises(ValueError):
            get_cell("NAND17_X9")

    def test_inverter_smallest(self):
        sizes = {n: c.num_transistors for n, c in LIB.items()}
        assert sizes["INV_X1"] == 2
        assert min(sizes.values()) == 2

    def test_area_scales_with_drive(self):
        assert get_cell("INV_X2").drive > get_cell("INV_X1").drive

    def test_every_cell_has_logic(self):
        for cell in LIB.values():
            for vec in cell.input_vectors():
                out = cell.evaluate(vec)
                assert set(out) == set(cell.outputs)


class TestCellValidation:
    def test_transistor_polarity_validated(self):
        with pytest.raises(ValueError):
            Transistor("m1", "x", "d", "g", "s")

    def test_cell_requires_connected_pins(self):
        ts = [Transistor("m1", "n", "y", "a", "0")]
        with pytest.raises(ValueError):
            Cell(name="BAD", inputs=["a", "b"], outputs=["y"],
                 transistors=ts, logic={"y": lambda v: v["a"]})

    def test_cell_requires_logic_for_outputs(self):
        ts = [Transistor("m1", "n", "y", "a", "0"),
              Transistor("m2", "p", "y", "a", VDD_NET)]
        with pytest.raises(ValueError):
            Cell(name="BAD", inputs=["a"], outputs=["y"], transistors=ts,
                 logic={})

    def test_missing_input_in_evaluate(self):
        with pytest.raises(ValueError):
            get_cell("NAND2_X1").evaluate({"a": True})

    def test_instantiate_requires_vdd_mapping(self):
        ckt = Circuit()
        with pytest.raises(ValueError):
            get_cell("INV_X1").instantiate(ckt, "u0", {"a": "in", "y": "out"},
                                           TECH.nmos, TECH.pmos)


def _dc_outputs(cell, vector):
    ckt = Circuit(cell.name)
    ckt.vsource("vdd", "vddn", "0", VDD)
    pin_map = {VDD_NET: "vddn"}
    for pin in cell.inputs:
        ckt.vsource(f"v_{pin}", f"n_{pin}", "0",
                    VDD if vector[pin] else 0.0)
        pin_map[pin] = f"n_{pin}"
    for pin in cell.outputs:
        pin_map[pin] = f"n_{pin}"
    cell.instantiate(ckt, "u0", pin_map, TECH.nmos, TECH.pmos)
    op = dc_operating_point(ckt)
    assert op.converged, (cell.name, vector)
    return {pin: op.v(f"n_{pin}") for pin in cell.outputs}


@pytest.mark.parametrize("name", [n for n in cell_names()
                                  if not LIB[n].is_sequential])
def test_transistor_level_truth_table(name):
    """Every combinational cell's SPICE DC output matches its boolean
    function on every input vector (full LVS-style verification)."""
    cell = get_cell(name)
    for vector in cell.input_vectors():
        expected = cell.evaluate(vector)
        got = _dc_outputs(cell, vector)
        for pin in cell.outputs:
            want = VDD if expected[pin] else 0.0
            assert got[pin] == pytest.approx(want, abs=0.15), \
                (name, vector, pin)


class TestSequentialAtTransistorLevel:
    def test_dff_captures_on_rising_edge(self):
        from repro.spice import PWL, transient, settles_to
        cell = get_cell("DFF_X1")
        ckt = Circuit("dff_tb")
        ckt.vsource("vdd", "vddn", "0", VDD)
        ckt.vsource("v_d", "n_d", "0", VDD)   # d = 1 throughout
        t_stop = 3e-6
        ckt.vsource("v_clk", "n_clk", "0",
                    PWL((0.0, 1e-6, 1.05e-6, t_stop), (0.0, 0.0, VDD, VDD)))
        pin_map = {VDD_NET: "vddn", "d": "n_d", "clk": "n_clk", "q": "n_q"}
        ckt.capacitor("cl", "n_q", "0", 10e-15)
        cell.instantiate(ckt, "u0", pin_map, TECH.nmos, TECH.pmos)
        res = transient(ckt, t_stop=t_stop, dt=t_stop / 400)
        assert settles_to(res.t, res.v("n_q"), VDD, tol=0.2 * VDD)

    def test_dlatch_transparent_when_enabled(self):
        from repro.spice import transient, settles_to
        cell = get_cell("DLATCH_X1")
        ckt = Circuit("latch_tb")
        ckt.vsource("vdd", "vddn", "0", VDD)
        ckt.vsource("v_d", "n_d", "0", VDD)
        ckt.vsource("v_en", "n_en", "0", VDD)   # transparent
        pin_map = {VDD_NET: "vddn", "d": "n_d", "en": "n_en", "q": "n_q"}
        ckt.capacitor("cl", "n_q", "0", 10e-15)
        cell.instantiate(ckt, "u0", pin_map, TECH.nmos, TECH.pmos)
        res = transient(ckt, t_stop=2e-6, dt=5e-9)
        assert settles_to(res.t, res.v("n_q"), VDD, tol=0.2 * VDD)
