"""Tests for parameter extraction and synthetic measured devices (Fig. 3)."""

import numpy as np
import pytest

from repro.compact import (IVData, MEASUREMENT_GEOMETRIES, TFTModel,
                           extract_parameters, initial_guess, measured_device,
                           technology_presets)


class TestIVData:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            IVData(np.ones(3), np.ones(3), np.ones(4))

    def test_from_transfer(self):
        vg = np.linspace(0, 2, 5)
        d = IVData.from_transfer(vg, 1.0, np.ones(5))
        np.testing.assert_allclose(d.vds, 1.0)
        assert len(d.vgs) == 5

    def test_from_output(self):
        vd = np.linspace(0, 2, 5)
        d = IVData.from_output(vd, 1.5, np.ones(5))
        np.testing.assert_allclose(d.vgs, 1.5)

    def test_concat(self):
        d1 = IVData(np.ones(2), np.ones(2), np.ones(2))
        d2 = IVData(np.zeros(3), np.zeros(3), np.zeros(3))
        assert len(d1.concat(d2).ids) == 5


class TestMeasuredDevice:
    @pytest.mark.parametrize("tech", ["cnt", "ltps", "igzo"])
    def test_geometry_matches_fig3(self, tech):
        dev = measured_device(tech, seed=0)
        l, w = MEASUREMENT_GEOMETRIES[tech]
        assert dev.true_params.l == pytest.approx(l)
        assert dev.true_params.w == pytest.approx(w)

    def test_unknown_technology_raises(self):
        with pytest.raises(ValueError):
            measured_device("gaas")

    def test_noise_is_seeded(self):
        d1 = measured_device("ltps", seed=3)
        d2 = measured_device("ltps", seed=3)
        np.testing.assert_allclose(d1.transfer.ids, d2.transfer.ids)

    def test_different_seeds_differ(self):
        d1 = measured_device("ltps", seed=3)
        d2 = measured_device("ltps", seed=4)
        assert not np.allclose(d1.transfer.ids, d2.transfer.ids)

    def test_true_params_deviate_from_presets(self):
        """The hidden device must differ from the extraction template."""
        dev = measured_device("igzo", seed=0)
        preset = technology_presets()["igzo"]
        assert dev.true_params.vth != preset.vth
        assert dev.true_params.mu0 != preset.mu0

    def test_transfer_spans_decades(self):
        dev = measured_device("ltps", seed=0)
        i = np.abs(dev.transfer.ids)
        assert i.max() / max(i.min(), 1e-15) > 1e3


class TestExtraction:
    @pytest.mark.parametrize("tech", ["cnt", "ltps", "igzo"])
    def test_recovers_hidden_parameters(self, tech):
        """The Fig. 3 experiment: fit Eq. (1) to 'measured' curves."""
        dev = measured_device(tech, seed=1)
        template = technology_presets()[tech].with_updates(
            l=dev.true_params.l, w=dev.true_params.w)
        res = extract_parameters(dev.all_data(), template)
        assert res.converged
        true = dev.true_params
        # vth/gamma/mu0 trade off within the noise floor, so individual
        # parameters carry moderate tolerances; the Fig. 3 criterion is the
        # curve overlay (mean relative error), which must be tight.
        assert res.params.vth == pytest.approx(true.vth, abs=0.15)
        assert res.params.mu0 == pytest.approx(true.mu0, rel=0.30)
        assert res.params.gamma == pytest.approx(true.gamma, abs=0.25)
        assert res.mean_rel_error < 0.08

    def test_initial_guess_reasonable(self):
        dev = measured_device("ltps", seed=0)
        guess = initial_guess(dev.all_data(), technology_presets()["ltps"])
        # The guess only needs to land in the optimiser's basin.
        assert abs(guess["vth"] - dev.true_params.vth) < 0.8
        assert guess["mu0"] > 0

    def test_extraction_with_transfer_only(self):
        dev = measured_device("igzo", seed=2)
        template = technology_presets()["igzo"].with_updates(
            l=dev.true_params.l, w=dev.true_params.w)
        res = extract_parameters(dev.transfer, template)
        assert res.converged
        assert res.params.vth == pytest.approx(dev.true_params.vth, abs=0.3)

    def test_subset_of_fields(self):
        dev = measured_device("ltps", seed=0)
        template = technology_presets()["ltps"].with_updates(
            l=dev.true_params.l, w=dev.true_params.w)
        res = extract_parameters(dev.all_data(), template,
                                 fit_fields=("vth", "mu0"))
        # Unfitted fields keep the template values.
        assert res.params.gamma == template.gamma
        assert res.params.ss == template.ss

    def test_result_diagnostics_populated(self):
        dev = measured_device("cnt", seed=5)
        template = technology_presets()["cnt"].with_updates(
            l=dev.true_params.l, w=dev.true_params.w)
        res = extract_parameters(dev.all_data(), template)
        assert res.n_points == len(dev.all_data().ids)
        assert res.rms_log_error >= 0
        assert res.max_rel_error >= res.mean_rel_error

    def test_model_generalizes_to_unseen_bias(self):
        """Fit on transfer+output, check an unseen intermediate VD curve."""
        dev = measured_device("ltps", seed=7)
        template = technology_presets()["ltps"].with_updates(
            l=dev.true_params.l, w=dev.true_params.w)
        res = extract_parameters(dev.all_data(), template)
        true_model = TFTModel(dev.true_params)
        fit_model = TFTModel(res.params)
        vg = np.linspace(1.5, 3.0, 10)
        vd = 2.2  # not in the measurement set
        i_true = true_model.ids(vg, vd)
        i_fit = fit_model.ids(vg, vd)
        rel = np.abs((i_fit - i_true) / i_true)
        assert rel.mean() < 0.1
