"""Tests for the unified TFT compact model (Eq. 1 + charge drift)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compact import (NType, PType, TFTModel, TFTParams,
                           technology_presets)


def n_model(**kw):
    return TFTModel(TFTParams(polarity=NType, **kw))


def p_model(**kw):
    return TFTModel(TFTParams(polarity=PType, vth=-0.8, **kw))


class TestParams:
    def test_rejects_bad_polarity(self):
        with pytest.raises(ValueError):
            TFTParams(polarity="x")

    @pytest.mark.parametrize("field", ["mu0", "ss", "cox", "w", "l"])
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError):
            TFTParams(**{field: 0.0})

    def test_rejects_negative_gamma(self):
        with pytest.raises(ValueError):
            TFTParams(gamma=-0.1)

    def test_with_updates_immutable(self):
        p = TFTParams()
        q = p.with_updates(vth=1.5)
        assert p.vth != 1.5 and q.vth == 1.5

    def test_unit_helpers(self):
        p = TFTParams(mu0=1e-3, cox=1e-4, w=10e-6, l=5e-6)
        assert p.mu0_cm2 == pytest.approx(10.0)
        assert p.cox_total == pytest.approx(1e-4 * 10e-6 * 5e-6)


class TestCurrentNType:
    def test_off_current_small(self):
        m = n_model(vth=0.8, i_leak=1e-13)
        assert abs(m.ids(0.0, 1.0)) < 1e-11

    def test_on_current_large(self):
        m = n_model(vth=0.8)
        assert m.ids(3.0, 3.0) > 1e-7

    def test_monotone_in_vgs(self):
        m = n_model()
        vg = np.linspace(-1, 4, 100)
        ids = m.ids(vg, 2.0)
        assert np.all(np.diff(ids) >= 0)
        # Strictly increasing once the channel starts forming.
        on = vg[:-1] > 0.0
        assert np.all(np.diff(ids)[on] > 0)

    def test_monotone_in_vds(self):
        m = n_model()
        vd = np.linspace(0, 4, 100)
        ids = m.ids(3.0, vd)
        assert np.all(np.diff(ids) > 0)  # lambda keeps slope positive

    def test_saturation_flattens(self):
        m = n_model(vth=0.8, lambda_cl=0.0)
        lin_slope = m.ids(3.0, 0.2) - m.ids(3.0, 0.1)
        sat_slope = m.ids(3.0, 3.5) - m.ids(3.0, 3.4)
        assert sat_slope < lin_slope / 20

    def test_zero_vds_zero_current(self):
        m = n_model()
        assert m.ids(3.0, 0.0) == pytest.approx(0.0, abs=1e-18)

    def test_symmetry_vds_reversal(self):
        """Id(vg, -vd) equals -Id(vg + vd, vd) by source/drain exchange."""
        m = n_model(vth=0.6, i_leak=0.0)
        vg, vd = 2.0, 0.7
        left = m.ids(vg, -vd)
        right = -m.ids(vg + vd, vd)
        assert left == pytest.approx(right, rel=1e-9)

    def test_subthreshold_slope_close_to_ss(self):
        ss = 0.2
        m = n_model(vth=1.0, ss=ss, i_leak=0.0)
        # Measure decade spacing well below threshold.
        vg = np.array([0.0, 0.2])
        i = m.ids(vg, 1.0)
        decades = np.log10(i[1] / i[0])
        measured_ss = (vg[1] - vg[0]) / decades
        assert measured_ss == pytest.approx(ss, rel=0.1)

    def test_gamma_increases_on_current(self):
        base = n_model(vth=0.5, gamma=0.0).ids(3.0, 3.0)
        enhanced = n_model(vth=0.5, gamma=0.5).ids(3.0, 3.0)
        assert enhanced > base  # overdrive 2.5 V > 1 V so gamma boosts


class TestCurrentPType:
    def test_mirror_of_ntype(self):
        pn = TFTParams(polarity=NType, vth=0.8, i_leak=0.0)
        pp = TFTParams(polarity=PType, vth=-0.8, i_leak=0.0)
        mn, mp = TFTModel(pn), TFTModel(pp)
        vg, vd = 2.1, 1.3
        assert mp.ids(-vg, -vd) == pytest.approx(-mn.ids(vg, vd), rel=1e-12)

    def test_off_when_gate_high(self):
        m = p_model(i_leak=1e-13)
        assert abs(m.ids(0.0, -2.0)) < 1e-11

    def test_on_when_gate_low(self):
        m = p_model()
        assert m.ids(-3.0, -3.0) < -1e-8

    def test_cnt_preset_off_current(self):
        m = TFTModel(technology_presets()["cnt"])
        assert abs(m.ids(0.0, -2.0)) < 1e-10


class TestDerivatives:
    @pytest.mark.parametrize("tech", ["cnt", "ltps", "igzo"])
    def test_gm_matches_finite_difference(self, tech):
        m = TFTModel(technology_presets()[tech])
        sign = 1 if m.params.polarity == NType else -1
        vg = sign * np.linspace(0.2, 3.0, 9)
        vd = sign * 1.5
        h = 1e-5
        fd = (m.ids(vg + h, vd) - m.ids(vg - h, vd)) / (2 * h)
        np.testing.assert_allclose(m.gm(vg, vd), fd, rtol=1e-4, atol=1e-15)

    @pytest.mark.parametrize("tech", ["cnt", "ltps", "igzo"])
    def test_gds_matches_finite_difference(self, tech):
        m = TFTModel(technology_presets()[tech])
        sign = 1 if m.params.polarity == NType else -1
        vd = sign * np.linspace(0.1, 3.0, 9)
        vg = sign * 2.5
        h = 1e-5
        fd = (m.ids(vg, vd + h) - m.ids(vg, vd - h)) / (2 * h)
        np.testing.assert_allclose(m.gds(vg, vd), fd, rtol=1e-4, atol=1e-15)

    def test_gm_positive_in_on_region(self):
        m = n_model()
        assert m.gm(3.0, 2.0) > 0

    def test_gds_positive(self):
        m = n_model()
        assert m.gds(3.0, 2.0) > 0


class TestCapacitances:
    def test_linear_region_split(self):
        p = TFTParams(vth=0.5, cov=0.0)
        m = TFTModel(p)
        cgs, cgd = m.capacitances(3.0, 0.0)
        # At vds=0 the channel splits evenly, ~Cox/2 each (on-factor ~1).
        assert cgs == pytest.approx(p.cox_total / 2, rel=0.1)
        assert cgd == pytest.approx(p.cox_total / 2, rel=0.1)

    def test_saturation_partition(self):
        p = TFTParams(vth=0.5, cov=0.0)
        m = TFTModel(p)
        cgs, cgd = m.capacitances(1.5, 3.0)
        assert cgs > cgd * 5
        assert cgs < p.cox_total  # bounded by the oxide cap

    def test_off_state_only_overlap(self):
        p = TFTParams(vth=1.0, cov=1e-10)
        m = TFTModel(p)
        cgs, cgd = m.capacitances(-1.0, 0.5)
        overlap = p.cov * p.w
        assert cgs == pytest.approx(overlap, rel=0.05)
        assert cgd == pytest.approx(overlap, rel=0.05)

    def test_always_positive(self):
        m = TFTModel(technology_presets()["igzo"])
        rng = np.random.default_rng(0)
        vg = rng.uniform(-3, 3, 50)
        vd = rng.uniform(-3, 3, 50)
        cgs, cgd = m.capacitances(vg, vd)
        assert np.all(cgs > 0) and np.all(cgd > 0)

    def test_ptype_mirrors(self):
        pn = TFTParams(polarity=NType, vth=0.8)
        pp = TFTParams(polarity=PType, vth=-0.8)
        cgs_n, cgd_n = TFTModel(pn).capacitances(2.0, 1.0)
        cgs_p, cgd_p = TFTModel(pp).capacitances(-2.0, -1.0)
        assert cgs_p == pytest.approx(cgs_n, rel=1e-12)
        assert cgd_p == pytest.approx(cgd_n, rel=1e-12)


class TestSweepsAndMobility:
    def test_transfer_curve_shape(self):
        m = n_model()
        vg = np.linspace(-1, 3, 20)
        assert m.transfer_curve(vg, 1.0).shape == (20,)

    def test_output_curve_shape(self):
        m = n_model()
        vd = np.linspace(0, 3, 15)
        assert m.output_curve(vd, 2.0).shape == (15,)

    def test_mobility_zero_below_threshold(self):
        m = n_model(vth=1.0)
        assert m.mobility(0.0) == 0.0

    def test_mobility_follows_power_law(self):
        m = n_model(vth=1.0, mu0=1e-3, gamma=0.5)
        assert m.mobility(2.0) == pytest.approx(1e-3 * 1.0 ** 0.5)
        assert m.mobility(5.0) == pytest.approx(1e-3 * 4.0 ** 0.5)

    def test_mobility_ptype(self):
        m = p_model(mu0=1e-3, gamma=1.0)
        assert m.mobility(-2.8) == pytest.approx(1e-3 * 2.0)


class TestPresets:
    def test_all_three_technologies(self):
        presets = technology_presets()
        assert set(presets) == {"cnt", "ltps", "igzo"}

    def test_fig3_geometries(self):
        presets = technology_presets()
        assert presets["cnt"].l == pytest.approx(25e-6)
        assert presets["cnt"].w == pytest.approx(125e-6)
        assert presets["ltps"].l == pytest.approx(16e-6)
        assert presets["ltps"].w == pytest.approx(40e-6)
        assert presets["igzo"].l == pytest.approx(20e-6)
        assert presets["igzo"].w == pytest.approx(30e-6)

    def test_ltps_fastest(self):
        """LTPS has the highest mobility of the three technologies."""
        presets = technology_presets()
        assert presets["ltps"].mu0 > presets["igzo"].mu0
        assert presets["ltps"].mu0 > presets["cnt"].mu0


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=-1.0, max_value=3.5),
       st.floats(min_value=0.0, max_value=3.5))
def test_property_current_finite_and_signed(vg, vd):
    """N-type forward current is finite and non-negative for vd >= 0."""
    m = TFTModel(TFTParams(vth=0.7, i_leak=1e-13))
    i = float(m.ids(vg, vd))
    assert np.isfinite(i)
    assert i >= -1e-15


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.1, max_value=2.0),
       st.floats(min_value=0.0, max_value=1.0))
def test_property_width_scaling(w_scale, gamma):
    """Current scales linearly with W/L (intrinsic model, on-state)."""
    base = TFTParams(vth=0.5, gamma=gamma, i_leak=0.0)
    wide = base.with_updates(w=base.w * w_scale)
    i1 = float(TFTModel(base).ids(2.5, 2.0))
    i2 = float(TFTModel(wide).ids(2.5, 2.0))
    assert i2 == pytest.approx(i1 * w_scale, rel=1e-9)
