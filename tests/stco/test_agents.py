"""Agent-layer guarantees: seeded determinism, best-reward consistency,
and the O(1) design-space index fast paths.

These run against an analytic engine (no GNN training), so they pin the
agents' exact trajectories cheaply — the contract the campaign layer's
checkpoint/resume and the optimizer refactor both rely on.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.charlib import Corner
from repro.stco import (DesignSpace, GridSearchAgent, QLearningAgent,
                        RandomSearchAgent, STCOEnvironment, default_space)

from ..search.conftest import FakeEngine

SPACE = DesignSpace(vdd_scales=(0.8, 1.0, 1.2), vth_shifts=(-0.1, 0.1),
                    cox_scales=(0.9, 1.1))


def make_env(space=SPACE):
    return STCOEnvironment(SimpleNamespace(name="fake"), None, space,
                           engine=FakeEngine())


class TestDeterminism:
    @pytest.mark.parametrize("agent_cls", [QLearningAgent,
                                           RandomSearchAgent])
    def test_same_seed_same_trajectory(self, agent_cls):
        runs = []
        for _ in range(2):
            env = make_env()
            result = agent_cls(env, seed=11).run(iterations=10)
            runs.append(result)
        assert runs[0].rewards == runs[1].rewards
        assert runs[0].best_action == runs[1].best_action
        assert runs[0].best_reward == runs[1].best_reward

    @pytest.mark.parametrize("agent_cls", [QLearningAgent,
                                           RandomSearchAgent])
    def test_different_seeds_diverge(self, agent_cls):
        a = agent_cls(make_env(), seed=0).run(iterations=10)
        b = agent_cls(make_env(), seed=1).run(iterations=10)
        assert a.rewards != b.rewards

    def test_grid_agent_is_seedless_and_deterministic(self):
        a = GridSearchAgent(make_env()).run()
        b = GridSearchAgent(make_env()).run()
        assert a.rewards == b.rewards
        assert a.evaluations == SPACE.size


class TestBestRewardConsistency:
    @pytest.mark.parametrize("agent_cls", [QLearningAgent,
                                           RandomSearchAgent,
                                           GridSearchAgent])
    def test_best_is_max_of_trajectory(self, agent_cls):
        env = make_env()
        result = agent_cls(env, **({} if agent_cls is GridSearchAgent
                                   else {"seed": 3})).run(iterations=12)
        assert result.best_reward == max(result.rewards)
        # The reported best action really is the argmax the env saw.
        best = env.best()
        assert best.reward == result.best_reward
        assert env.space.index_of(best.corner) == result.best_action

    def test_running_best_is_monotone(self):
        env = make_env()
        result = QLearningAgent(env, seed=5).run(iterations=12)
        running = np.maximum.accumulate(result.rewards)
        assert running[-1] == result.best_reward
        assert all(x <= y for x, y in zip(running, running[1:]))

    def test_grid_finds_global_optimum(self):
        env = make_env()
        grid = GridSearchAgent(env).run()
        rewards = [env.evaluate(i).reward for i in range(SPACE.size)]
        assert grid.best_reward == max(rewards)


class TestSpaceFastPaths:
    def test_index_roundtrip_entire_space(self):
        space = default_space()
        for i in range(space.size):
            assert space.index_of(space.point(i)) == i

    def test_neighbors_match_bruteforce(self):
        space = DesignSpace(vdd_scales=(0.8, 0.9, 1.0, 1.1),
                            vth_shifts=(-0.1, 0.0, 0.1),
                            cox_scales=(0.8, 1.0, 1.2))

        def brute(index):
            corner = space.point(index)
            out = []
            axes = (space.vdd_scales, space.vth_shifts, space.cox_scales)
            values = (corner.vdd_scale, corner.vth_shift,
                      corner.cox_scale)
            for axis_i, (axis, value) in enumerate(zip(axes, values)):
                k = axis.index(value)
                for dk in (-1, 1):
                    if 0 <= k + dk < len(axis):
                        new = list(values)
                        new[axis_i] = axis[k + dk]
                        out.append(space.points().index(Corner(*new)))
            return out

        for i in range(space.size):
            assert space.neighbors(i) == brute(i)

    def test_index_of_foreign_corner_raises(self):
        with pytest.raises(ValueError, match="not a point"):
            default_space().index_of(Corner(0.123, 0.456, 0.789))

    def test_large_space_indexes_fast(self):
        import time
        big = DesignSpace(vdd_scales=tuple(0.5 + 0.01 * i
                                           for i in range(20)),
                          vth_shifts=tuple(-0.1 + 0.01 * i
                                           for i in range(20)),
                          cox_scales=tuple(0.5 + 0.05 * i
                                           for i in range(20)))
        t0 = time.perf_counter()
        for i in range(0, big.size, 7):
            assert big.index_of(big.point(i)) == i
            big.neighbors(i)
        # 8000 points, ~1100 lookups: the precomputed maps make this
        # effectively instant (the old linear scans took seconds).
        assert time.perf_counter() - t0 < 1.0
