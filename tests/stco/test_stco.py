"""Tests for the STCO framework: space, env, agents, runtime ledger."""

import numpy as np
import pytest

from repro.charlib import (CharConfig, CharTrainConfig, Corner,
                           build_char_dataset, train_char_model)
from repro.eda import build_benchmark
from repro.stco import (DesignSpace, FastSTCO, GridSearchAgent, PPAWeights,
                        QLearningAgent, RandomSearchAgent, RuntimeLedger,
                        IterationTiming, STCOEnvironment, default_space)

FAST_CFG = CharConfig(slews=(8e-9,), loads=(15e-15,), n_bisect=3,
                      max_steps=200)
CELLS = ("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1")


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    cache = tmp_path_factory.mktemp("stco_cache")
    ds = build_char_dataset(
        "ltps", cells=CELLS,
        train_corners=[Corner(1.0, 0.0, 1.0), Corner(0.9, 0.05, 1.1),
                       Corner(1.1, -0.05, 0.9)],
        test_corners=[Corner(0.95, 0.02, 1.05)],
        config=FAST_CFG, cache_dir=cache)
    model = train_char_model(ds, train_config=CharTrainConfig(epochs=12))
    return model, ds


@pytest.fixture(scope="module")
def small_space():
    return DesignSpace(vdd_scales=(0.9, 1.0, 1.1), vth_shifts=(0.0,),
                       cox_scales=(0.9, 1.1))


@pytest.fixture(scope="module")
def env(trained, small_space):
    from repro.charlib import GNNLibraryBuilder
    model, ds = trained
    builder = GNNLibraryBuilder(model, ds, cells=CELLS, config=FAST_CFG)
    return STCOEnvironment(build_benchmark("s298"), builder, small_space)


class TestDesignSpace:
    def test_default_size(self):
        assert default_space().size == 5 * 3 * 3

    def test_point_roundtrip(self):
        space = default_space()
        for i in (0, 7, space.size - 1):
            assert space.index_of(space.point(i)) == i

    def test_neighbors_are_adjacent(self):
        space = default_space()
        idx = space.size // 2
        corner = space.point(idx)
        for n in space.neighbors(idx):
            other = space.point(n)
            diffs = sum(1 for a, b in (
                (corner.vdd_scale, other.vdd_scale),
                (corner.vth_shift, other.vth_shift),
                (corner.cox_scale, other.cox_scale)) if a != b)
            assert diffs == 1

    def test_corner_neighbors_fewer(self):
        space = default_space()
        assert len(space.neighbors(0)) == 3   # corner of the 3-D grid


class TestPPAWeights:
    def test_faster_is_better(self):
        from repro.eda import SystemResult
        base = dict(design="d", gates=1, flops=0, area_um2=1e4,
                    wirelength_um=1.0, min_period_s=1e-6,
                    total_power_w=1e-5, dynamic_power_w=1e-5,
                    leakage_power_w=0.0, drc_violations=0,
                    lvs_violations=0)
        slow = SystemResult(fmax_hz=1e6, **base)
        fast = SystemResult(fmax_hz=2e6, **base)
        w = PPAWeights()
        assert w.score(fast) > w.score(slow)

    def test_lower_power_is_better(self):
        from repro.eda import SystemResult
        base = dict(design="d", gates=1, flops=0, area_um2=1e4,
                    wirelength_um=1.0, min_period_s=1e-6, fmax_hz=1e6,
                    dynamic_power_w=0.0, leakage_power_w=0.0,
                    drc_violations=0, lvs_violations=0)
        hungry = SystemResult(total_power_w=1e-4, **base)
        frugal = SystemResult(total_power_w=1e-6, **base)
        assert PPAWeights().score(frugal) > PPAWeights().score(hungry)


class TestEnvironment:
    def test_evaluate_returns_record(self, env):
        rec = env.evaluate(0)
        assert rec.result.fmax_hz > 0
        assert np.isfinite(rec.reward)

    def test_evaluation_cached(self, env):
        r1 = env.evaluate(1)
        n_before = len(env.history)
        r2 = env.evaluate(1)
        assert r1 is r2
        assert len(env.history) == n_before

    def test_best_tracks_max(self, env):
        env.evaluate(0)
        env.evaluate(2)
        best = env.best()
        assert best.reward == max(r.reward for r in env.history)


class TestAgents:
    def test_qlearning_explores(self, env):
        agent = QLearningAgent(env, seed=3)
        result = agent.run(iterations=6)
        assert np.isfinite(result.best_reward)
        assert result.evaluations >= 1
        assert len(result.rewards) == 6

    def test_grid_search_finds_global_best(self, env, small_space):
        grid = GridSearchAgent(env).run()
        assert grid.evaluations == small_space.size
        # Q-learning can't beat exhaustive search.
        q = QLearningAgent(env, seed=0).run(iterations=8)
        assert q.best_reward <= grid.best_reward + 1e-9

    def test_random_search(self, env):
        result = RandomSearchAgent(env, seed=1).run(iterations=5)
        assert len(result.rewards) == 5


class TestFastSTCO:
    def test_campaign(self, trained, small_space):
        model, ds = trained
        stco = FastSTCO(build_benchmark("s298"), model, ds, cells=CELLS,
                        char_config=FAST_CFG, space=small_space)
        out = stco.run(iterations=5)
        assert out.iterations == 5
        assert out.best_reward > -np.inf
        assert set(out.best_ppa) == {"power_w", "performance_hz",
                                     "area_um2"}
        assert out.mean_iteration_s < 5.0    # the GNN path must be fast


class TestRuntimeLedger:
    def test_calibrated_matches_paper(self):
        ledger = RuntimeLedger()
        row = ledger.calibrated_row("s386")
        assert row["speedup"] == pytest.approx(14.1, abs=0.15)

    def test_measured_speedup(self):
        ledger = RuntimeLedger()
        fast = IterationTiming(tcad_s=0.1, charlib_s=0.2, setup_s=0.05,
                               system_eval_s=1.0)
        slow = IterationTiming(tcad_s=10.0, charlib_s=50.0,
                               system_eval_s=1.0)
        ledger.record("s298", fast)
        ledger.record("s298", slow, slow_path=True)
        row = ledger.measured_row("s298")
        assert row["speedup"] == pytest.approx(61.0 / 1.35, rel=1e-6)

    def test_measured_row_requires_both_paths(self):
        ledger = RuntimeLedger()
        ledger.record("s298", IterationTiming(system_eval_s=1.0))
        assert ledger.measured_row("s298") is None
