"""End-to-end: surrogate-guided search through the real pipeline.

One tiny GNN-backed workspace (session-scoped) carries every test:
``bayes`` search with harvesting on, a warm second run that re-trains
nothing / re-characterizes nothing / re-featurizes nothing, the
promotion gate through ``repro.api.run``, and the ``repro surrogate``
CLI.
"""

import json

import pytest

from repro.api import (StcoConfig, ModelConfig, SearchConfig,
                       SurrogateConfig, TechnologyConfig, Workspace, run)
from repro.api.cli import main

TECH = TechnologyConfig(
    cells=("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1"),
    train_corners=((1.0, 0.0, 1.0), (0.9, 0.05, 1.1)),
    test_corners=((0.95, 0.02, 1.05),),
    slews=(8e-9,), loads=(15e-15,), n_bisect=3, max_steps=200)

MODEL = ModelConfig(epochs=10)

SEARCH = SearchConfig(optimizer="bayes", seed=0, iterations=10,
                      vdd_scales=(0.85, 0.95, 1.05, 1.15),
                      vth_shifts=(-0.05, 0.05),
                      cox_scales=(0.9, 1.1))


@pytest.fixture(scope="module")
def ws_root(tmp_path_factory):
    return tmp_path_factory.mktemp("surrogate_ws")


@pytest.fixture(scope="module")
def config():
    return StcoConfig(mode="search", benchmark="s298", technology=TECH,
                      model=MODEL, search=SEARCH,
                      surrogate=SurrogateConfig(harvest=True,
                                                min_observations=4))


@pytest.fixture(scope="module")
def first_report(ws_root, config):
    return run(config, Workspace(ws_root))


class TestHarvestThroughApi:
    def test_first_run_harvests_every_unique_evaluation(self,
                                                        first_report):
        sg = first_report.surrogate
        assert sg["harvested"] == first_report.evaluations
        assert sg["featurizations"] == sg["harvested"]
        assert sg["store_rows"] == sg["harvested"]

    def test_warm_run_reuses_store_without_refeaturizing(self, ws_root,
                                                         config,
                                                         first_report):
        """The acceptance property: a second run against the warm
        workspace re-trains nothing, re-characterizes nothing and
        re-featurizes nothing."""
        report = run(config, Workspace(ws_root))
        ws = report.cache_stats["workspace"]
        assert ws["models_trained"] == 0
        assert report.engine_misses == 0
        sg = report.surrogate
        assert sg["harvested"] == 0
        assert sg["featurizations"] == 0      # zero re-featurization
        assert sg["store_rows"] == first_report.surrogate["store_rows"]
        assert report.best_corner == first_report.best_corner

    def test_promotion_gate_through_api(self, ws_root, config):
        from dataclasses import replace
        gated = replace(
            config,
            search=replace(SEARCH, optimizer="random", seed=1),
            surrogate=SurrogateConfig(harvest=True, screen=8, promote=2,
                                      min_observations=4))
        report = run(gated, Workspace(ws_root))
        assert report.optimizer == "promoted-random"
        assert report.surrogate["screened"] >= \
            report.surrogate["promoted"]

    def test_persist_model_registers_artifact(self, ws_root, config):
        from dataclasses import replace
        persisting = replace(
            config, surrogate=SurrogateConfig(harvest=True,
                                              persist_model=True,
                                              members=2, hidden=8,
                                              epochs=20))
        ws = Workspace(ws_root)
        report = run(persisting, ws)
        assert report.surrogate["model_fingerprint"]
        kinds = [r["kind"] for r in ws.list_artifacts()]
        assert "surrogate" in kinds


class TestSurrogateCli:
    def test_stats_and_train(self, ws_root, first_report, capsys):
        assert main(["surrogate", "stats", str(ws_root)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["record_rows"] >= first_report.surrogate["store_rows"]
        assert main(["surrogate", "train", str(ws_root),
                     "--members", "2", "--epochs", "10"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["fingerprint"]
        assert out["trained_rows"] >= 8

    def test_train_refuses_empty_workspace(self, tmp_path, capsys):
        assert main(["surrogate", "train", str(tmp_path / "empty")]) == 2
