"""Promotion schedule: surrogate screening before real evaluation."""

import numpy as np
import pytest

from repro.engine.records import PPAWeights
from repro.search import RandomOptimizer, SearchRun
from repro.surrogate import (EnsembleConfig, PromotedOptimizer,
                             PromotionSchedule)

from ..search.conftest import FakeEngine
from .conftest import SPACE, true_best

FAST = EnsembleConfig(members=2, hidden=8, epochs=30, seed=0)


def promoted(schedule, batch=6, seed=0, inner_seed=0):
    inner = RandomOptimizer(SPACE, seed=inner_seed, batch=batch)
    return PromotedOptimizer(inner, SPACE, schedule=schedule,
                             weights=PPAWeights(), model_config=FAST,
                             seed=seed)


class TestSchedule:
    def test_validation(self):
        with pytest.raises(ValueError, match="screen"):
            PromotionSchedule(screen=2, promote=4)
        with pytest.raises(ValueError, match="promote"):
            PromotionSchedule(promote=0)


class TestPromotion:
    def test_respects_engine_miss_budget(self):
        """After warmup, each round costs at most ``promote`` misses."""
        schedule = PromotionSchedule(screen=12, promote=2,
                                     min_observations=6)
        optimizer = promoted(schedule, batch=6)
        engine = FakeEngine()
        result = SearchRun(None, optimizer, engine).run(budget=26)
        stats = result.surrogate
        # One warmup round of 6 ground-truth evaluations, then <= 2
        # promoted per round.
        warmup_rounds = 1
        assert stats["promoted"] <= \
            schedule.promote * (stats["rounds"] - warmup_rounds)
        assert engine.flow_evaluations <= 6 + stats["promoted"]
        assert stats["screened"] >= stats["promoted"]
        assert stats["backfilled"] > 0

    def test_warmup_passes_through(self):
        schedule = PromotionSchedule(screen=12, promote=2,
                                     min_observations=100)   # never ready
        optimizer = promoted(schedule, batch=4)
        engine = FakeEngine()
        SearchRun(None, optimizer, engine).run(budget=12)
        stats = optimizer.surrogate_stats()
        assert stats["screened"] == 0
        assert stats["backfilled"] == 0

    def test_backfill_records_are_marked_predicted(self):
        schedule = PromotionSchedule(screen=10, promote=2,
                                     min_observations=4)
        optimizer = promoted(schedule, batch=5)
        engine = FakeEngine()
        SearchRun(None, optimizer, engine).run(budget=15)
        assert optimizer.backfilled > 0
        # The inner optimizer consumed full asks: real + predicted.
        assert optimizer.inner.told > optimizer.told

    def test_wrapper_best_is_ground_truth_only(self):
        schedule = PromotionSchedule(screen=10, promote=2,
                                     min_observations=4, kappa=0.0)
        optimizer = promoted(schedule, batch=5)
        engine = FakeEngine()
        result = SearchRun(None, optimizer, engine).run(budget=20)
        # The reported best corner was actually evaluated by the engine.
        key = (tuple(result.best_corner), PPAWeights().key())
        assert key in engine._cache

    def test_archive_never_sees_predictions(self):
        schedule = PromotionSchedule(screen=10, promote=2,
                                     min_observations=4)
        optimizer = promoted(schedule, batch=5)
        engine = FakeEngine()
        result = SearchRun(None, optimizer, engine).run(budget=16)
        # Every archive point is a real evaluation (present in the
        # engine's cache); predictions only flow to the inner optimizer.
        for point in result.pareto_front:
            key = (tuple(point["corner"]), PPAWeights().key())
            assert key in engine._cache

    def test_still_finds_the_optimum(self):
        schedule = PromotionSchedule(screen=14, promote=3,
                                     min_observations=6)
        optimizer = promoted(schedule, batch=7, seed=1)
        engine = FakeEngine()
        result = SearchRun(None, optimizer, engine).run(budget=36)
        assert result.best_reward >= 0.98 * true_best().reward
        # ... while spending well under an exhaustive sweep.
        assert engine.flow_evaluations < SPACE.size

    def test_deterministic_under_fixed_seed(self):
        schedule = PromotionSchedule(screen=10, promote=2,
                                     min_observations=5)
        runs = []
        for _ in range(2):
            optimizer = promoted(schedule, batch=5, seed=2, inner_seed=3)
            result = SearchRun(None, optimizer, FakeEngine()).run(
                budget=18)
            runs.append((result.rewards, result.best_corner))
        assert runs[0] == runs[1]


class TestGatedBayes:
    def test_inner_bayes_never_learns_from_backfills(self):
        """A promotion-gated BayesianOptimizer must train its ensemble
        on ground truth only — learning from its own pessimistic
        back-fills would self-confirm every guess."""
        from repro.search import BayesianOptimizer
        inner = BayesianOptimizer(SPACE, seed=0, batch=5, init=4)
        schedule = PromotionSchedule(screen=10, promote=2,
                                     min_observations=4)
        optimizer = PromotedOptimizer(inner, SPACE, schedule=schedule,
                                      weights=PPAWeights(),
                                      model_config=FAST, seed=0)
        SearchRun(None, optimizer, FakeEngine()).run(budget=16)
        assert optimizer.backfilled > 0
        # The inner optimizer was told real + predicted records, but
        # its ensemble observed only the real subset of its own asks —
        # never more rows than ground-truth evaluations exist, and
        # strictly fewer than it was told (the back-fills were
        # filtered, not learned).
        assert len(inner.surrogate) < inner.told
        assert len(inner.surrogate) <= optimizer.told
