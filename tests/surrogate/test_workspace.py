"""Workspace integration: record stores and surrogate model artifacts."""

import numpy as np
import pytest

from repro.api import Workspace
from repro.surrogate import EnsembleConfig, RecordHarvester

from .conftest import SPACE, analytic_records

FAST = EnsembleConfig(members=2, hidden=8, epochs=30, seed=0)


def harvest(workspace, count=12):
    harvester = RecordHarvester(workspace.record_store())
    harvester.observe(None, analytic_records(SPACE.points()[:count]))
    return harvester


class TestRecordStoreRoundTrip:
    def test_rows_accumulate_across_workspace_instances(self, tmp_path):
        first = Workspace(tmp_path)
        assert harvest(first, 10).harvested == 10
        # A second process over the same root sees the rows and
        # re-featurizes nothing for known evaluations.
        second = Workspace(tmp_path)
        harvester = harvest(second, 10)
        assert harvester.harvested == 0
        assert harvester.skipped == 10
        assert harvester.featurizer.calls == 0
        assert len(second.record_store()) == 10

    def test_store_memoized_per_featurizer(self, tmp_path):
        ws = Workspace(tmp_path)
        assert ws.record_store() is ws.record_store()

    def test_stats_count_rows(self, tmp_path):
        ws = Workspace(tmp_path)
        harvest(ws, 9)
        stats = ws.stats()["surrogate"]
        assert stats["record_rows"] == 9
        assert stats["record_stores"] == 1


class TestSurrogateModelArtifact:
    def test_train_registers_and_reload_skips_training(self, tmp_path):
        ws = Workspace(tmp_path)
        harvest(ws, 12)
        model = ws.surrogate_model(FAST)
        assert ws.counters["surrogates_trained"] == 1
        rows = [r for r in ws.list_artifacts() if r["kind"] == "surrogate"]
        assert len(rows) == 1 and rows[0]["exists"]

        fresh = Workspace(tmp_path)
        loaded = fresh.surrogate_model(FAST)
        assert fresh.counters["surrogates_trained"] == 0
        assert fresh.counters["surrogates_loaded"] == 1
        assert loaded.fingerprint() == model.fingerprint()

    def test_retrains_when_store_grows(self, tmp_path):
        ws = Workspace(tmp_path)
        harvest(ws, 12)
        first = ws.surrogate_model(FAST)
        harvester = RecordHarvester(ws.record_store())
        harvester.observe(None, analytic_records(SPACE.points()[12:20]))
        second = ws.surrogate_model(FAST)
        assert second.trained_rows == 20
        assert second.fingerprint() != first.fingerprint()
        assert ws.counters["surrogates_trained"] == 2

    def test_refuses_thin_stores(self, tmp_path):
        ws = Workspace(tmp_path)
        harvest(ws, 3)
        with pytest.raises(ValueError, match="need >= 8"):
            ws.surrogate_model(FAST)

    def test_gc_reclaims_surrogate_artifacts(self, tmp_path):
        ws = Workspace(tmp_path)
        harvest(ws, 12)
        ws.surrogate_model(FAST)
        result = ws.gc(kinds=("surrogate",))
        kinds = {r["kind"] for r in result["removed"]}
        assert kinds == {"surrogate"}
        # Model npz and the record store jsonl are both gone.
        assert not list(ws.surrogate_dir.glob("*.npz"))
        assert not list((ws.surrogate_dir / "records").glob("*.jsonl"))
        assert len(ws.record_store()) == 0

    def test_gc_dry_run_touches_nothing(self, tmp_path):
        ws = Workspace(tmp_path)
        harvest(ws, 12)
        ws.surrogate_model(FAST)
        before = ws.stats()["surrogate"]
        result = ws.gc(kinds=("surrogate",), dry_run=True)
        assert result["removed"]
        assert ws.stats()["surrogate"] == before
