"""Record harvesting: featurizer, content-keyed store, engine listener."""

import numpy as np
import pytest

from repro.charlib import Corner
from repro.eda import build_benchmark
from repro.engine.hashing import netlist_fingerprint
from repro.surrogate import (Featurizer, RecordHarvester, RecordStore,
                             targets_of)

from .conftest import SPACE, analytic_records


@pytest.fixture(scope="module")
def netlist():
    return build_benchmark("s298")


class TestFeaturizer:
    def test_corner_plus_netlist_features(self, netlist):
        f = Featurizer()
        row = f.features(netlist, Corner(1.1, 0.05, 0.9))
        assert row.shape == (len(f.names()),)
        # Corner descriptor leads, normalised around nominal.
        np.testing.assert_allclose(row[:3], [0.1, 0.25, -0.1],
                                   atol=1e-12)
        assert (row[3:] > 0).all()       # log(1 + counts) of a real design

    def test_netlist_features_cached_per_design(self, netlist):
        f = Featurizer()
        fp = netlist_fingerprint(netlist)
        f.features(netlist, Corner(1.0, 0.0, 1.0), netlist_fp=fp)
        f.features(netlist, Corner(0.9, 0.0, 1.0), netlist_fp=fp)
        assert f.calls == 2
        assert len(f._netlist_cache) == 1

    def test_fingerprint_separates_featurizations(self):
        assert Featurizer().fingerprint() == Featurizer().fingerprint()
        assert Featurizer().fingerprint() != \
            Featurizer(include_netlist=False).fingerprint()

        def extra(netlist, corner):
            return (corner.vdd_scale ** 2,)
        assert Featurizer(extra=extra).fingerprint() != \
            Featurizer().fingerprint()


class TestRecordStore:
    def test_add_and_dedupe(self, tmp_path):
        store = RecordStore(tmp_path)
        corner = Corner(1.0, 0.0, 1.0)
        key = store.row_key("design-a", corner)
        assert store.add(key, "design-a", corner, [0.0, 0.0, 0.0],
                         [-5.0, -7.0, 4.0])
        assert not store.add(key, "design-a", corner, [0.0, 0.0, 0.0],
                             [-5.0, -7.0, 4.0])
        assert len(store) == 1
        assert key in store

    def test_rows_survive_reload(self, tmp_path):
        store = RecordStore(tmp_path)
        for i, corner in enumerate(SPACE.points()[:7]):
            store.add(store.row_key("d", corner), "d", corner,
                      [float(i), 0.0, 0.0], [-5.0, -7.0, float(i)])
        fresh = RecordStore(tmp_path)
        assert len(fresh) == 7
        assert fresh.loaded == 7
        X, Y = fresh.matrices()
        assert X.shape == (7, 3) and Y.shape == (7, 3)
        assert fresh.designs() == {"d": 7}

    def test_distinct_designs_separate_matrices(self, tmp_path):
        store = RecordStore(tmp_path)
        corner = Corner(1.0, 0.0, 1.0)
        store.add(store.row_key("a", corner), "a", corner,
                  [0.0] * 3, [0.0] * 3)
        store.add(store.row_key("b", corner), "b", corner,
                  [1.0] * 3, [1.0] * 3)
        X, _ = store.matrices(design="a")
        assert len(X) == 1

    def test_torn_tail_is_skipped(self, tmp_path):
        store = RecordStore(tmp_path)
        corner = Corner(1.0, 0.0, 1.0)
        store.add(store.row_key("d", corner), "d", corner,
                  [0.0] * 3, [0.0] * 3)
        with open(store.path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "torn')
        assert len(RecordStore(tmp_path)) == 1


class TestFeatureStats:
    """The training envelope the predict edge scores drift against."""

    def test_empty_store_has_no_stats(self, tmp_path):
        store = RecordStore(tmp_path)
        assert store.feature_stats() == {}
        assert store.save_feature_stats() == {}
        assert not store.stats_path.exists()
        assert store.load_feature_stats() == {}

    def test_save_and_load_round_trip(self, tmp_path):
        store = RecordStore(tmp_path)
        for i, corner in enumerate(SPACE.points()[:5]):
            store.add(store.row_key("d", corner), "d", corner,
                      [float(i), 2.0, -float(i)], [-5.0, -7.0, 1.0])
        saved = store.save_feature_stats()
        loaded = RecordStore(tmp_path).load_feature_stats()
        assert loaded == saved
        assert loaded["rows"] == 5
        assert loaded["min"][0] == 0.0 and loaded["max"][0] == 4.0
        assert loaded["mean"][1] == 2.0 and loaded["std"][1] == 0.0
        assert loaded["featurizer"] == store.featurizer.fingerprint()

    def test_corrupt_stats_file_loads_as_empty(self, tmp_path):
        store = RecordStore(tmp_path)
        store.stats_path.write_text("{broken json")
        assert store.load_feature_stats() == {}


class TestRecordHarvester:
    def test_harvests_and_skips_known_rows(self, tmp_path, netlist):
        store = RecordStore(tmp_path)
        harvester = RecordHarvester(store)
        records = analytic_records(SPACE.points()[:5])
        harvester.observe(netlist, records)
        assert harvester.harvested == 5
        assert harvester.featurizer.calls == 5
        # The same records again: key lookups only, no featurization.
        harvester.observe(netlist, records)
        assert harvester.harvested == 5
        assert harvester.skipped == 5
        assert harvester.featurizer.calls == 5

    def test_fresh_harvester_reuses_persisted_store(self, tmp_path,
                                                    netlist):
        records = analytic_records(SPACE.points()[:5])
        RecordHarvester(RecordStore(tmp_path)).observe(netlist, records)
        fresh = RecordHarvester(RecordStore(tmp_path))
        fresh.observe(netlist, records)
        assert fresh.harvested == 0
        assert fresh.skipped == 5
        assert fresh.featurizer.calls == 0   # zero re-featurization
        assert fresh.stats()["store_rows"] == 5

    def test_predicted_records_are_not_ground_truth(self, tmp_path,
                                                    netlist):
        from dataclasses import replace
        store = RecordStore(tmp_path)
        harvester = RecordHarvester(store)
        (record,) = analytic_records(SPACE.points()[:1])
        harvester.observe(netlist, [replace(record, predicted=True)])
        assert len(store) == 0
        harvester.observe(netlist, [record])
        assert len(store) == 1

    def test_targets_are_log10_objectives(self, tmp_path, netlist):
        store = RecordStore(tmp_path)
        harvester = RecordHarvester(store)
        (record,) = analytic_records(SPACE.points()[:1])
        harvester.observe(netlist, [record])
        _, Y = store.matrices()
        np.testing.assert_allclose(Y[0], targets_of(record.result))


class TestEngineListener:
    """The record stream through a real EvaluationEngine (flow stubbed)."""

    class _Builder:
        def fingerprint(self):
            return "stub-builder"

        def build(self, corner):
            self.last_runtime_s = 0.0
            return {"corner": corner.key()}

    def _engine(self, monkeypatch):
        from repro.engine import engine as engine_mod
        from .conftest import smooth_ppa
        monkeypatch.setattr(engine_mod, "evaluate_system",
                            lambda netlist, library: smooth_ppa(
                                Corner(*library["corner"])))
        return engine_mod.EvaluationEngine(self._Builder())

    def test_listener_sees_misses_and_hits(self, tmp_path, monkeypatch,
                                           netlist):
        engine = self._engine(monkeypatch)
        store = RecordStore(tmp_path)
        harvester = RecordHarvester(store)
        engine.add_record_listener(harvester.observe)
        corners = SPACE.points()[:4]
        engine.evaluate_many(netlist, corners)
        assert harvester.harvested == 4
        # Warm pass: records arrive cached; harvest costs zero features.
        engine.evaluate_many(netlist, corners)
        assert harvester.harvested == 4
        assert harvester.skipped == 4
        assert harvester.featurizer.calls == 4

    def test_remove_listener_is_idempotent(self, tmp_path, monkeypatch,
                                           netlist):
        engine = self._engine(monkeypatch)
        harvester = RecordHarvester(RecordStore(tmp_path))
        engine.add_record_listener(harvester.observe)
        engine.add_record_listener(harvester.observe)   # no duplicate
        engine.evaluate_many(netlist, SPACE.points()[:2])
        assert harvester.harvested == 2
        engine.remove_record_listener(harvester.observe)
        engine.remove_record_listener(harvester.observe)
        engine.evaluate_many(netlist, SPACE.points()[2:4])
        assert harvester.harvested == 2
