"""Shared fixtures for the system-level surrogate tests.

The analytic ``FakeEngine`` landscape from the search suite doubles as
the surrogate test bed: fully controllable, millisecond evaluations,
and a known 45-point grid optimum the Bayesian acceptance tests race
towards.
"""

import numpy as np
import pytest

from repro.engine.records import EvaluationRecord, PPAWeights
from repro.stco import default_space

from ..search.conftest import FakeEngine, FakeResult, smooth_ppa

SPACE = default_space()


@pytest.fixture
def fake_engine():
    return FakeEngine()


def true_best(engine=None):
    """Exhaustive optimum of the analytic landscape on the 45 grid."""
    engine = engine if engine is not None else FakeEngine()
    records = engine.evaluate_many(None, SPACE.points(), PPAWeights())
    return max(records, key=lambda r: r.reward)


def analytic_records(corners, weights=None):
    """EvaluationRecords for ``corners`` under the analytic landscape."""
    weights = weights if weights is not None else PPAWeights()
    out = []
    for corner in corners:
        result = smooth_ppa(corner)
        out.append(EvaluationRecord(corner=corner, result=result,
                                    reward=weights.score(result),
                                    library_runtime_s=1e-3,
                                    flow_runtime_s=1e-3))
    return out


def synthetic_rows(n: int, seed: int = 0, noise: float = 0.0):
    """``(X, Y)`` rows from a smooth 3-knob → 3-objective map."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0, 1.0, size=(n, 3))
    Y = np.column_stack([
        -5.0 + 0.8 * X[:, 0] + 0.3 * X[:, 1] ** 2,
        -7.0 - 0.5 * X[:, 0] + 0.4 * (X[:, 1] + 0.2) ** 2,
        4.0 + 0.1 * X[:, 2]])
    if noise:
        Y = Y + rng.normal(0.0, noise, size=Y.shape)
    return X, Y
