"""Surrogate regressors: ridge baseline, deep ensemble, persistence."""

import numpy as np
import pytest

from repro.surrogate import (EnsembleConfig, EnsemblePPAModel,
                             RidgeSurrogate)

from .conftest import synthetic_rows

SMALL = EnsembleConfig(members=3, hidden=12, epochs=80, seed=0)


class TestRidge:
    def test_fits_smooth_map_better_than_mean(self):
        X, Y = synthetic_rows(60, seed=1)
        Xt, Yt = synthetic_rows(40, seed=2)
        model = RidgeSurrogate().fit(X, Y)
        mean, std = model.predict(Xt)
        assert std.max() == 0.0          # no epistemic term
        ridge_err = np.abs(mean - Yt).mean()
        mean_err = np.abs(Y.mean(axis=0) - Yt).mean()
        assert ridge_err < 0.3 * mean_err

    def test_rejects_empty_fit(self):
        with pytest.raises(ValueError, match="zero rows"):
            RidgeSurrogate().fit(np.zeros((0, 3)), np.zeros((0, 3)))


class TestEnsemble:
    def test_predicts_smooth_map(self):
        X, Y = synthetic_rows(60, seed=1)
        Xt, Yt = synthetic_rows(30, seed=2)
        model = EnsemblePPAModel(SMALL).fit(X, Y)
        mean, std = model.predict(Xt)
        assert mean.shape == Yt.shape and std.shape == Yt.shape
        assert np.abs(mean - Yt).mean() < \
            0.5 * np.abs(Y.mean(axis=0) - Yt).mean()
        assert (std >= 0).all()

    def test_uncertainty_shrinks_with_data(self):
        """The epistemic spread at probe points falls as rows accumulate
        — the property acquisition functions rely on."""
        Xt, _ = synthetic_rows(25, seed=9)
        spreads = []
        for n in (8, 64):
            X, Y = synthetic_rows(n, seed=1)
            model = EnsemblePPAModel(SMALL).fit(X, Y)
            _, std = model.predict(Xt)
            spreads.append(std.mean())
        assert spreads[1] < spreads[0]

    def test_members_disagree_far_from_data(self):
        X, Y = synthetic_rows(12, seed=1)
        model = EnsemblePPAModel(SMALL).fit(X, Y)
        near = model.predict(X)[1].mean()
        far = model.predict(np.full((5, 3), 4.0))[1].mean()
        assert far > near

    def test_fit_is_deterministic(self):
        X, Y = synthetic_rows(20, seed=1)
        a = EnsemblePPAModel(SMALL).fit(X, Y)
        b = EnsemblePPAModel(SMALL).fit(X, Y)
        Xt, _ = synthetic_rows(10, seed=3)
        np.testing.assert_array_equal(a.predict(Xt)[0], b.predict(Xt)[0])
        assert a.fingerprint() == b.fingerprint()

    def test_seed_changes_fingerprint(self):
        X, Y = synthetic_rows(20, seed=1)
        a = EnsemblePPAModel(SMALL).fit(X, Y)
        b = EnsemblePPAModel(
            EnsembleConfig(members=3, hidden=12, epochs=80, seed=7)
        ).fit(X, Y)
        assert a.fingerprint() != b.fingerprint()

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="expected X"):
            EnsemblePPAModel(SMALL).fit(np.zeros((4, 3)),
                                        np.zeros((4, 2)))


class TestPersistence:
    def test_npz_round_trip(self, tmp_path):
        X, Y = synthetic_rows(24, seed=1)
        model = EnsemblePPAModel(SMALL).fit(X, Y)
        path = tmp_path / "ensemble.npz"
        model.save(path)
        loaded = EnsemblePPAModel.load(path)
        Xt, _ = synthetic_rows(10, seed=4)
        np.testing.assert_allclose(loaded.predict(Xt)[0],
                                   model.predict(Xt)[0])
        np.testing.assert_allclose(loaded.predict(Xt)[1],
                                   model.predict(Xt)[1])
        assert loaded.fingerprint() == model.fingerprint()
        assert loaded.trained_rows == 24
        assert loaded.config == model.config

    def test_save_requires_fit(self, tmp_path):
        with pytest.raises(RuntimeError, match="unfitted"):
            EnsemblePPAModel(SMALL).save(tmp_path / "x.npz")
