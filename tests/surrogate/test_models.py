"""Surrogate regressors: ridge baseline, deep ensemble, persistence."""

import numpy as np
import pytest

from repro.surrogate import (EnsembleConfig, EnsemblePPAModel,
                             RidgeSurrogate)

from .conftest import synthetic_rows

SMALL = EnsembleConfig(members=3, hidden=12, epochs=80, seed=0)


class TestRidge:
    def test_fits_smooth_map_better_than_mean(self):
        X, Y = synthetic_rows(60, seed=1)
        Xt, Yt = synthetic_rows(40, seed=2)
        model = RidgeSurrogate().fit(X, Y)
        mean, std = model.predict(Xt)
        assert std.max() == 0.0          # no epistemic term
        ridge_err = np.abs(mean - Yt).mean()
        mean_err = np.abs(Y.mean(axis=0) - Yt).mean()
        assert ridge_err < 0.3 * mean_err

    def test_rejects_empty_fit(self):
        with pytest.raises(ValueError, match="zero rows"):
            RidgeSurrogate().fit(np.zeros((0, 3)), np.zeros((0, 3)))


class TestEnsemble:
    def test_predicts_smooth_map(self):
        X, Y = synthetic_rows(60, seed=1)
        Xt, Yt = synthetic_rows(30, seed=2)
        model = EnsemblePPAModel(SMALL).fit(X, Y)
        mean, std = model.predict(Xt)
        assert mean.shape == Yt.shape and std.shape == Yt.shape
        assert np.abs(mean - Yt).mean() < \
            0.5 * np.abs(Y.mean(axis=0) - Yt).mean()
        assert (std >= 0).all()

    def test_uncertainty_shrinks_with_data(self):
        """The epistemic spread at probe points falls as rows accumulate
        — the property acquisition functions rely on."""
        Xt, _ = synthetic_rows(25, seed=9)
        spreads = []
        for n in (8, 64):
            X, Y = synthetic_rows(n, seed=1)
            model = EnsemblePPAModel(SMALL).fit(X, Y)
            _, std = model.predict(Xt)
            spreads.append(std.mean())
        assert spreads[1] < spreads[0]

    def test_members_disagree_far_from_data(self):
        X, Y = synthetic_rows(12, seed=1)
        model = EnsemblePPAModel(SMALL).fit(X, Y)
        near = model.predict(X)[1].mean()
        far = model.predict(np.full((5, 3), 4.0))[1].mean()
        assert far > near

    def test_fit_is_deterministic(self):
        X, Y = synthetic_rows(20, seed=1)
        a = EnsemblePPAModel(SMALL).fit(X, Y)
        b = EnsemblePPAModel(SMALL).fit(X, Y)
        Xt, _ = synthetic_rows(10, seed=3)
        np.testing.assert_array_equal(a.predict(Xt)[0], b.predict(Xt)[0])
        assert a.fingerprint() == b.fingerprint()

    def test_seed_changes_fingerprint(self):
        X, Y = synthetic_rows(20, seed=1)
        a = EnsemblePPAModel(SMALL).fit(X, Y)
        b = EnsemblePPAModel(
            EnsembleConfig(members=3, hidden=12, epochs=80, seed=7)
        ).fit(X, Y)
        assert a.fingerprint() != b.fingerprint()

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="expected X"):
            EnsemblePPAModel(SMALL).fit(np.zeros((4, 3)),
                                        np.zeros((4, 2)))


class TestStackedForward:
    def test_matches_per_member_loop_exactly(self):
        """The (K, n, d) stacked path is the same arithmetic as the
        per-member MLP loop — bit-identical, not just close."""
        X, Y = synthetic_rows(24, seed=1)
        model = EnsemblePPAModel(SMALL).fit(X, Y)
        Xt, _ = synthetic_rows(15, seed=4)
        np.testing.assert_array_equal(model.predict_members_batch(Xt),
                                      model.predict_members(Xt))
        mean_b, std_b = model.predict_batch(Xt)
        mean, std = model.predict(Xt)
        np.testing.assert_array_equal(mean_b, mean)
        np.testing.assert_array_equal(std_b, std)

    def test_survives_npz_round_trip(self, tmp_path):
        X, Y = synthetic_rows(24, seed=1)
        model = EnsemblePPAModel(SMALL).fit(X, Y)
        path = tmp_path / "e.npz"
        model.save(path)
        loaded = EnsemblePPAModel.load(path)
        Xt, _ = synthetic_rows(9, seed=5)
        np.testing.assert_allclose(loaded.predict_batch(Xt)[0],
                                   model.predict_batch(Xt)[0])

    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="before fit"):
            EnsemblePPAModel(SMALL).predict_batch(np.zeros((2, 3)))


class TestRefit:
    def test_warm_refit_improves_on_grown_data(self):
        """Refit continues from the current weights on the grown row
        set; the result predicts the new rows better than the stale
        model did."""
        X0, Y0 = synthetic_rows(16, seed=1)
        model = EnsemblePPAModel(SMALL).fit(X0, Y0)
        X1, Y1 = synthetic_rows(48, seed=2)
        stale_err = np.abs(model.predict(X1)[0] - Y1).mean()
        model.refit(X1, Y1)
        fresh_err = np.abs(model.predict(X1)[0] - Y1).mean()
        assert fresh_err < stale_err
        assert model.trained_rows == 48

    def test_refit_changes_fingerprint_and_keeps_config(self):
        X0, Y0 = synthetic_rows(16, seed=1)
        model = EnsemblePPAModel(SMALL).fit(X0, Y0)
        before = model.fingerprint()
        X1, Y1 = synthetic_rows(24, seed=2)
        model.refit(X1, Y1)
        assert model.fingerprint() != before
        assert model.config == SMALL

    def test_refit_on_unfitted_model_is_a_fit(self):
        X, Y = synthetic_rows(20, seed=1)
        model = EnsemblePPAModel(SMALL)
        model.refit(X, Y)
        assert model.trained_rows == 20
        mean, std = model.predict(X)
        assert mean.shape == Y.shape and (std >= 0).all()

    def test_refit_validates_width(self):
        X, Y = synthetic_rows(16, seed=1)
        model = EnsemblePPAModel(SMALL).fit(X, Y)
        with pytest.raises(ValueError, match="expected X"):
            model.refit(np.zeros((10, 5)), np.zeros((10, 3)))

    def test_refit_is_deterministic(self):
        X0, Y0 = synthetic_rows(16, seed=1)
        X1, Y1 = synthetic_rows(32, seed=2)
        a = EnsemblePPAModel(SMALL).fit(X0, Y0)
        b = EnsemblePPAModel(SMALL).fit(X0, Y0)
        a.refit(X1, Y1)
        b.refit(X1, Y1)
        assert a.fingerprint() == b.fingerprint()


class TestPersistence:
    def test_npz_round_trip(self, tmp_path):
        X, Y = synthetic_rows(24, seed=1)
        model = EnsemblePPAModel(SMALL).fit(X, Y)
        path = tmp_path / "ensemble.npz"
        model.save(path)
        loaded = EnsemblePPAModel.load(path)
        Xt, _ = synthetic_rows(10, seed=4)
        np.testing.assert_allclose(loaded.predict(Xt)[0],
                                   model.predict(Xt)[0])
        np.testing.assert_allclose(loaded.predict(Xt)[1],
                                   model.predict(Xt)[1])
        assert loaded.fingerprint() == model.fingerprint()
        assert loaded.trained_rows == 24
        assert loaded.config == model.config

    def test_save_requires_fit(self, tmp_path):
        with pytest.raises(RuntimeError, match="unfitted"):
            EnsemblePPAModel(SMALL).save(tmp_path / "x.npz")
