"""Bayesian ask/tell optimizers: acquisition math, determinism, and the
acceptance race — ``bayes`` must reach the 45-point grid optimum in
strictly fewer engine misses (median over 5 seeds) than ``random``."""

import numpy as np
import pytest

from repro.engine.records import PPAWeights
from repro.search import BayesianOptimizer, SearchRun, make_optimizer
from repro.surrogate import (expected_improvement, reward_stats,
                             scalarize_log, upper_confidence_bound)

from ..search.conftest import FakeEngine
from .conftest import SPACE, true_best

SEEDS = range(5)
BUDGET = 45


def drive(optimizer, budget=BUDGET):
    engine = FakeEngine()
    return SearchRun(None, optimizer, engine).run(budget=budget), engine


class TestAcquisitionMath:
    def test_scalarize_matches_ppa_weights(self):
        from .conftest import analytic_records
        weights = PPAWeights(power=1.3, performance=0.9, area=0.4)
        (record,) = analytic_records(SPACE.points()[:1], weights)
        logs = [np.log10(record.result.total_power_w),
                np.log10(record.result.min_period_s),
                np.log10(record.result.area_um2)]
        assert scalarize_log(logs, weights) == pytest.approx(record.reward)

    def test_reward_stats_shapes(self):
        members = np.zeros((4, 6, 3))
        mean, std = reward_stats(members)
        assert mean.shape == (6,) and std.shape == (6,)
        assert (std == 0).all()

    def test_ei_prefers_uncertain_when_means_tie(self):
        ei = expected_improvement([1.0, 1.0], [0.0, 0.5], best=1.2)
        assert ei[1] > ei[0]
        assert ei[0] == 0.0              # no spread, below incumbent

    def test_ei_degrades_to_exploitation_without_spread(self):
        ei = expected_improvement([2.0, 1.0], [0.0, 0.0], best=1.5,
                                  xi=0.0)
        np.testing.assert_allclose(ei, [0.5, 0.0])

    def test_ucb_is_optimistic(self):
        np.testing.assert_allclose(
            upper_confidence_bound([1.0, 1.0], [0.0, 1.0], beta=2.0),
            [1.0, 3.0])


class TestBayesianOptimizer:
    def test_registry_names(self):
        assert make_optimizer("bayes", SPACE).name == "bayes"
        assert make_optimizer("ucb", SPACE).name == "ucb"

    @pytest.mark.parametrize("name", ["bayes", "ucb"])
    def test_runs_and_finds_finite_best(self, name):
        result, _ = drive(make_optimizer(name, SPACE, seed=0), budget=14)
        assert np.isfinite(result.best_reward)
        assert result.surrogate["observations"] == 14
        assert result.surrogate["fits"] > 0

    def test_deterministic_under_fixed_seed(self):
        a, _ = drive(BayesianOptimizer(SPACE, seed=5), budget=18)
        b, _ = drive(BayesianOptimizer(SPACE, seed=5), budget=18)
        assert a.rewards == b.rewards
        assert a.best_corner == b.best_corner

    def test_never_reasks_on_grids(self):
        result, _ = drive(BayesianOptimizer(SPACE, seed=1), budget=30)
        assert result.evaluations == len(result.rewards)

    def test_done_after_grid_exhaustion(self):
        optimizer = BayesianOptimizer(SPACE, seed=0, batch=5)
        result, engine = drive(optimizer, budget=100)
        assert optimizer.done
        assert result.evaluations == SPACE.size
        assert engine.flow_evaluations == SPACE.size

    def test_works_on_continuous_spaces(self):
        from repro.search import box_space
        space = box_space(step=0.05, vdd_scale=(0.8, 1.2),
                          vth_shift=(-0.1, 0.1), cox_scale=(0.8, 1.2))
        result, _ = drive(BayesianOptimizer(space, seed=0, init=4),
                          budget=12)
        assert np.isfinite(result.best_reward)


class TestAcceptance:
    """bayes beats random on evaluations-to-optimum, median of 5 seeds."""

    def _misses_to_optimum(self, name: str) -> list:
        best_key = true_best().corner.key()
        misses = []
        for seed in SEEDS:
            optimizer = make_optimizer(name, SPACE, seed=seed)
            result, _ = drive(optimizer)
            # Cold engine: engine misses accumulate one per unique
            # corner, so the unique-eval index of the optimum *is* the
            # engine-miss count spent reaching it. Runs that never find
            # the optimum are charged the full sweep plus one.
            found = result.best_corner == best_key
            misses.append(result.evaluations_to_optimum if found
                          else SPACE.size + 1)
        return misses

    def test_bayes_beats_random(self):
        bayes = self._misses_to_optimum("bayes")
        random = self._misses_to_optimum("random")
        assert np.median(bayes) < np.median(random), (bayes, random)

    def test_bayes_finds_the_optimum_every_seed(self):
        assert max(self._misses_to_optimum("bayes")) <= SPACE.size
