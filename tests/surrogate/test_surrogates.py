"""Tests for the RelGAT surrogates and the Table II training pipeline."""

import numpy as np
import pytest

from repro.nn import TrainConfig, batch_graphs
from repro.surrogate import (IVPredictor, PoissonEmulator, RelGATConfig,
                             SurrogateTrainer, ci_iv_config,
                             ci_poisson_config, paper_iv_config,
                             paper_poisson_config, train_surrogates)
from repro.tcad import TCADDatasetBuilder

SMALL_MESH = {"nx_channel": 7, "nx_overlap": 2, "ny_semi": 3, "ny_ox": 3}


@pytest.fixture(scope="module")
def dataset():
    builder = TCADDatasetBuilder(seed=11, mesh_resolution=SMALL_MESH)
    return builder.build(n_train=10, n_val=3, n_test=3, n_unseen=3)


class TestRelGATConfigs:
    def test_paper_poisson_size(self):
        model = PoissonEmulator(paper_poisson_config(31))
        n = model.num_parameters()
        assert 0.7e6 < n < 1.3e6, n

    def test_paper_poisson_depth_and_heads(self):
        cfg = paper_poisson_config(31)
        assert cfg.num_layers == 12
        assert cfg.heads == 2

    def test_paper_iv_size(self):
        model = IVPredictor(paper_iv_config(32))
        n = model.num_parameters()
        assert 0.1e6 < n < 0.22e6, n

    def test_paper_iv_depth_and_heads(self):
        cfg = paper_iv_config(32)
        assert cfg.num_layers == 3
        assert cfg.heads == 1

    def test_iv_head_is_4_layer_mlp(self):
        model = IVPredictor(ci_iv_config(32))
        linear_count = sum(1 for m in model.head.modules()
                           if m.__class__.__name__ == "Linear")
        assert linear_count == 4

    def test_poisson_head_must_output_scalar(self):
        cfg = ci_poisson_config(31)
        bad = RelGATConfig(**{**cfg.__dict__, "mlp_dims": (16, 3)})
        with pytest.raises(ValueError):
            PoissonEmulator(bad)


class TestForwardShapes:
    def test_poisson_node_outputs(self, dataset):
        graphs = dataset.poisson["train"][:3]
        model = PoissonEmulator(
            ci_poisson_config(graphs[0].num_node_features))
        batch = batch_graphs(graphs)
        out = model.forward_batch(batch)
        assert out.shape == (batch.num_nodes, 1)

    def test_iv_graph_outputs(self, dataset):
        graphs = dataset.iv["train"][:3]
        model = IVPredictor(ci_iv_config(graphs[0].num_node_features))
        batch = batch_graphs(graphs)
        out = model.forward_batch(batch)
        assert out.shape == (3, 1)

    def test_predict_potential_volts(self, dataset):
        g = dataset.poisson["train"][0]
        model = PoissonEmulator(ci_poisson_config(g.num_node_features))
        psi = model.predict_potential(g)
        assert psi.shape == (g.num_nodes,)
        assert np.all(np.isfinite(psi))

    def test_predict_current_amps(self, dataset):
        graphs = dataset.iv["train"][:2]
        model = IVPredictor(ci_iv_config(graphs[0].num_node_features))
        ids = model.predict_current(graphs)
        assert ids.shape == (2,)
        assert np.all(ids > 0)


class TestTrainingPipeline:
    @pytest.fixture(scope="class")
    def results(self, dataset):
        cfg = TrainConfig(epochs=8, batch_size=4, lr=3e-3, grad_clip=2.0)
        metrics, pm, im = train_surrogates(dataset, cfg)
        return metrics, pm, im

    def test_metrics_structure(self, results):
        metrics, _, _ = results
        assert set(metrics) == {"poisson", "iv"}
        for m in metrics.values():
            assert np.isfinite(m.mse_val)
            assert np.isfinite(m.mse_test)
            assert np.isfinite(m.mse_unseen)
            assert m.train_epochs > 0

    def test_models_returned_trained(self, results):
        _, pm, im = results
        assert pm is not None and im is not None

    def test_training_improves_over_untrained(self, dataset, results):
        """A trained Poisson emulator must beat a freshly initialised one."""
        metrics, pm, _ = results
        graphs = dataset.poisson["test"]
        fresh = PoissonEmulator(
            ci_poisson_config(graphs[0].num_node_features))
        batch = batch_graphs(graphs)
        from repro.nn import no_grad, mse
        with no_grad():
            fresh_mse = mse(fresh.forward_batch(batch).data, batch.y)
            trained_mse = mse(pm.forward_batch(batch).data, batch.y)
        assert trained_mse < fresh_mse

    def test_config_mismatch_raises(self, dataset):
        bad = ci_poisson_config(999)
        with pytest.raises(ValueError):
            SurrogateTrainer(dataset, poisson_config=bad).train()

    def test_metrics_row_format(self, results):
        metrics, _, _ = results
        row = metrics["poisson"].row()
        assert row[0] == "Poisson Emulator"
        assert len(row) == 5
