"""Setup shim for offline editable installs (no `wheel` package available).

All metadata and the src-layout package configuration live in
``setup.cfg``; keeping a plain ``setup.py`` (and **no** ``pyproject.toml``)
lets ``pip install -e .`` take the legacy ``setup.py develop`` path, which
works in this container's offline toolchain (setuptools without ``wheel``).
"""
from setuptools import setup

setup()
