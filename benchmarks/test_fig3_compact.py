"""Fig. 3: unified compact model vs measured I-V, three technologies.

Extracts Eq. (1) parameters from synthetic measured devices at the paper's
geometries (CNT 25/125 um, LTPS 16/40 um, IGZO 20/30 um) and checks the
model overlays the curves — the figure's claim.
"""

import numpy as np
import pytest

from repro.compact import (TFTModel, extract_parameters, measured_device,
                           technology_presets)
from repro.utils import print_table


def _run():
    results = {}
    rows = []
    for tech in ("cnt", "ltps", "igzo"):
        device = measured_device(tech, seed=1)
        template = technology_presets()[tech].with_updates(
            l=device.true_params.l, w=device.true_params.w)
        res = extract_parameters(device.all_data(), template)
        model = TFTModel(res.params)
        meas = device.all_data()
        i_model = model.ids(meas.vgs, meas.vds)
        on = np.abs(meas.ids) > np.abs(meas.ids).max() * 1e-3
        overlay = float(np.mean(np.abs(
            (i_model[on] - meas.ids[on]) / meas.ids[on])))
        results[tech] = (res, overlay)
        rows.append([tech.upper(),
                     f"{device.true_params.l * 1e6:.0f}/"
                     f"{device.true_params.w * 1e6:.0f}",
                     f"{res.params.vth:+.3f}",
                     f"{res.params.mu0 * 1e4:.2f}",
                     f"{res.params.gamma:.2f}",
                     f"{overlay * 100:.1f}%",
                     "yes" if res.converged else "no"])
    print()
    print_table(["Tech", "L/W um", "Vth", "mu0 cm2/Vs", "gamma",
                 "overlay err", "converged"],
                rows, title="Fig. 3: compact model fits to measured I-V")
    return results


def test_fig3_compact_model_validation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    for tech, (res, overlay) in results.items():
        assert res.converged, tech
        # Fig. 3's visual criterion: the model overlays the measurement.
        assert overlay < 0.10, tech
        # Parameters recover the hidden truth to engineering accuracy.
        dev = measured_device(tech, seed=1)
        assert res.params.vth == pytest.approx(dev.true_params.vth,
                                               abs=0.2)
