"""Table II: MSE of the surrogate TCAD models.

Trains the Poisson emulator and IV predictor on a physics-generated device
dataset (CI-scale by default; set REPRO_FULL=1 for a larger run) and
prints the validation / testing / unseen MSE plus unseen R2 — the paper's
Table II structure. Absolute MSE differs from the paper (50k devices,
1M-parameter model there); the reproduction target is the *shape*:
test ~ validation (no overfit), unseen ~ test (generalisation), R2 -> 1.
"""

import os

import pytest

from repro.nn import TrainConfig
from repro.surrogate import train_surrogates
from repro.tcad import TCADDatasetBuilder
from repro.utils import print_table

FULL = os.environ.get("REPRO_FULL") == "1"
SMALL_MESH = {"nx_channel": 9, "nx_overlap": 3, "ny_semi": 4, "ny_ox": 3}


def _run():
    if FULL:
        counts = dict(n_train=400, n_val=80, n_test=80, n_unseen=120)
        train_cfg = TrainConfig(epochs=80, batch_size=16, lr=2e-3,
                                grad_clip=2.0, early_stop_patience=20)
    else:
        counts = dict(n_train=70, n_val=15, n_test=15, n_unseen=15)
        train_cfg = TrainConfig(epochs=30, batch_size=8, lr=3e-3,
                                grad_clip=2.0)
    builder = TCADDatasetBuilder(seed=42, mesh_resolution=SMALL_MESH)
    dataset = builder.build(**counts)
    metrics, _, _ = train_surrogates(dataset, train_cfg)
    rows = [[m.name, f"{m.mse_val:.3e}", f"{m.mse_test:.3e}",
             f"{m.mse_unseen:.3e}", f"{m.r2_unseen:.4f}"]
            for m in metrics.values()]
    print()
    print_table(["Model", "Validation", "Testing", "Unseen", "R2"],
                rows, title="Table II: MSE of surrogate TCAD "
                            f"({'full' if FULL else 'CI'} profile, "
                            f"{counts['n_train']} train devices)")
    return metrics


def test_table2_surrogate_tcad(benchmark):
    metrics = benchmark.pedantic(_run, rounds=1, iterations=1)
    poisson, iv = metrics["poisson"], metrics["iv"]
    # Shape criteria (paper: val ~ test ~ unseen, R2 = 0.9999).
    assert poisson.mse_test < 10 * poisson.mse_val + 1e-6
    assert poisson.mse_unseen < 20 * poisson.mse_val + 1e-6
    assert poisson.r2_unseen > 0.5
    assert iv.mse_test < 20 * iv.mse_val + 1e-3
    assert iv.r2_unseen > 0.0
