"""Search-quality bench: evaluations-to-optimum and hypervolume per
optimizer, written to ``BENCH_search.json``.

Every optimizer races the same 45-point default space on ≥3 benchmark
netlists through a **serial** engine — unlike the engine-speedup bench
this is runner-independent: it measures *search efficiency* (how many
engine evaluations each strategy spends before finding the optimum, and
how much of the Pareto surface it uncovers), not wall-clock parallelism.

Per (netlist, optimizer) the bench records:

* ``evaluations`` / ``engine_misses`` — distinct corners asked and flows
  actually run (each optimizer gets a cold engine, so misses = unique);
* ``evaluations_to_optimum`` — unique-eval index at which the eventual
  best corner was first evaluated;
* ``found_optimum`` — whether that best equals the exhaustive grid's;
* ``hypervolume`` — final archive hypervolume, measured against one
  shared reference per netlist (the exhaustive sweep's nadir), so the
  numbers are comparable across optimizers.
"""

import json
from pathlib import Path

import pytest

from repro.charlib import (CharConfig, CharTrainConfig, Corner,
                           GNNLibraryBuilder, build_char_dataset,
                           train_char_model)
from repro.eda import build_benchmark
from repro.engine import EngineConfig, EvaluationEngine, PPAWeights
from repro.search import (ParetoArchive, SearchRun, make_optimizer)
from repro.stco import default_space
from repro.utils import print_table

CELLS = ("INV_X1", "NAND2_X1", "NOR2_X1", "AND2_X1", "DFF_X1")
CFG = CharConfig(slews=(8e-9,), loads=(15e-15,), n_bisect=3, max_steps=200)
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_search.json"

NETLISTS = ("s298", "s386", "s526")
OPTIMIZERS = ("random", "qlearning", "anneal", "evolution", "nsga2",
              "surrogate", "portfolio")
BUDGET = 32


@pytest.fixture(scope="module")
def builder():
    dataset = build_char_dataset(
        "ltps", cells=CELLS,
        train_corners=[Corner(1.0, 0.0, 1.0), Corner(0.9, 0.05, 1.1)],
        test_corners=[Corner(0.95, 0.02, 1.05)],
        config=CFG)
    model = train_char_model(dataset,
                             train_config=CharTrainConfig(epochs=15))
    return GNNLibraryBuilder(model, dataset, cells=CELLS, config=CFG)


def test_search_quality(builder):
    space = default_space()
    weights = PPAWeights()
    corners = space.points()
    report = {"space_size": space.size, "budget": BUDGET,
              "netlists": {}}
    rows = []
    for name in NETLISTS:
        netlist = build_benchmark(name)

        # Exhaustive sweep: ground truth optimum + shared hv reference.
        grid_engine = EvaluationEngine(builder, EngineConfig())
        truth_archive = ParetoArchive()
        records = grid_engine.evaluate_many(netlist, corners, weights)
        truth_archive.add_many(records)
        best = max(records, key=lambda r: r.reward)
        reference = truth_archive.reference_point()
        per_netlist = {"grid": {
            "evaluations": space.size,
            "engine_misses": space.size,
            "evaluations_to_optimum": records.index(best) + 1,
            "found_optimum": True,
            "best_reward": float(best.reward),
            "hypervolume": truth_archive.hypervolume(reference),
            "pareto_points": len(truth_archive)}}

        for opt_name in OPTIMIZERS:
            engine = EvaluationEngine(builder, EngineConfig())
            optimizer = make_optimizer(opt_name, space, seed=0,
                                       weights=weights, builder=builder)
            result = SearchRun(netlist, optimizer, engine,
                               weights=weights,
                               hv_reference=reference).run(budget=BUDGET)
            per_netlist[opt_name] = {
                "evaluations": result.evaluations,
                "engine_misses": result.engine_misses,
                "evaluations_to_optimum": result.evaluations_to_optimum,
                "found_optimum": result.best_corner == best.corner.key(),
                "best_reward": float(result.best_reward),
                "hypervolume": result.hypervolume,
                "pareto_points": len(result.pareto_front)}
            # Every optimizer stays within budget; nothing exceeds the
            # exhaustive sweep's cost.
            assert result.engine_misses <= space.size
            assert result.evaluations <= BUDGET
            assert per_netlist[opt_name]["hypervolume"] \
                <= per_netlist["grid"]["hypervolume"] + 1e-9

        # The headline claim: guided search beats exhaustive sweep on
        # evaluations while still finding the optimum.
        winners = [o for o in ("anneal", "evolution", "portfolio")
                   if per_netlist[o]["found_optimum"]
                   and per_netlist[o]["engine_misses"] < space.size]
        assert winners, f"no guided optimizer found the optimum on {name}"

        report["netlists"][name] = per_netlist
        for opt_name, row in per_netlist.items():
            rows.append([name, opt_name, str(row["evaluations"]),
                         str(row["evaluations_to_optimum"]),
                         "yes" if row["found_optimum"] else "no",
                         f"{row['hypervolume']:.3f}"])

    ARTIFACT.write_text(json.dumps(report, indent=1))
    print_table(["Netlist", "Optimizer", "Evals", "Evals→opt", "Found",
                 "Hypervolume"], rows,
                title=f"Search quality on the {space.size}-point space "
                      f"(budget {BUDGET})")
