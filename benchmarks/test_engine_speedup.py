"""Engine speedup bench: cached vs uncached, serial vs batched vs parallel.

Runs the same ≥16-corner sweep through the evaluation engine in several
configurations and writes the measured trajectory to ``BENCH_engine.json``
at the repo root:

* ``serial_uncached`` — the seed-equivalent baseline (per-cell GNN
  characterization, one corner at a time);
* ``batched_uncached`` — packed forward passes across cells × corners;
* ``warm_cache`` — the same sweep again on the warm engine (zero
  re-characterizations, zero flows);
* ``parallel_uncached`` — multiprocessing backend (its win over serial
  is asserted only on multi-core machines; the artifact records the
  numbers either way);
* ``disk_warm`` — a *fresh* engine pointed at a persisted cache
  directory (the cross-campaign reuse path).
"""

import json
import time
from pathlib import Path

import pytest

from repro.charlib import (CharConfig, CharTrainConfig, Corner,
                           GNNLibraryBuilder, build_char_dataset,
                           train_char_model)
from repro.eda import build_benchmark
from repro.engine import (EngineConfig, EvaluationEngine, PPAWeights,
                          available_workers)
from repro.stco import DesignSpace
from repro.utils import print_table

CELLS = ("INV_X1", "NAND2_X1", "NOR2_X1", "AND2_X1", "XOR2_X1", "DFF_X1")
CFG = CharConfig(slews=(8e-9,), loads=(15e-15,), n_bisect=3, max_steps=200)
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: 4 × 2 × 2 = 16-corner sweep (the acceptance floor).
SWEEP = DesignSpace(vdd_scales=(0.85, 0.95, 1.05, 1.15),
                    vth_shifts=(-0.05, 0.05), cox_scales=(0.9, 1.1))


@pytest.fixture(scope="module")
def builder():
    dataset = build_char_dataset(
        "ltps", cells=CELLS,
        train_corners=[Corner(1.0, 0.0, 1.0), Corner(0.9, 0.05, 1.1)],
        test_corners=[Corner(0.95, 0.02, 1.05)],
        config=CFG)
    model = train_char_model(dataset,
                             train_config=CharTrainConfig(epochs=15))
    return GNNLibraryBuilder(model, dataset, cells=CELLS, config=CFG)


def _sweep(engine, netlist, corners):
    t0 = time.perf_counter()
    records = engine.evaluate_many(netlist, corners, PPAWeights())
    wall = time.perf_counter() - t0
    return records, {
        "wall_s": wall,
        "characterizations": engine.characterizations,
        "flow_evaluations": engine.flow_evaluations,
        "char_s": engine.timing.totals.get("characterization", 0.0),
    }


def test_engine_speedup_trajectory(builder, tmp_path):
    netlist = build_benchmark("s298")
    corners = SWEEP.points()
    assert len(corners) >= 16
    cpus = available_workers()
    runs = {}

    # 1) Seed-equivalent serial baseline, cold.
    serial = EvaluationEngine(builder, EngineConfig())
    reference, runs["serial_uncached"] = _sweep(serial, netlist, corners)

    # 2) Batched characterization, cold.
    batched = EvaluationEngine(
        builder, EngineConfig(batch_characterization=True))
    brecords, runs["batched_uncached"] = _sweep(batched, netlist, corners)
    assert [r.corner.key() for r in brecords] == [
        r.corner.key() for r in reference]

    # 3) Warm in-memory cache: the sweep again on the serial engine.
    serial.reset_counters()
    wrecords, runs["warm_cache"] = _sweep(serial, netlist, corners)
    assert all(r.cached for r in wrecords)
    assert runs["warm_cache"]["characterizations"] == 0
    assert runs["warm_cache"]["flow_evaluations"] == 0
    assert [r.reward for r in wrecords] == [r.reward for r in reference]

    # 4) Parallel backend, cold.
    workers = max(2, min(4, cpus))
    with EvaluationEngine(builder, EngineConfig(
            backend=f"process:{workers}")) as parallel:
        precords, runs["parallel_uncached"] = _sweep(parallel, netlist,
                                                     corners)
    runs["parallel_uncached"]["workers"] = workers
    assert [r.reward for r in precords] == [r.reward for r in reference]

    # 5) Cross-run persistence: fresh engine on a warmed disk cache.
    config = EngineConfig(cache_dir=tmp_path / "engine-cache")
    _sweep(EvaluationEngine(builder, config), netlist, corners)
    fresh = EvaluationEngine(builder, config)
    drecords, runs["disk_warm"] = _sweep(fresh, netlist, corners)
    assert runs["disk_warm"]["characterizations"] == 0
    assert [r.reward for r in drecords] == [r.reward for r in reference]

    speedups = {
        "warm_cache_vs_serial": (runs["serial_uncached"]["wall_s"]
                                 / max(runs["warm_cache"]["wall_s"], 1e-9)),
        "batched_char_vs_serial_char": (
            runs["serial_uncached"]["char_s"]
            / max(runs["batched_uncached"]["char_s"], 1e-9)),
        "batched_vs_serial": (runs["serial_uncached"]["wall_s"]
                              / max(runs["batched_uncached"]["wall_s"],
                                    1e-9)),
        "parallel_vs_serial": (runs["serial_uncached"]["wall_s"]
                               / max(runs["parallel_uncached"]["wall_s"],
                                     1e-9)),
        "disk_warm_vs_serial": (runs["serial_uncached"]["wall_s"]
                                / max(runs["disk_warm"]["wall_s"], 1e-9)),
    }
    artifact = {"design": netlist.name, "corners": len(corners),
                "cells": list(CELLS), "cpus": cpus,
                "runs": runs, "speedups": speedups}
    ARTIFACT.write_text(json.dumps(artifact, indent=1))

    print()
    print_table(
        ["Configuration", "Wall(s)", "Chars", "Flows", "Speedup(X)"],
        [[name,
          f"{data['wall_s']:.3f}",
          str(data["characterizations"]),
          str(data["flow_evaluations"]),
          f"{runs['serial_uncached']['wall_s'] / max(data['wall_s'], 1e-9):.2f}"]
         for name, data in runs.items()],
        title=f"Engine sweep: {len(corners)} corners x {len(CELLS)} cells "
              f"on {netlist.name} ({cpus} CPU)")

    # Hard guarantees, machine-independent:
    assert speedups["warm_cache_vs_serial"] > 5.0
    assert speedups["disk_warm_vs_serial"] > 5.0
    # Batching must reduce characterization wall-clock (fewer, larger
    # forward passes). Modest bound: flakiness-proof on loaded CI boxes.
    assert speedups["batched_char_vs_serial_char"] > 1.1
    # Parallel beating serial needs actual cores — and on small shared
    # runners pool fork + payload shipping can eat the win for this
    # deliberately tiny sweep, so the strict assertion needs headroom.
    # The artifact records the honest number on every machine.
    if cpus >= 4:
        assert speedups["parallel_vs_serial"] > 1.0
    elif cpus >= 2:
        assert speedups["parallel_vs_serial"] > 0.8
