"""Benchmark history gate: append each fresh ``BENCH_obs.json`` ratio
to ``benchmarks/history/`` and fail on a >10% regression.

The overhead benchmark overwrites ``BENCH_obs.json`` in the worktree,
so the *committed* artifact is the baseline: by default this script
reads it back via ``git show HEAD:BENCH_obs.json`` (override with
``--baseline PATH``). A fresh ``overhead_ratio`` more than
``--tolerance`` (default 10%) above the baseline's exits non-zero —
the CI signal that an observability change made the hot loop slower.
Every comparison is appended as one JSONL line to
``benchmarks/history/obs_overhead.jsonl`` regardless of outcome, so
the trajectory accumulates run over run.

Usage::

    python benchmarks/history.py                  # compare + append
    python benchmarks/history.py --check-only     # compare, no append
    python benchmarks/history.py --baseline old.json --tolerance 0.2
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FRESH = REPO / "BENCH_obs.json"
HISTORY = REPO / "benchmarks" / "history" / "obs_overhead.jsonl"


def _load_fresh(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read fresh artifact {path}: {exc}")


def _load_baseline(explicit: str | None) -> tuple[dict, str]:
    if explicit is not None:
        path = Path(explicit)
        try:
            return (json.loads(path.read_text(encoding="utf-8")),
                    str(path))
        except (OSError, json.JSONDecodeError) as exc:
            sys.exit(f"error: cannot read baseline {path}: {exc}")
    # The worktree file was just overwritten by the benchmark run; the
    # committed one is the baseline.
    spec = f"HEAD:{FRESH.name}"
    proc = subprocess.run(["git", "show", spec], cwd=REPO,
                          capture_output=True, text=True)
    if proc.returncode != 0:
        sys.exit(f"error: cannot read committed baseline ({spec}): "
                 f"{proc.stderr.strip()}")
    try:
        return json.loads(proc.stdout), spec
    except json.JSONDecodeError as exc:
        sys.exit(f"error: committed baseline {spec} is not JSON: {exc}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", default=str(FRESH),
                        help="fresh benchmark artifact (default: "
                             "BENCH_obs.json at the repo root)")
    parser.add_argument("--baseline", default=None,
                        help="baseline artifact path (default: the "
                             "committed BENCH_obs.json via git show)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative ratio increase "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--history", default=str(HISTORY),
                        help="JSONL trajectory file to append to")
    parser.add_argument("--check-only", action="store_true",
                        help="compare without appending to history")
    args = parser.parse_args(argv)

    fresh = _load_fresh(Path(args.fresh))
    baseline, baseline_ref = _load_baseline(args.baseline)
    fresh_ratio = float(fresh["overhead_ratio"])
    base_ratio = float(baseline["overhead_ratio"])
    limit = base_ratio * (1.0 + args.tolerance)
    regressed = fresh_ratio > limit

    entry = {
        "t": time.time(),
        "overhead_ratio": fresh_ratio,
        "baseline_ratio": base_ratio,
        "baseline": baseline_ref,
        "limit": round(limit, 6),
        "tolerance": args.tolerance,
        "regressed": regressed,
        "baseline_warm_sweep_s": fresh.get("baseline_warm_sweep_s"),
        "instrumented_warm_sweep_s":
            fresh.get("instrumented_warm_sweep_s"),
    }
    if not args.check_only:
        history = Path(args.history)
        history.parent.mkdir(parents=True, exist_ok=True)
        with open(history, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")

    print(f"fresh overhead ratio  {fresh_ratio:.4f}")
    print(f"baseline ({baseline_ref})  {base_ratio:.4f}")
    print(f"limit (+{args.tolerance:.0%})  {limit:.4f}")
    if regressed:
        print(f"REGRESSION: {fresh_ratio:.4f} > {limit:.4f} "
              f"({(fresh_ratio / base_ratio - 1) * 100:+.1f}% vs "
              "baseline)", file=sys.stderr)
        return 1
    print("ok: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
