"""Benchmark history gate: append each fresh benchmark artifact's key
metric to ``benchmarks/history/`` and fail on a regression.

Each benchmark overwrites its artifact at the repo root, so the
*committed* artifact is the baseline: by default this script reads it
back via ``git show HEAD:<artifact>`` (override with ``--baseline
PATH``). Two gates are registered:

* ``obs`` — ``BENCH_obs.json`` ``overhead_ratio``; *lower is better*,
  a fresh ratio more than ``--tolerance`` (default 10%) above the
  baseline fails — the CI signal that an observability change made
  the hot loop slower.
* ``predict`` — ``BENCH_predict.json``
  ``speedups.predict_vs_cold``; *higher is better*, a fresh speedup
  more than ``--tolerance`` (default 50%) below the baseline fails —
  the signal that the tier-0 edge lost its latency advantage. The
  loose default absorbs machine noise in wall-clock ratios; a real
  collapse (caching broken, a forward pass per member again) is
  orders of magnitude, not percent.

Every comparison is appended as one JSONL line to the gate's
trajectory file under ``benchmarks/history/`` regardless of outcome,
so the trajectory accumulates run over run.

Usage::

    python benchmarks/history.py                  # obs gate (default)
    python benchmarks/history.py predict          # predict gate
    python benchmarks/history.py --check-only     # compare, no append
    python benchmarks/history.py --baseline old.json --tolerance 0.2
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
HISTORY_DIR = REPO / "benchmarks" / "history"


@dataclass(frozen=True)
class Gate:
    """One (artifact, metric) regression gate."""

    artifact: str                 # artifact file name at the repo root
    metric: str                   # dotted path into the artifact JSON
    higher_is_worse: bool         # direction of "regression"
    tolerance: float              # default allowed relative drift
    history: str                  # JSONL file under benchmarks/history/
    extras: tuple = ()            # context keys copied into the entry


GATES = {
    "obs": Gate(artifact="BENCH_obs.json", metric="overhead_ratio",
                higher_is_worse=True, tolerance=0.10,
                history="obs_overhead.jsonl",
                extras=("baseline_warm_sweep_s",
                        "instrumented_warm_sweep_s")),
    "predict": Gate(artifact="BENCH_predict.json",
                    metric="speedups.predict_vs_cold",
                    higher_is_worse=False, tolerance=0.50,
                    history="predict_speedup.jsonl",
                    extras=("predict_p50_s",
                            "speedups.predict_vs_warm_coalesced",
                            "speedups.batch_vs_single_per_item")),
}


def _dig(doc: dict, path: str):
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _load_fresh(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read fresh artifact {path}: {exc}")


def _load_baseline(explicit: str | None, name: str) -> tuple[dict, str]:
    if explicit is not None:
        path = Path(explicit)
        try:
            return (json.loads(path.read_text(encoding="utf-8")),
                    str(path))
        except (OSError, json.JSONDecodeError) as exc:
            sys.exit(f"error: cannot read baseline {path}: {exc}")
    # The worktree file was just overwritten by the benchmark run; the
    # committed one is the baseline.
    spec = f"HEAD:{name}"
    proc = subprocess.run(["git", "show", spec], cwd=REPO,
                          capture_output=True, text=True)
    if proc.returncode != 0:
        sys.exit(f"error: cannot read committed baseline ({spec}): "
                 f"{proc.stderr.strip()}")
    try:
        return json.loads(proc.stdout), spec
    except json.JSONDecodeError as exc:
        sys.exit(f"error: committed baseline {spec} is not JSON: {exc}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("gate", nargs="?", default="obs",
                        choices=sorted(GATES),
                        help="which registered gate to run "
                             "(default: obs)")
    parser.add_argument("--fresh", default=None,
                        help="fresh benchmark artifact (default: the "
                             "gate's artifact at the repo root)")
    parser.add_argument("--baseline", default=None,
                        help="baseline artifact path (default: the "
                             "committed artifact via git show)")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed relative drift (default: the "
                             "gate's own, e.g. 0.10 = 10%%)")
    parser.add_argument("--history", default=None,
                        help="JSONL trajectory file to append to")
    parser.add_argument("--check-only", action="store_true",
                        help="compare without appending to history")
    args = parser.parse_args(argv)

    gate = GATES[args.gate]
    tolerance = (gate.tolerance if args.tolerance is None
                 else args.tolerance)
    fresh_path = Path(args.fresh) if args.fresh else REPO / gate.artifact
    fresh = _load_fresh(fresh_path)
    baseline, baseline_ref = _load_baseline(args.baseline,
                                            gate.artifact)

    fresh_value = _dig(fresh, gate.metric)
    base_value = _dig(baseline, gate.metric)
    if fresh_value is None:
        sys.exit(f"error: {fresh_path} has no '{gate.metric}'")
    if base_value is None:
        sys.exit(f"error: baseline {baseline_ref} has no "
                 f"'{gate.metric}'")
    fresh_value, base_value = float(fresh_value), float(base_value)

    if gate.higher_is_worse:
        limit = base_value * (1.0 + tolerance)
        regressed = fresh_value > limit
        drift = fresh_value / base_value - 1
    else:
        limit = base_value * (1.0 - tolerance)
        regressed = fresh_value < limit
        drift = fresh_value / base_value - 1

    entry = {
        "t": time.time(),
        "gate": args.gate,
        "metric": gate.metric,
        "value": fresh_value,
        "baseline_value": base_value,
        "baseline": baseline_ref,
        "limit": round(limit, 6),
        "tolerance": tolerance,
        "regressed": regressed,
    }
    for key in gate.extras:
        entry[key.rsplit(".", 1)[-1]] = _dig(fresh, key)
    # Back-compat keys the obs trajectory has carried since PR 7.
    if args.gate == "obs":
        entry["overhead_ratio"] = fresh_value
        entry["baseline_ratio"] = base_value

    if not args.check_only:
        history = (Path(args.history) if args.history
                   else HISTORY_DIR / gate.history)
        history.parent.mkdir(parents=True, exist_ok=True)
        with open(history, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")

    sense = "must not rise" if gate.higher_is_worse else "must not fall"
    print(f"gate {args.gate}: {gate.metric} ({sense})")
    print(f"fresh     {fresh_value:.4f}")
    print(f"baseline ({baseline_ref})  {base_value:.4f}")
    print(f"limit ({tolerance:.0%})  {limit:.4f}")
    if regressed:
        print(f"REGRESSION: {fresh_value:.4f} vs limit {limit:.4f} "
              f"({drift * 100:+.1f}% vs baseline)", file=sys.stderr)
        return 1
    print("ok: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
