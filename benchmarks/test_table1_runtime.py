"""Table I: per-iteration runtime, traditional vs fast STCO, 10 benchmarks.

Two ledgers are reported:

* **calibrated** — the paper's published cost constants, which must
  reproduce the printed Table I rows exactly;
* **measured** — this substrate's wall-clock: our Python system flow per
  benchmark plus measured SPICE-vs-GNN technology-level times, showing the
  same speedup structure on real code.
"""

import time

import pytest

from repro.charlib import (CharConfig, CharTrainConfig, Corner,
                           GNNLibraryBuilder, SpiceLibraryBuilder,
                           build_char_dataset, train_char_model)
from repro.eda import (PAPER_TABLE1, benchmark_names, build_benchmark,
                       evaluate_system, table1_rows)
from repro.utils import print_table

CELLS = ("INV_X1", "NAND2_X1", "NOR2_X1", "AND2_X1", "XOR2_X1", "DFF_X1")
CFG = CharConfig(slews=(8e-9,), loads=(15e-15,), n_bisect=3, max_steps=200)


def _calibrated_table():
    rows = table1_rows()
    display = [[r["benchmark"], f"{r['system_eval_s']:.0f}",
                f"{r['traditional_s']:.0f}", f"{r['ours_s']:.0f}",
                f"{r['speedup']:.1f}"] for r in rows]
    print()
    print_table(["Benchmark", "SysEval(s)", "Traditional(s)", "Ours(s)",
                 "Speedup(X)"], display,
                title="Table I (calibrated cost model)")
    return rows


def _measured_table():
    dataset = build_char_dataset(
        "ltps", cells=CELLS,
        train_corners=[Corner(1.0, 0.0, 1.0), Corner(0.9, 0.05, 1.1)],
        test_corners=[Corner(0.95, 0.02, 1.05)],
        config=CFG)
    model = train_char_model(dataset,
                             train_config=CharTrainConfig(epochs=15))
    spice = SpiceLibraryBuilder("ltps", cells=CELLS, config=CFG)
    lib = spice.build()
    slow_tech_s = spice.last_runtime_s
    gnn = GNNLibraryBuilder(model, dataset, cells=CELLS, config=CFG)
    gnn.build()
    fast_tech_s = gnn.last_runtime_s
    rows = []
    for name in benchmark_names():
        netlist = build_benchmark(name)
        t0 = time.perf_counter()
        evaluate_system(netlist, lib)
        sys_s = time.perf_counter() - t0
        trad = sys_s + slow_tech_s
        ours = sys_s + fast_tech_s
        rows.append([name, f"{sys_s:.2f}", f"{trad:.2f}", f"{ours:.2f}",
                     f"{trad / ours:.1f}"])
    print()
    print_table(["Benchmark", "SysEval(s)", "Traditional(s)", "Ours(s)",
                 "Speedup(X)"], rows,
                title="Table I (measured on this substrate; SPICE charlib "
                      f"{slow_tech_s:.1f}s vs GNN {fast_tech_s * 1e3:.0f}ms)")
    return rows


def test_table1_calibrated_matches_paper(benchmark):
    rows = benchmark.pedantic(_calibrated_table, rounds=1, iterations=1)
    for row in rows:
        trad, ours, speedup = PAPER_TABLE1[row["benchmark"]]
        assert row["speedup"] == pytest.approx(speedup, abs=0.15)
    speedups = [r["speedup"] for r in rows]
    assert min(speedups) == pytest.approx(1.9, abs=0.1)
    assert max(speedups) == pytest.approx(14.1, abs=0.1)


def test_table1_measured_substrate(benchmark):
    rows = benchmark.pedantic(_measured_table, rounds=1, iterations=1)
    speedups = [float(r[4]) for r in rows]
    # Shape: the fast path always wins; small designs gain most.
    assert all(s > 1.0 for s in speedups)
    by_name = {r[0]: float(r[4]) for r in rows}
    assert by_name["s298"] > by_name["darkriscv"]
