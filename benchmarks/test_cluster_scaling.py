"""Cluster scaling bench: shards, routing overhead, peer borrowing.

Boots real subprocess clusters (:class:`~repro.cluster.client
.LocalCluster` — one ``repro serve`` process per shard, router on top)
and measures three things, writing ``BENCH_cluster.json``:

* ``throughput`` — N distinct-key requests (each with its own corner
  set, so each is real characterization work) through a 2-shard
  cluster vs the same N through a single shard. The request set is
  pre-balanced on the ring (equal keys per shard), so the measured
  ratio is the sharding win, not routing luck.
* ``duplicate`` — the idempotent answered-from-stored-report path,
  through the router vs direct to the owning shard: the router's added
  hop must stay within 2× of direct.
* ``borrow`` — an exhaustive grid sweep characterized cold on its
  owning shard, then submitted *directly to the other shard*: every
  corner arrives by peer borrowing (zero characterizations, zero
  engine misses on the borrower) and the end-to-end latency beats the
  cold run ≥ 10× (a peer fetch is ~1 ms; a characterization tens).

Acceptance: duplicate ≤ 2× direct; borrow ≥ 10× vs cold with clean
borrower counters; 2-shard ≥ 1.5× single-shard throughput — asserted
only on multi-core machines (recorded either way).
"""

import json
import os
import statistics
import time
from pathlib import Path

from repro.api import (ModelConfig, SearchConfig, StcoConfig,
                       TechnologyConfig)
from repro.api.report import RunReport
from repro.cluster import LocalCluster
from repro.serve import ServeClient
from repro.utils import print_table

ARTIFACT = Path(__file__).resolve().parent.parent \
    / "BENCH_cluster.json"

TECH = TechnologyConfig(
    cells=("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1"),
    train_corners=((1.0, 0.0, 1.0), (0.9, 0.05, 1.1)),
    test_corners=((0.95, 0.02, 1.05),),
    slews=(8e-9,), loads=(15e-15,), n_bisect=3, max_steps=200)

MEASURED_PER_SHARD = 3                   # distinct-key jobs per shard
DUPLICATE_REPEATS = 5


def _config(seed=0, vth=0.0, benchmark="s298",
            **search_overrides) -> StcoConfig:
    search = dict(optimizer="anneal", seed=seed, iterations=6,
                  vdd_scales=(0.9, 1.0, 1.1), vth_shifts=(vth,),
                  cox_scales=(0.9, 1.1))
    search.update(search_overrides)
    return StcoConfig(mode="search", benchmark=benchmark,
                      technology=TECH, model=ModelConfig(epochs=10),
                      search=SearchConfig(**search))


def _borrow_config() -> StcoConfig:
    """An exhaustive 80-corner grid sweep on the biggest ISCAS
    netlist: seconds of characterization work cold, milliseconds of
    HTTP fetches borrowed — the contrast is real work, not timer
    noise."""
    return _config(seed=99, benchmark="s1488", optimizer="grid",
                   iterations=80,
                   vdd_scales=(0.85, 0.9, 0.95, 1.05, 1.1),
                   vth_shifts=(0.013, 0.017, 0.021, 0.025),
                   cox_scales=(0.9, 0.95, 1.05, 1.1))


def _measured_configs(router):
    """Distinct-corner configs, pre-balanced: exactly
    ``MEASURED_PER_SHARD`` keys per shard of ``router``'s ring."""
    want = {name: MEASURED_PER_SHARD for name in router.ring.members}
    picked = []
    i = 0
    while any(want.values()):
        i += 1
        config = _config(seed=i, vth=0.0002 * i)
        owner = router.route(config)[1]
        if want[owner]:
            want[owner] -= 1
            picked.append(config)
        assert i < 200, "ring never balanced the sample"
    return picked


def _run_all(client, configs, timeout_s=1800.0):
    """Submit everything, then wait for everything; returns (wall_s,
    jobs)."""
    t0 = time.perf_counter()
    ids = [client.submit(c)["job_id"] for c in configs]
    jobs = [client.wait(i, timeout_s=timeout_s, poll_s=0.05)
            for i in ids]
    wall = time.perf_counter() - t0
    assert all(j["state"] == "succeeded" for j in jobs)
    return wall, jobs


def _timed_run(client, config, timeout_s=1800.0, force=False):
    """submit → tight-poll wait: the 0.2 s default poll quantum would
    otherwise dominate every sub-second measurement."""
    t0 = time.perf_counter()
    job_id = client.submit(config, force=force)["job_id"]
    job = client.wait(job_id, timeout_s=timeout_s, poll_s=0.01)
    elapsed = time.perf_counter() - t0
    assert job["state"] == "succeeded", job.get("error")
    return elapsed, RunReport.from_dict(job["report"])


def test_cluster_scaling(tmp_path):
    results = {"cpus": os.cpu_count()}

    # ---- 2-shard cluster -------------------------------------------------
    with LocalCluster(tmp_path / "pair", shards=2, workers=2,
                      boot_timeout_s=300) as pair:
        router_client = pair.client(timeout_s=30)
        router = pair.router
        shard_urls = {s.name: s.url for s in pair.shards}

        # Warm every shard: one cold job (train + characterize) each.
        warm = {}
        for name in shard_urls:
            for seed in range(1000, 1100):
                config = _config(seed=seed)
                if router.route(config)[1] == name:
                    warm[name] = config
                    break
        cold_walls = {}
        for name, config in warm.items():
            cold_walls[name], _ = _timed_run(router_client, config)
        results["cold_warmup_s"] = cold_walls

        # a) Distinct-key throughput through the pair.
        configs = _measured_configs(router)
        pair_wall, pair_jobs = _run_all(router_client, configs)
        results["throughput"] = {
            "requests": len(configs),
            "two_shard_wall_s": pair_wall,
            "two_shard_rps": len(configs) / pair_wall}
        by_shard = {}
        for job in pair_jobs:
            by_shard[job["shard"]] = by_shard.get(job["shard"], 0) + 1
        assert by_shard == {name: MEASURED_PER_SHARD
                            for name in shard_urls}

        # b) Duplicate latency: router hop vs direct to the owner.
        base = warm[pair.shards[0].name]
        owner_client = ServeClient(shard_urls[pair.shards[0].name],
                                   timeout_s=30)
        direct = statistics.median(
            _timed_run(owner_client, base, timeout_s=60)[0]
            for _ in range(DUPLICATE_REPEATS))
        routed = statistics.median(
            _timed_run(router_client, base, timeout_s=60)[0]
            for _ in range(DUPLICATE_REPEATS))
        results["duplicate"] = {"direct_s": direct, "routed_s": routed,
                                "ratio": routed / max(direct, 1e-9)}

        # c) Cross-shard borrow: cold on the owner, then the same
        #    corners direct to the *other* shard — everything borrowed.
        borrow = _borrow_config()
        owner = router.route(borrow)[1]
        other = next(n for n in shard_urls if n != owner)
        cold_s, _ = _timed_run(ServeClient(shard_urls[owner],
                                           timeout_s=30), borrow)
        borrowed_s, borrowed_report = _timed_run(
            ServeClient(shard_urls[other], timeout_s=30), borrow)
        assert borrowed_report.characterizations == 0
        assert borrowed_report.engine_misses == 0
        results["borrow"] = {
            "owner": owner, "borrower": other,
            "cold_s": cold_s, "borrowed_s": borrowed_s,
            "speedup": cold_s / max(borrowed_s, 1e-9)}

        # The aggregated cluster stayed green through all of it.
        assert router_client.slo()["health"] == "healthy"
        health = router_client.health()
        borrower_peers = health["shards"][other]["peers"]
        assert borrower_peers["hits"] > 0

    # ---- single shard, same traffic -------------------------------------
    with LocalCluster(tmp_path / "solo", shards=1, workers=2,
                      boot_timeout_s=300) as solo:
        solo_client = solo.client(timeout_s=30)
        _timed_run(solo_client, _config(seed=1000))     # warm: train once
        solo_wall, _ = _run_all(solo_client, configs)
        results["throughput"]["one_shard_wall_s"] = solo_wall
        results["throughput"]["one_shard_rps"] = \
            len(configs) / solo_wall

    speedup = solo_wall / max(pair_wall, 1e-9)
    results["throughput"]["speedup"] = speedup
    ARTIFACT.write_text(json.dumps(results, indent=1))

    print()
    print_table(
        ["Measure", "Value"],
        [["distinct-key speedup (2 vs 1 shard)", f"{speedup:.2f}x"],
         ["duplicate routed/direct",
          f"{results['duplicate']['ratio']:.2f}x"],
         ["borrow vs cold",
          f"{results['borrow']['speedup']:.1f}x"],
         ["cpus", str(results["cpus"])]],
        title="Cluster scaling")

    # Hard guarantees.
    assert results["duplicate"]["routed_s"] \
        <= 2.0 * max(results["duplicate"]["direct_s"], 0.05)
    assert results["borrow"]["speedup"] >= 10.0
    if (os.cpu_count() or 1) >= 2:
        assert speedup >= 1.5
