"""Ablation benches for the design choices the paper calls out.

* **Edge features** — the Fig. 2 FEM-inspired spatial embedding in RelGAT:
  train the Poisson emulator with and without edge features.
* **LayerNorm** — "Layer normalization was applied … enhancing model
  convergence and stability".
* **RL agent vs random search** — the exploration strategy of the
  framework (same evaluation budget).
"""

import numpy as np
import pytest

from repro.nn import TrainConfig, Trainer, batch_graphs, mse
from repro.surrogate import PoissonEmulator, RelGATConfig, ci_poisson_config
from repro.tcad import TCADDatasetBuilder
from repro.utils import print_table

SMALL_MESH = {"nx_channel": 7, "nx_overlap": 2, "ny_semi": 3, "ny_ox": 3}


def _poisson_data():
    builder = TCADDatasetBuilder(seed=5, mesh_resolution=SMALL_MESH)
    return builder.build(n_train=30, n_val=8, n_test=10)


def _train_eval(dataset, config):
    model = PoissonEmulator(config)
    trainer = Trainer(model, config=TrainConfig(epochs=25, batch_size=8,
                                                lr=3e-3, grad_clip=2.0))
    trainer.fit(dataset.poisson["train"], dataset.poisson["val"])
    batch = batch_graphs(dataset.poisson["test"])
    return mse(trainer.predict(dataset.poisson["test"]), batch.y)


def _run_edge_ablation():
    dataset = _poisson_data()
    feats = dataset.poisson["train"][0].num_node_features
    with_edges = _train_eval(dataset, ci_poisson_config(feats))
    cfg = ci_poisson_config(feats)
    no_edges = _train_eval(
        dataset, RelGATConfig(**{**cfg.__dict__, "edge_features": 0}))
    no_ln = _train_eval(
        dataset, RelGATConfig(**{**cfg.__dict__, "layer_norm": False}))
    print()
    print_table(["Variant", "Test MSE"],
                [["RelGAT (edge features + LayerNorm)", f"{with_edges:.3e}"],
                 ["no edge features", f"{no_edges:.3e}"],
                 ["no LayerNorm", f"{no_ln:.3e}"]],
                title="Ablation: Poisson emulator architecture")
    return with_edges, no_edges, no_ln


def test_ablation_relgat_architecture(benchmark):
    with_edges, no_edges, no_ln = benchmark.pedantic(
        _run_edge_ablation, rounds=1, iterations=1)
    assert np.isfinite(with_edges)
    # The spatial edge embedding carries the mesh geometry; removing it
    # must not help (and typically hurts).
    assert with_edges <= no_edges * 1.5


def test_ablation_agent_vs_random(benchmark):
    """RL agent reaches the grid-search optimum within budget at least as
    often as random search (tiny space, GNN-fast evaluations)."""
    from repro.charlib import (CharConfig, CharTrainConfig, Corner,
                               GNNLibraryBuilder, build_char_dataset,
                               train_char_model)
    from repro.eda import build_benchmark
    from repro.stco import (DesignSpace, GridSearchAgent, QLearningAgent,
                            RandomSearchAgent, STCOEnvironment)

    cfg = CharConfig(slews=(8e-9,), loads=(15e-15,), n_bisect=3,
                     max_steps=200)
    cells = ("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1")

    def run():
        dataset = build_char_dataset(
            "ltps", cells=cells,
            train_corners=[Corner(1.0, 0.0, 1.0), Corner(0.9, 0.05, 1.1)],
            test_corners=[Corner(0.95, 0.02, 1.05)], config=cfg)
        model = train_char_model(
            dataset, train_config=CharTrainConfig(epochs=12))
        space = DesignSpace(vdd_scales=(0.85, 1.0, 1.15),
                            vth_shifts=(-0.05, 0.05),
                            cox_scales=(0.9, 1.1))
        netlist = build_benchmark("s298")

        def fresh_env():
            builder = GNNLibraryBuilder(model, dataset, cells=cells,
                                        config=cfg)
            return STCOEnvironment(netlist, builder, space)

        optimum = GridSearchAgent(fresh_env()).run().best_reward
        q = QLearningAgent(fresh_env(), seed=0).run(iterations=8)
        r = RandomSearchAgent(fresh_env(), seed=0).run(iterations=8)
        print(f"\noptimum {optimum:.3f} | Q-learning {q.best_reward:.3f} "
              f"({q.evaluations} evals) | random {r.best_reward:.3f} "
              f"({r.evaluations} evals)")
        return optimum, q, r

    optimum, q, r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert q.best_reward <= optimum + 1e-9
    # Within the same budget the agent must get close to the optimum.
    assert optimum - q.best_reward < 0.5
