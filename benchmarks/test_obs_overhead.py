"""Instrumentation overhead bench: the observability layer must be
effectively free on the hot path.

Times the warm-cache engine sweep — the hottest loop the serve layer
drives — twice: once fully instrumented against the default metrics
registry with tracing on, a :class:`SeriesRecorder` sampling at its
default interval, and a :class:`SamplingProfiler` walking the sweep
thread at its default interval, and a distributed
:class:`~repro.obs.trace.TraceContext` installed so every span in the
sweep adopts and propagates it (the exact configuration a *routed* job
runs under since the router hop carries ``traceparent``); once
constructed under :func:`repro.obs.disabled` (no-op instruments, no-op
spans, no recorder, no profiler). Min-of-repeats on both sides; the
ratio must stay under 1.05 (the ISSUE's 5% budget). Raw per-primitive
costs (counter inc, histogram observe, span open/close) and the
per-request drift envelope check at the predict edge
(``drift_check_ns``) are recorded for reference without an assertion,
and everything lands in ``BENCH_obs.json`` at the repo root.
``benchmarks/history.py`` compares that artifact against the committed
baseline in CI.
"""

import gc
import json
import time
from pathlib import Path

import pytest

from repro import obs
from repro.charlib import (CharConfig, CharTrainConfig, Corner,
                           GNNLibraryBuilder, build_char_dataset,
                           train_char_model)
from repro.eda import build_benchmark
from repro.engine import EngineConfig, EvaluationEngine, PPAWeights
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.prof import DEFAULT_INTERVAL_S as PROFILE_INTERVAL_S
from repro.obs.prof import SamplingProfiler
from repro.obs.series import DEFAULT_INTERVAL_S as SERIES_INTERVAL_S
from repro.obs.series import SeriesRecorder
from repro.obs.trace import mint_context, span, trace_context
from repro.stco import DesignSpace
from repro.utils import print_table

CELLS = ("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1")
CFG = CharConfig(slews=(8e-9,), loads=(15e-15,), n_bisect=3,
                 max_steps=200)
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

SWEEP = DesignSpace(vdd_scales=(0.85, 0.95, 1.05, 1.15),
                    vth_shifts=(-0.06, -0.02, 0.02, 0.06),
                    cox_scales=(0.85, 0.95, 1.05, 1.15))

REPEATS = 51
#: Consecutive warm sweeps per timed window. One 64-corner sweep is only
#: ~1 ms — short enough that timer granularity and scheduler interrupts
#: on a single-CPU runner swamp a sub-5% effect; five back-to-back
#: sweeps make each sample long enough for min-of-repeats to converge.
PASSES = 5
MAX_OVERHEAD = 1.05


@pytest.fixture(scope="module")
def builder():
    dataset = build_char_dataset(
        "ltps", cells=CELLS,
        train_corners=[Corner(1.0, 0.0, 1.0), Corner(0.9, 0.05, 1.1)],
        test_corners=[Corner(0.95, 0.02, 1.05)],
        config=CFG)
    model = train_char_model(dataset,
                             train_config=CharTrainConfig(epochs=10))
    return GNNLibraryBuilder(model, dataset, cells=CELLS, config=CFG)


def _warm_sweep_s(engine, netlist, corners) -> float:
    """One timed window: PASSES consecutive fully-warm sweeps."""
    t0 = time.perf_counter()
    for _ in range(PASSES):
        records = engine.evaluate_many(netlist, corners, PPAWeights())
    elapsed = time.perf_counter() - t0
    assert all(r.cached for r in records)
    return elapsed


def _primitive_costs_ns() -> dict:
    """Per-op cost of the raw instruments (reference numbers only)."""
    registry = MetricsRegistry()
    out = {}
    n = 20_000
    with use_registry(registry):
        counter = registry.counter("bench_total", labels=("k",))
        child = counter.labels(k="a")
        t0 = time.perf_counter()
        for _ in range(n):
            child.inc()
        out["counter_inc"] = (time.perf_counter() - t0) / n * 1e9
        hist = registry.histogram("bench_seconds")
        t0 = time.perf_counter()
        for _ in range(n):
            hist.observe(0.001)
        out["histogram_observe"] = (time.perf_counter() - t0) / n * 1e9
        t0 = time.perf_counter()
        for _ in range(n // 10):
            with span("bench.noop"):
                pass
        out["span_open_close"] = \
            (time.perf_counter() - t0) / (n // 10) * 1e9
    return out


def _drift_check_ns(tmp_path) -> float:
    """Per-predict cost of the drift envelope check — the real
    :class:`PredictService` hot-path pair (``_drift_scores`` +
    ``_note_drift``) on a single-row query against a realistic
    envelope, gauge and counter updates included."""
    import numpy as np

    from repro.api import Workspace
    from repro.predict import PredictService

    registry = MetricsRegistry()
    with use_registry(registry):
        service = PredictService(Workspace(tmp_path / "drift-ws"))
        d = 16                           # corner triple + netlist stats
        rng = np.random.default_rng(0)
        lo, hi = -np.ones(d), np.ones(d)
        service._drift_arrays = (lo, hi,
                                 np.maximum(0.1 * (hi - lo), 1e-6))
        X = rng.uniform(-1.5, 1.5, size=(1, d))
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            service._note_drift(service._drift_scores(X))
        return (time.perf_counter() - t0) / n * 1e9


def test_instrumented_hot_loop_overhead_under_5pct(builder, tmp_path):
    netlist = build_benchmark("s298")
    corners = SWEEP.points()
    assert len(corners) == 64    # campaign-sized batch: amortizes the
    #                              per-call span over realistic work

    # Baseline engine is constructed under the kill switch (null
    # instruments bind at construction); the instrumented one against a
    # fresh registry so counts are attributable. Sweeps interleave with
    # alternating order so both sides see the same machine conditions,
    # GC is paused so a collection triggered by one side's allocations
    # doesn't land on the other's clock, and we keep the min of each.
    with obs.disabled():
        base_engine = EvaluationEngine(builder, EngineConfig())
        base_engine.evaluate_many(netlist, corners, PPAWeights())
    registry = MetricsRegistry()
    with use_registry(registry):
        engine = EvaluationEngine(builder, EngineConfig())
        engine.evaluate_many(netlist, corners, PPAWeights())

    def measure_base():
        with obs.disabled():
            return _warm_sweep_s(base_engine, netlist, corners)

    def measure_instr():
        # The profiler attaches per instrumented window exactly as the
        # serve pool attaches it per job: its daemon thread walks this
        # thread's stack at the default interval *while the sweep
        # runs*, so its cost lands inside the timed region (start/stop
        # themselves stay outside it).
        prof = SamplingProfiler(interval_s=PROFILE_INTERVAL_S).start()
        try:
            # A distributed trace context is active for the whole
            # window, exactly as on a routed job: the root span adopts
            # the upstream ``traceparent`` and every child span
            # threads the ids through. Installing it sits outside the
            # timed region; *carrying* it is in every measured span.
            with trace_context(mint_context()):
                return _warm_sweep_s(engine, netlist, corners)
        finally:
            prof.stop()

    # Recorder at its default interval for the whole instrumented
    # lifetime, like a live service; its scrapes hit this registry.
    recorder = SeriesRecorder(registry=registry,
                              interval_s=SERIES_INTERVAL_S).start()
    base_s = instr_s = float("inf")
    gc.collect()
    gc.disable()
    try:
        for i in range(REPEATS):
            first, second = ((measure_base, measure_instr) if i % 2
                             else (measure_instr, measure_base))
            a, b = first(), second()
            base_s = min(base_s, a if first is measure_base else b)
            instr_s = min(instr_s, a if first is measure_instr else b)
    finally:
        gc.enable()
        recorder.stop()

    snap = registry.snapshot()
    hits = snap.get('repro_engine_cache_events_total{cache="result",'
                    'tier="memory",event="hit"}', 0)
    # populate pass misses; every timed pass is all hits.
    assert hits == len(corners) * REPEATS * PASSES   # instrumented for real

    ratio = instr_s / base_s
    payload = {
        "corners": len(corners),
        "repeats": REPEATS,
        "passes": PASSES,
        "baseline_warm_sweep_s": base_s / PASSES,
        "instrumented_warm_sweep_s": instr_s / PASSES,
        "overhead_ratio": ratio,
        "budget_ratio": MAX_OVERHEAD,
        "recorder": {"interval_s": SERIES_INTERVAL_S,
                     "samples": recorder.samples_taken},
        "profiler": {"interval_s": PROFILE_INTERVAL_S},
        "primitive_ns": _primitive_costs_ns(),
        "drift_check_ns": _drift_check_ns(tmp_path),
    }
    ARTIFACT.write_text(json.dumps(payload, indent=1, sort_keys=True)
                        + "\n", encoding="utf-8")
    print_table(
        ["configuration", "warm sweep [ms]"],
        [["disabled (null registry)", f"{base_s / PASSES * 1e3:.3f}"],
         ["instrumented + recorder + profiler",
          f"{instr_s / PASSES * 1e3:.3f}"],
         ["overhead", f"{(ratio - 1) * 100:+.2f}%"]],
        title="observability overhead")
    assert ratio < MAX_OVERHEAD, (
        f"instrumentation costs {(ratio - 1) * 100:.1f}% on the warm "
        f"hot loop (budget {MAX_OVERHEAD - 1:.0%}); see {ARTIFACT}")
