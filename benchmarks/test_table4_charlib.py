"""Table IV: MAPE of the GNN cell-library prediction, LTPS and CNT.

Characterizes a cell subset over train/test corner grids (disk-cached),
trains the 3-layer GCN + per-metric heads, and prints the per-metric MAPE
for both technologies. CI-scale by default; REPRO_FULL=1 uses larger
grids. The paper's sub-percent MAPEs come from 125/512 corners and 696k
points; the reproduction target is the shape — timing metrics much more
accurate than the power metrics (which span orders of magnitude; the
paper makes the same observation).
"""

import os

import numpy as np
import pytest

from repro.charlib import (CharConfig, CharTrainConfig, build_char_dataset,
                           corner_grid, evaluate_char_model,
                           train_char_model)
from repro.utils import print_table

FULL = os.environ.get("REPRO_FULL") == "1"
CELLS = ("INV_X1", "INV_X2", "NAND2_X1", "NOR2_X1", "AND2_X1", "XOR2_X1",
         "DFF_X1") if not FULL else None   # None -> all 35 cells
CFG = CharConfig(slews=(5e-9, 20e-9), loads=(10e-15, 40e-15), n_bisect=4,
                 max_steps=260)

_METRIC_LABELS = {
    "delay": "Delay", "output_slew": "Output Slew",
    "capacitance": "Capacitance", "flip_power": "Flip Power",
    "non_flip_power": "Non-flip Power", "leakage_power": "Leakage Power",
    "min_pulse_width": "Minimum Pulse Width", "min_setup": "Minimum Setup",
    "min_hold": "Minimum Hold",
}


def _run_technology(technology: str):
    if FULL:
        from repro.cells import cell_names
        from repro.charlib import paper_test_corners, paper_train_corners
        cells = tuple(cell_names())
        train_c, test_c = paper_train_corners(), paper_test_corners()
        epochs = 120
    else:
        cells = CELLS
        train_c = corner_grid(2)                 # 8 corners
        test_c = corner_grid(2, offset=True)     # 8 staggered corners
        epochs = 60
    dataset = build_char_dataset(technology, cells=cells,
                                 train_corners=train_c,
                                 test_corners=test_c, config=CFG)
    model = train_char_model(
        dataset, train_config=CharTrainConfig(epochs=epochs))
    mapes = evaluate_char_model(model, dataset)
    counts = {m: sum(len(g) for g in dataset.graphs[m].values())
              for m in dataset.metrics_present()}
    return mapes, counts


def _run():
    results = {}
    for technology in ("ltps", "cnt"):
        results[technology] = _run_technology(technology)
    rows = []
    ltps_mapes, ltps_counts = results["ltps"]
    cnt_mapes, _ = results["cnt"]
    for metric, label in _METRIC_LABELS.items():
        if metric not in ltps_mapes:
            continue
        rows.append([label,
                     f"{ltps_mapes[metric]:.2f}%",
                     f"{cnt_mapes.get(metric, float('nan')):.2f}%",
                     ltps_counts.get(metric, 0)])
    print()
    print_table(["Metric", "LTPS", "CNT", "Data Points"], rows,
                title="Table IV: MAPEs of cell library prediction "
                      f"({'full' if FULL else 'CI'} profile)")
    return results


def test_table4_charlib_mape(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    for technology in ("ltps", "cnt"):
        mapes, _ = results[technology]
        assert "delay" in mapes
        for metric, value in mapes.items():
            # Non-flip energies can sit entirely below the measurement
            # floor at CI scale (output doesn't move, so only a sliver of
            # internal charge flows) — MAPE is undefined there.
            if metric == "non_flip_power" and not np.isfinite(value):
                continue
            assert np.isfinite(value), (technology, metric)
        # Shape: timing constraints (bisected, smooth) are the best-
        # predicted metrics, as in the paper's Table IV.
        if "min_setup" in mapes:
            assert mapes["min_setup"] < 60.0
