"""Surrogate-search bench: engine misses to optimum for the Bayesian
optimizers vs the unguided baselines, written to ``BENCH_surrogate.json``.

The question this answers is the one the whole subsystem exists for:
*how many real engine evaluations does each strategy spend before it
first evaluates the corner that turns out to be the grid optimum?*
Each optimizer races the 45-point default space on three benchmark
netlists over 3 seeds each. All runs share one engine per netlist,
pre-warmed by the exhaustive ground-truth sweep — on a cold engine
every unique evaluation is an engine miss, so the recorded
``evaluations_to_optimum`` (the unique-eval index at which the optimum
was first requested) *is* the engine-miss price of reaching the
optimum, while the warm cache keeps 36 optimizer runs affordable.

Everything is seeded (dataset, GNN training, optimizers), so the
recorded numbers — and the bayes-beats-random assertion — are
deterministic in CI. The statistical version of the claim (median over
5 seeds on a controlled landscape) lives in
``tests/surrogate/test_bayes.py::TestAcceptance``.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.charlib import (CharConfig, CharTrainConfig, Corner,
                           GNNLibraryBuilder, build_char_dataset,
                           train_char_model)
from repro.eda import build_benchmark
from repro.engine import EngineConfig, EvaluationEngine, PPAWeights
from repro.search import SearchRun, make_optimizer
from repro.stco import default_space
from repro.utils import print_table

CELLS = ("INV_X1", "NAND2_X1", "NOR2_X1", "AND2_X1", "DFF_X1")
CFG = CharConfig(slews=(8e-9,), loads=(15e-15,), n_bisect=3, max_steps=200)
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_surrogate.json"

NETLISTS = ("s298", "s386", "s526")
GUIDED = ("bayes", "ucb")
BASELINES = ("random", "anneal")
BUDGET = 32
SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def builder():
    dataset = build_char_dataset(
        "ltps", cells=CELLS,
        train_corners=[Corner(1.0, 0.0, 1.0), Corner(0.9, 0.05, 1.1)],
        test_corners=[Corner(0.95, 0.02, 1.05)],
        config=CFG)
    model = train_char_model(dataset,
                             train_config=CharTrainConfig(epochs=15))
    return GNNLibraryBuilder(model, dataset, cells=CELLS, config=CFG)


def test_surrogate_quality(builder):
    space = default_space()
    weights = PPAWeights()
    report = {"space_size": space.size, "budget": BUDGET, "netlists": {}}
    rows = []
    medians = {name: [] for name in GUIDED + BASELINES}
    for i, name in enumerate(NETLISTS):
        netlist = build_benchmark(name)

        # Exhaustive ground truth; the sweep also warms the shared
        # engine so the optimizer runs below replay from cache.
        engine = EvaluationEngine(builder, EngineConfig())
        records = engine.evaluate_many(netlist, space.points(), weights)
        best = max(records, key=lambda r: r.reward)

        per_netlist = {}
        for opt_name in GUIDED + BASELINES:
            per_seed = []
            for seed in SEEDS:
                optimizer = make_optimizer(
                    opt_name, space, seed=seed + 10 * i,
                    weights=weights, builder=builder)
                result = SearchRun(netlist, optimizer, engine,
                                   weights=weights).run(budget=BUDGET)
                found = result.best_corner == best.corner.key()
                misses_to_opt = (result.evaluations_to_optimum if found
                                 else space.size + 1)
                per_seed.append({
                    "seed": seed + 10 * i,
                    "engine_misses_to_optimum": misses_to_opt,
                    "found_optimum": found,
                    "best_reward": float(result.best_reward)})
                medians[opt_name].append(misses_to_opt)
                assert result.evaluations <= space.size
            per_netlist[opt_name] = {
                "runs": per_seed,
                "median_engine_misses_to_optimum": float(np.median(
                    [r["engine_misses_to_optimum"] for r in per_seed]))}
            rows.append([
                name, opt_name,
                f"{per_netlist[opt_name]['median_engine_misses_to_optimum']:.0f}",
                str(sum(r["found_optimum"] for r in per_seed))
                + f"/{len(SEEDS)}"])
        report["netlists"][name] = per_netlist

    report["median_engine_misses_to_optimum"] = {
        name: float(np.median(vals)) for name, vals in medians.items()}

    # The headline claim: learned-surrogate acquisition reaches the
    # optimum in fewer engine misses than unguided random sampling.
    assert report["median_engine_misses_to_optimum"]["bayes"] \
        < report["median_engine_misses_to_optimum"]["random"], report

    ARTIFACT.write_text(json.dumps(report, indent=1))
    print_table(["Netlist", "Optimizer", "Median misses→opt", "Found"],
                rows,
                title=f"Engine misses to the {space.size}-point grid "
                      f"optimum (budget {BUDGET}, {len(SEEDS)} seeds)")
