"""Serve-layer throughput bench: cold vs warm vs coalesced requests.

Boots a real :class:`~repro.serve.pool.ServeService` +
:class:`~repro.serve.http.StcoServer` on an ephemeral port and measures
end-to-end request latency through :class:`~repro.serve.client
.ServeClient` in four regimes, writing ``BENCH_serve.json``:

* ``cold`` — first request ever: measures, trains the GNN,
  characterizes, searches;
* ``warm_forced`` — the same document again with ``force=True``: a real
  execution, but every expensive artifact (model, libraries, results)
  comes from the shared workspace/engine caches;
* ``coalesced`` — N identical *new* requests submitted back-to-back:
  one execution, N answers (per-request latency = wall / N);
* ``duplicate`` — the idempotent path: answered from the completed
  job's stored report without executing anything.

Acceptance (machine-independent): warm and coalesced per-request
latency are each ≥ 10× better than cold.
"""

import json
import time
from pathlib import Path

from repro.api import (ModelConfig, SearchConfig, StcoConfig,
                       TechnologyConfig, Workspace)
from repro.serve import ServeClient, ServeService, StcoServer
from repro.utils import print_table

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

TECH = TechnologyConfig(
    cells=("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1"),
    train_corners=((1.0, 0.0, 1.0), (0.9, 0.05, 1.1)),
    test_corners=((0.95, 0.02, 1.05),),
    slews=(8e-9,), loads=(15e-15,), n_bisect=3, max_steps=200)

COALESCED_CLIENTS = 8


def _config(**search_overrides) -> StcoConfig:
    search = dict(optimizer="anneal", seed=0, iterations=6,
                  vdd_scales=(0.9, 1.0, 1.1), vth_shifts=(0.0,),
                  cox_scales=(0.9, 1.1))
    search.update(search_overrides)
    return StcoConfig(mode="search", benchmark="s298", technology=TECH,
                      model=ModelConfig(epochs=10),
                      search=SearchConfig(**search))


def test_serve_throughput(tmp_path):
    workspace = Workspace(tmp_path / "ws")
    service = ServeService(workspace, workers=2)
    runs = {}
    try:
        with StcoServer(service) as server:
            client = ServeClient(server.url)
            base = _config()

            # 1) Cold: nothing exists yet — the full pipeline runs.
            t0 = time.perf_counter()
            cold_report = client.run(base, timeout_s=1800)
            runs["cold"] = {"wall_s": time.perf_counter() - t0,
                            "requests": 1}

            # 2) Warm, forced: re-executes against the warm caches.
            t0 = time.perf_counter()
            warm_report = client.run(base, force=True, timeout_s=1800)
            runs["warm_forced"] = {"wall_s": time.perf_counter() - t0,
                                   "requests": 1}
            assert warm_report.best_reward == cold_report.best_reward
            assert warm_report.cache_stats["workspace"][
                "models_trained"] == 1    # lifetime: only the cold train

            # 3) Coalesced: N identical new requests, one execution.
            #    (A different sub-space, so the engine truly works.)
            burst = _config(seed=1, optimizer="random",
                            vdd_scales=(0.95, 1.05),
                            vth_shifts=(-0.02, 0.02),
                            cox_scales=(1.0,))
            t0 = time.perf_counter()
            ids = [client.submit(burst)["job_id"]
                   for _ in range(COALESCED_CLIENTS)]
            jobs = [client.wait(i, timeout_s=1800, poll_s=0.05)
                    for i in ids]
            wall = time.perf_counter() - t0
            leaders = sum(1 for j in jobs if not j["coalesced_with"])
            runs["coalesced"] = {"wall_s": wall,
                                 "requests": COALESCED_CLIENTS,
                                 "executions": leaders}
            assert all(j["state"] == "succeeded" for j in jobs)
            assert all(j["report"] == jobs[0]["report"] for j in jobs)
            assert leaders < COALESCED_CLIENTS   # sharing happened

            # 4) Duplicate: answered from the stored report.
            t0 = time.perf_counter()
            dup_report = client.run(base, timeout_s=60)
            runs["duplicate"] = {"wall_s": time.perf_counter() - t0,
                                 "requests": 1}
            assert dup_report.best_reward == cold_report.best_reward
    finally:
        service.close(timeout=30)

    def per_request(name):
        return runs[name]["wall_s"] / runs[name]["requests"]

    speedups = {f"{name}_vs_cold": per_request("cold") / max(
        per_request(name), 1e-9) for name in runs if name != "cold"}
    artifact = {
        "clients": COALESCED_CLIENTS,
        "runs": runs,
        "per_request_s": {name: per_request(name) for name in runs},
        "requests_per_s": {name: runs[name]["requests"]
                           / max(runs[name]["wall_s"], 1e-9)
                           for name in runs},
        "speedups": speedups,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=1))

    print()
    print_table(
        ["Regime", "Requests", "Wall(s)", "Per-req(s)", "vs cold(X)"],
        [[name, str(data["requests"]), f"{data['wall_s']:.3f}",
          f"{per_request(name):.3f}",
          f"{per_request('cold') / max(per_request(name), 1e-9):.1f}"]
         for name, data in runs.items()],
        title=f"Serve throughput ({COALESCED_CLIENTS}-client burst)")

    # Hard guarantees (the acceptance criterion): the served warm and
    # coalesced paths beat a cold request by ≥ 10×.
    assert speedups["warm_forced_vs_cold"] >= 10.0
    assert speedups["coalesced_vs_cold"] >= 10.0
    assert speedups["duplicate_vs_cold"] >= 10.0
