"""Tier-0 predict latency bench: /v1/predict vs the engine paths.

Boots a real :class:`~repro.serve.pool.ServeService` +
:class:`~repro.serve.http.StcoServer`, warms the workspace with one
harvesting engine run, and measures end-to-end request latency through
:class:`~repro.serve.client.ServeClient`, writing ``BENCH_predict.json``:

* ``cold_engine`` — the first run ever: SPICE characterization, GNN
  training, search, surrogate harvest + fit (this is also what
  registers the ensemble that /v1/predict serves);
* ``warm_coalesced`` — N identical engine requests inside the already
  characterized corner grid: every expensive artifact is cached and
  the N requests coalesce into one execution (per-request latency =
  wall / N) — the best the *engine* path can ever do;
* ``predict_single`` — repeated ``POST /v1/predict`` calls cycling a
  small corner set (so the LRU participates, as in production);
* ``predict_batch`` — one ``POST /v1/predict/batch`` with a large
  corner grid: a single stacked ensemble forward.

Acceptance (machine-independent ratios):

* predict p50 ≥ 100× better than a cold engine run;
* predict p50 ≥ 10× better than a warm coalesced engine request;
* batched per-corner latency ≥ 5× better than single-request predicts.
"""

import json
import time
from pathlib import Path

from repro.api import (ModelConfig, SearchConfig, StcoConfig,
                       SurrogateConfig, TechnologyConfig, Workspace)
from repro.serve import ServeClient, ServeService, StcoServer
from repro.utils import print_table

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_predict.json"

TECH = TechnologyConfig(
    cells=("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1"),
    train_corners=((1.0, 0.0, 1.0), (0.9, 0.05, 1.1)),
    test_corners=((0.95, 0.02, 1.05),),
    slews=(8e-9,), loads=(15e-15,), n_bisect=3, max_steps=200)

DESIGN = "s298"
COALESCED_CLIENTS = 8
SINGLE_REQUESTS = 40
BATCH_CORNERS = 64

# The corner grid of the harvesting run; warm requests and predict
# queries stay inside it so every engine artifact is a cache hit.
VDD, VTH, COX = (0.85, 0.95, 1.05, 1.15), (-0.05, 0.05), (0.9, 1.1)


def _harvest_config() -> StcoConfig:
    return StcoConfig(
        mode="search", benchmark=DESIGN, technology=TECH,
        model=ModelConfig(epochs=10),
        search=SearchConfig(optimizer="random", seed=0, iterations=16,
                            vdd_scales=VDD, vth_shifts=VTH,
                            cox_scales=COX),
        surrogate=SurrogateConfig(harvest=True, persist_model=True,
                                  members=3, hidden=8, epochs=40,
                                  min_observations=4))


def _warm_config() -> StcoConfig:
    # A different sub-space of the same grid: a genuine new document
    # (so it executes once) whose every evaluation is already cached.
    return StcoConfig(
        mode="search", benchmark=DESIGN, technology=TECH,
        model=ModelConfig(epochs=10),
        search=SearchConfig(optimizer="anneal", seed=1, iterations=12,
                            vdd_scales=(0.95, 1.05),
                            vth_shifts=VTH, cox_scales=COX))


def _percentile(sorted_s, q):
    return sorted_s[min(int(q * len(sorted_s)), len(sorted_s) - 1)]


def test_predict_latency(tmp_path):
    workspace = Workspace(tmp_path / "ws")
    service = ServeService(workspace, workers=2)
    runs = {}
    try:
        with StcoServer(service) as server:
            client = ServeClient(server.url)

            # 1) Cold engine: the full pipeline, which also registers
            #    the ensemble the predict edge serves.
            t0 = time.perf_counter()
            client.run(_harvest_config(), timeout_s=1800)
            runs["cold_engine"] = {"wall_s": time.perf_counter() - t0,
                                   "requests": 1}

            # 2) Warm coalesced: N identical submissions, one warm
            #    execution answering all of them.
            t0 = time.perf_counter()
            ids = [client.submit(_warm_config())["job_id"]
                   for _ in range(COALESCED_CLIENTS)]
            jobs = [client.wait(i, timeout_s=1800, poll_s=0.05)
                    for i in ids]
            wall = time.perf_counter() - t0
            leaders = sum(1 for j in jobs if not j["coalesced_with"])
            runs["warm_coalesced"] = {"wall_s": wall,
                                      "requests": COALESCED_CLIENTS,
                                      "executions": leaders}
            assert all(j["state"] == "succeeded" for j in jobs)
            assert leaders == 1          # one execution, N answers

            # 3) Single predicts: cycle 8 corners so the LRU serves
            #    repeats, as it would under production query skew.
            corners = [(v, t, c) for v in VDD[:2] for t in VTH
                       for c in COX]
            client.predict(DESIGN, corners[0])     # load the model
            lat = []
            for i in range(SINGLE_REQUESTS):
                t0 = time.perf_counter()
                doc = client.predict(DESIGN, corners[i % len(corners)])
                lat.append(time.perf_counter() - t0)
                assert doc["uncertainty"]["mean_std"] >= 0.0
            lat.sort()
            runs["predict_single"] = {
                "wall_s": sum(lat), "requests": SINGLE_REQUESTS,
                "p50_s": _percentile(lat, 0.50),
                "p90_s": _percentile(lat, 0.90)}

            # 4) One batched request over a dense corner grid.
            grid = [(0.85 + 0.005 * i, -0.05, 0.9)
                    for i in range(BATCH_CORNERS)]
            t0 = time.perf_counter()
            batch = client.predict_batch(DESIGN, grid)
            wall = time.perf_counter() - t0
            assert batch["count"] == BATCH_CORNERS
            runs["predict_batch"] = {"wall_s": wall,
                                     "requests": BATCH_CORNERS}
    finally:
        service.close(timeout=30)

    def per_request(name):
        return runs[name]["wall_s"] / runs[name]["requests"]

    p50 = runs["predict_single"]["p50_s"]
    speedups = {
        "predict_vs_cold": per_request("cold_engine") / max(p50, 1e-9),
        "predict_vs_warm_coalesced":
            per_request("warm_coalesced") / max(p50, 1e-9),
        "batch_vs_single_per_item":
            per_request("predict_single")
            / max(per_request("predict_batch"), 1e-9),
    }
    artifact = {
        "design": DESIGN,
        "clients": COALESCED_CLIENTS,
        "runs": runs,
        "per_request_s": {name: per_request(name) for name in runs},
        "predict_p50_s": p50,
        "predict_p90_s": runs["predict_single"]["p90_s"],
        "speedups": speedups,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=1))

    print()
    print_table(
        ["Regime", "Requests", "Wall(s)", "Per-req(s)", "vs p50(X)"],
        [[name, str(data["requests"]), f"{data['wall_s']:.3f}",
          f"{per_request(name):.6f}",
          f"{per_request(name) / max(p50, 1e-9):.1f}"]
         for name, data in runs.items()],
        title="Predict latency (tier-0 edge vs engine)")

    # Hard guarantees (the acceptance criteria).
    assert speedups["predict_vs_cold"] >= 100.0
    assert speedups["predict_vs_warm_coalesced"] >= 10.0
    assert speedups["batch_vs_single_per_item"] >= 5.0
