"""TCAD surrogate walkthrough (paper Sec. II-A, Fig. 2, Table II).

Simulates planar TFT devices with the 2-D Poisson / quasi-2D IV solvers,
encodes them with the unified device encoding, trains the RelGAT Poisson
emulator and IV predictor, and reports Table II-style MSE / R2.

Run:  python examples/device_surrogate.py
"""

import numpy as np

from repro.encoding import DeviceEncoder
from repro.nn import TrainConfig
from repro.surrogate import train_surrogates
from repro.tcad import (ChargeSheetIV, PlanarTFT, PoissonSolver,
                        TCADDatasetBuilder)


def main():
    print("1) Full-physics reference: one IGZO TFT…")
    device = PlanarTFT(channel_material="igzo")
    solver = PoissonSolver(device.mesh())
    sol = solver.solve(vg=2.0, vd=1.0)
    print(f"   Poisson converged in {sol.iterations} Newton iterations; "
          f"peak electron density {sol.n.max():.2e} /m^3")
    iv = ChargeSheetIV(device)
    print(f"   Id(vg=2, vd=1) = {iv.ids(2.0, 1.0):.3e} A")

    print("2) Unified device encoding (Fig. 2)…")
    encoder = DeviceEncoder(include_charge=True)
    graph = encoder.encode(device.mesh(), vg=2.0, vd=1.0, charge=sol.n)
    print(f"   graph: {graph.num_nodes} nodes x "
          f"{graph.num_node_features} features, "
          f"{graph.num_edges} edges x {graph.num_edge_features} "
          f"spatial edge features")

    print("3) Generating a device dataset (random geometry/material/bias)…")
    builder = TCADDatasetBuilder(
        seed=7, mesh_resolution={"nx_channel": 9, "nx_overlap": 3,
                                 "ny_semi": 4, "ny_ox": 3})
    dataset = builder.build(n_train=40, n_val=10, n_test=10, n_unseen=10)
    print(f"   splits: {dataset.sizes()}")

    print("4) Training RelGAT surrogates (CI-scale widths)…")
    metrics, poisson_model, iv_model = train_surrogates(
        dataset, TrainConfig(epochs=25, batch_size=8, lr=3e-3,
                             grad_clip=2.0))
    for m in metrics.values():
        print(f"   {m.name}: val MSE {m.mse_val:.3e}, "
              f"test {m.mse_test:.3e}, unseen {m.mse_unseen:.3e}, "
              f"R2(unseen) {m.r2_unseen:.4f}")

    print("5) Surrogate vs physics on one unseen device…")
    g = dataset.poisson["unseen"][0]
    psi_pred = poisson_model.predict_potential(g)
    psi_true = g.y[:, 0] * 5.0
    err = np.sqrt(np.mean((psi_pred - psi_true) ** 2))
    print(f"   potential RMSE: {err * 1e3:.1f} mV over "
          f"{g.num_nodes} mesh nodes")


if __name__ == "__main__":
    main()
