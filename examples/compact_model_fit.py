"""Unified compact model validation (paper Sec. II-B, Fig. 3).

Fits Eq. (1)'s mobility-enhancement compact model to synthetic measured
I-V curves of the three technologies at the paper's device geometries and
prints the extracted parameters and fit quality.

Run:  python examples/compact_model_fit.py
"""

import numpy as np

from repro.compact import (TFTModel, extract_parameters, measured_device,
                           technology_presets)
from repro.utils import print_table


def main():
    rows = []
    for tech in ("cnt", "ltps", "igzo"):
        device = measured_device(tech, seed=1)
        template = technology_presets()[tech].with_updates(
            l=device.true_params.l, w=device.true_params.w)
        result = extract_parameters(device.all_data(), template)
        fit, true = result.params, device.true_params
        rows.append([
            tech.upper(),
            f"{true.l * 1e6:.0f}/{true.w * 1e6:.0f}",
            f"{fit.vth:+.3f} ({true.vth:+.3f})",
            f"{fit.mu0 * 1e4:.2f} ({true.mu0 * 1e4:.2f})",
            f"{fit.gamma:.2f} ({true.gamma:.2f})",
            f"{result.mean_rel_error * 100:.1f}%",
        ])
        # Fig. 3 overlay data: model vs measurement on the transfer curve.
        model = TFTModel(fit)
        meas = device.transfer
        i_model = model.ids(meas.vgs, meas.vds)
        on = np.abs(meas.ids) > np.abs(meas.ids).max() * 1e-3
        overlay = np.mean(np.abs(
            (i_model[on] - meas.ids[on]) / meas.ids[on])) * 100
        print(f"{tech.upper()}: transfer-curve overlay error "
              f"{overlay:.1f}% across {on.sum()} points")
    print()
    print_table(
        ["Tech", "L/W (um)", "Vth fit (true)", "mu0 cm2/Vs fit (true)",
         "gamma fit (true)", "mean |rel err|"],
        rows, title="Fig. 3 reproduction: compact model vs measured I-V")


if __name__ == "__main__":
    main()
