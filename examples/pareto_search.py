"""Multi-objective Pareto search over a mixed design space.

Demonstrates the search subsystem end to end:

1. train the characterization GNN once (as in ``quickstart.py``);
2. define a **mixed** design space — continuous VDD with snapping,
   discrete Vth/Cox — something the fixed 45-point grid cannot express;
3. race annealing, NSGA-II-style evolution and surrogate-guided search
   (ranked by single-cell GNN predictions) in one portfolio over a
   shared engine, reallocating budget to whichever is winning;
4. print the resulting Pareto front over raw (power, delay, area), the
   hypervolume, and what each scalarisation would have picked.

Run:  python examples/pareto_search.py
(add PYTHONPATH=src if the package is not installed;
 set REPRO_SMOKE=1 for a CI-sized run)
"""

import os

from repro.api import ModelConfig, TechnologyConfig, Workspace
from repro.eda import build_benchmark
from repro.engine import EngineConfig, EvaluationEngine, PPAWeights
from repro.search import (Axis, EvolutionaryOptimizer, ParetoArchive,
                          PortfolioSearch, SearchRun,
                          SimulatedAnnealing, SurrogateGuidedOptimizer,
                          mixed_space)
from repro.utils import print_table

SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main():
    cells = (("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1") if SMOKE else
             ("INV_X1", "NAND2_X1", "NOR2_X1", "AND2_X1", "XOR2_X1",
              "DFF_X1"))
    tech = TechnologyConfig(
        cells=cells,
        train_corners=((1.0, 0.0, 1.0), (0.85, 0.05, 1.1),
                       (1.15, -0.05, 0.9)),
        test_corners=((0.95, 0.02, 1.05),),
        slews=(8e-9,), loads=(15e-15,),
        n_bisect=3, max_steps=200 if SMOKE else 220)

    print("1) Building the characterization dataset + GNN "
          "(workspace-cached)…")
    # The mixed space below is not yet expressible as an StcoConfig, so
    # this example drives the search layer directly — but the expensive
    # setup still comes from the shared workspace.
    workspace = Workspace(".cache/workspace")
    builder = workspace.builder(
        tech, ModelConfig(epochs=8 if SMOKE else 25))

    print("2) Mixed design space: continuous VDD (snapped to 0.025), "
          "discrete Vth/Cox…")
    # The step snaps continuous samples to a 0.025 resolution, so the
    # engine's content-addressed cache sees a finite corner set.
    space = mixed_space(
        vdd_scale=Axis.continuous("vdd_scale", 0.8, 1.2, step=0.025),
        vth_shift=(-0.1, 0.0, 0.1),
        cox_scale=(0.8, 1.0, 1.2))

    print("3) Racing anneal / NSGA-II / surrogate in one portfolio…")
    netlist = build_benchmark("s298" if SMOKE else "s386")
    weights = PPAWeights()
    engine = EvaluationEngine(builder, EngineConfig())
    portfolio = PortfolioSearch(
        [SimulatedAnnealing(space, seed=0),
         EvolutionaryOptimizer(space, seed=1, mode="pareto"),
         SurrogateGuidedOptimizer.from_builder(space, builder,
                                               weights=weights, seed=2)],
        round_size=4)
    archive = ParetoArchive()
    run = SearchRun(netlist, portfolio, engine, weights=weights,
                    archive=archive)
    result = run.run(budget=24 if SMOKE else 60)

    print_table(
        ["Member", "Evals", "Best reward", "Next-round quota"],
        [[r["name"], str(r["evaluations"]),
          "-" if r["best_reward"] is None else f"{r['best_reward']:.3f}",
          str(r["quota"])] for r in portfolio.standings()],
        title=f"Portfolio race: {result.evaluations} distinct corners, "
              f"{result.engine_misses} engine flows, optimum first seen "
              f"at evaluation {result.evaluations_to_optimum}")

    print_table(
        ["Corner (vdd, vth, cox)", "Power [uW]", "Delay [ns]",
         "Area [um2]", "Reward"],
        [[str(tuple(f["corner"])), f"{f['power_w'] * 1e6:.2f}",
          f"{f['delay_s'] * 1e9:.2f}", f"{f['area_um2']:.0f}",
          f"{f['reward']:.3f}"] for f in result.pareto_front],
        title=f"Pareto front: {len(result.pareto_front)} non-dominated "
              f"corners, hypervolume {result.hypervolume:.3f}")

    print("\n4) Scalarisation views of the same front:")
    for label, w in (("balanced", PPAWeights()),
                     ("power-conscious", PPAWeights(power=3.0)),
                     ("speed-first", PPAWeights(performance=3.0))):
        pick = archive.scalarized_best(w)
        print(f"   {label:>15}: corner {pick.corner.key()} "
              f"(reward {w.score(pick.result):.3f})")
    print("\nThe archive kept the raw objective vectors, so every "
          "PPAWeights trade-off is answered from one search run.")


if __name__ == "__main__":
    main()
