"""API quickstart: the whole paper pipeline as one config document.

Describes a run declaratively (:class:`repro.api.StcoConfig`), executes
it against a persistent :class:`repro.api.Workspace`, and shows that a
second run retrains nothing and re-characterizes nothing — the same
flow the ``repro`` CLI drives headlessly:

    repro run examples/quickstart.json --workspace .cache/workspace

Run:  python examples/api_quickstart.py
(add PYTHONPATH=src if the package is not installed;
 set REPRO_SMOKE=1 for a CI-sized run)
"""

import os
from pathlib import Path

from repro.api import (ModelConfig, SearchConfig, StcoConfig,
                       TechnologyConfig, Workspace, run)
from repro.utils import print_table

SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def make_config() -> StcoConfig:
    cells = (("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1") if SMOKE else
             ("INV_X1", "NAND2_X1", "NOR2_X1", "AND2_X1", "XOR2_X1",
              "DFF_X1"))
    return StcoConfig(
        mode="search",
        benchmark="s298",
        technology=TechnologyConfig(
            cells=cells,
            train_corners=((1.0, 0.0, 1.0), (0.85, 0.05, 1.1),
                           (1.15, -0.05, 0.9)),
            test_corners=((0.95, 0.02, 1.05),),
            slews=(8e-9,), loads=(15e-15,),
            n_bisect=3, max_steps=200 if SMOKE else 220),
        model=ModelConfig(epochs=8 if SMOKE else 25),
        search=SearchConfig(
            optimizer="anneal", iterations=8 if SMOKE else 20,
            vdd_scales=(0.85, 1.0, 1.15),
            vth_shifts=(-0.05, 0.0, 0.05),
            cox_scales=(0.9, 1.1)))


def main():
    config = make_config()
    path = config.save(Path(".cache") / "api_quickstart.json")
    print(f"1) Config saved to {path} — `repro run {path}` replays it.")

    workspace = Workspace(".cache/workspace")
    print(f"2) Running against {workspace} (cold: measures, trains, "
          f"characterizes)…")
    report = run(config, workspace)
    print_table(["field", "value"], report.summary_rows(),
                title="First run")

    print("3) Running the same config again (fresh Workspace handle, "
          "as a new process would)…")
    second = run(config, Workspace(".cache/workspace"))
    ws = second.cache_stats["workspace"]
    print(f"   models trained: {ws['models_trained']}, "
          f"characterizations: {second.characterizations}, "
          f"engine misses: {second.engine_misses}")
    assert second.best_reward == report.best_reward
    assert ws["models_trained"] == 0
    assert second.characterizations == 0
    print("   second run reused every artifact — identical result, "
          "zero retraining, zero re-characterization.")


if __name__ == "__main__":
    main()
