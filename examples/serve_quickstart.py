"""Serve quickstart: submit → poll → report through ServeClient.

Boots the STCO service in-process (the same thing ``repro serve
--workspace .cache/workspace`` runs standalone), then plays two
tenants: both submit the *same* config document, so the second request
coalesces onto the first execution — one engine run, two identical
reports — and a third submission after completion is answered instantly
from the stored report (idempotent resubmission).

Run:  python examples/serve_quickstart.py
(add PYTHONPATH=src if the package is not installed;
 set REPRO_SMOKE=1 for a CI-sized run)
"""

import os

from repro.api import (ModelConfig, SearchConfig, StcoConfig,
                       TechnologyConfig, Workspace)
from repro.serve import ServeClient, ServeService, StcoServer
from repro.utils import print_table

SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def make_config() -> StcoConfig:
    return StcoConfig(
        mode="search",
        benchmark="s298",
        technology=TechnologyConfig(
            cells=("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1"),
            train_corners=((1.0, 0.0, 1.0), (0.9, 0.05, 1.1)),
            test_corners=((0.95, 0.02, 1.05),),
            slews=(8e-9,), loads=(15e-15,), n_bisect=3, max_steps=200),
        model=ModelConfig(epochs=8 if SMOKE else 20),
        search=SearchConfig(
            optimizer="anneal", iterations=6 if SMOKE else 15,
            vdd_scales=(0.9, 1.0, 1.1), vth_shifts=(0.0,),
            cox_scales=(0.9, 1.1)))


def main():
    service = ServeService(Workspace(".cache/serve-workspace"),
                           workers=2)
    with StcoServer(service) as server:   # port=0 → ephemeral
        print(f"1) Service listening on {server.url}")
        client = ServeClient(server.url)
        config = make_config()

        print("2) Two tenants submit the same document…")
        first = client.submit(config)
        second = client.submit(config)
        print(f"   first:  job {first['job_id']} "
              f"(state {first['state']})")
        print(f"   second: job {second['job_id']} "
              f"(coalesced with {second['coalesced_with'] or 'nobody'})")

        print("3) Polling until both finish…")
        jobs = [client.wait(j["job_id"], timeout_s=1800)
                for j in (first, second)]
        for job in jobs:
            rounds = len(client.events(job["job_id"]))
            print(f"   {job['job_id']}: {job['state']} "
                  f"({rounds} progress event(s))")
        assert jobs[0]["report"] == jobs[1]["report"], \
            "coalesced jobs must share one report"

        print("4) Resubmitting after completion (idempotent)…")
        third = client.submit(config)
        print(f"   answered instantly: state {third['state']}, "
              f"reused {third['coalesced_with']}")

        report = jobs[0]["report"]
        print_table(["field", "value"],
                    [["best corner", str(report["best_corner"])],
                     ["best reward", f"{report['best_reward']:.4f}"],
                     ["engine misses", str(report["engine_misses"])],
                     ["jobs sharing it", "3"]],
                    title="One execution, three answers")
        health = client.health()
        print(f"   health: {health['jobs']['succeeded']} succeeded, "
              f"coalescer {health['coalescer']}")
    service.close()


if __name__ == "__main__":
    main()
