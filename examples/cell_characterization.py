"""GNN cell-library characterization (paper Sec. II-C, Tables III & IV).

Characterizes a cell subset with SPICE across technology corners, encodes
each measurement with the Table III node features, trains the 3-layer GCN
model, and prints per-metric MAPE plus the measured characterization
speedup of the GNN path.

Run:  python examples/cell_characterization.py
"""

from repro.charlib import (CharConfig, CharTrainConfig,
                           GNNLibraryBuilder, SpiceLibraryBuilder,
                           build_char_dataset, ci_test_corners,
                           ci_train_corners, evaluate_char_model,
                           train_char_model)
from repro.utils import print_table


def main():
    cells = ("INV_X1", "NAND2_X1", "NOR2_X1", "XOR2_X1", "DFF_X1")
    cfg = CharConfig(slews=(5e-9, 20e-9), loads=(10e-15, 40e-15),
                     n_bisect=4, max_steps=260)
    print("1) SPICE characterization over the corner grids "
          "(cached after the first run)…")
    dataset = build_char_dataset(
        "ltps", cells=cells,
        train_corners=ci_train_corners()[:4],
        test_corners=ci_test_corners()[:6],
        config=cfg)
    total = sum(c["train"] for c in dataset.counts().values())
    print(f"   {total} training measurements over "
          f"{len(dataset.metrics_present())} metrics")

    print("2) Training the 3-layer GCN + per-metric MLP heads…")
    model = train_char_model(dataset,
                             train_config=CharTrainConfig(epochs=40))
    mapes = evaluate_char_model(model, dataset)
    print_table(["Metric", "MAPE (test corners)"],
                [[m, f"{v:.2f}%"] for m, v in sorted(mapes.items())],
                title="Table IV-style accuracy (CI-scale)")

    print("3) Library generation: SPICE vs GNN…")
    spice = SpiceLibraryBuilder("ltps", cells=cells, config=cfg)
    lib_spice = spice.build()
    gnn = GNNLibraryBuilder(model, dataset, cells=cells, config=cfg)
    lib_gnn = gnn.build()
    print(f"   SPICE: {spice.last_runtime_s:.1f} s | "
          f"GNN: {gnn.last_runtime_s * 1e3:.0f} ms | "
          f"speedup {spice.last_runtime_s / gnn.last_runtime_s:.0f}x")
    rows = []
    for name in cells:
        s, g = lib_spice.cell(name), lib_gnn.cell(name)
        d_s = s.delay.lookup(10e-9, 20e-15)
        d_g = g.delay.lookup(10e-9, 20e-15)
        rows.append([name, f"{d_s * 1e9:.2f}", f"{d_g * 1e9:.2f}",
                     f"{abs(d_g - d_s) / d_s * 100:.1f}%"])
    print_table(["Cell", "SPICE delay (ns)", "GNN delay (ns)", "error"],
                rows)


if __name__ == "__main__":
    main()
