"""Campaign quickstart: sweep scenarios through the evaluation engine.

Demonstrates the engine subsystem end to end:

1. train the characterization GNN once (as in ``quickstart.py``);
2. sweep (benchmark × agent × PPA-weights) scenarios through one shared
   engine — every scenario reuses the others' characterized corners;
3. checkpoint after every scenario and resume instantly on a re-run;
4. persist the corner cache on disk, so re-running this script performs
   **zero** re-characterizations.

Run:  python examples/parallel_campaign.py
(add PYTHONPATH=src if the package is not installed;
 set REPRO_SMOKE=1 for a CI-sized run)
"""

import os

from repro.charlib import (CharConfig, CharTrainConfig, Corner,
                           GNNLibraryBuilder, build_char_dataset,
                           train_char_model)
from repro.engine import (Campaign, EngineConfig, available_workers,
                          sweep_scenarios)
from repro.stco import DesignSpace
from repro.utils import print_table

SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main():
    cells = (("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1") if SMOKE else
             ("INV_X1", "NAND2_X1", "NOR2_X1", "AND2_X1", "XOR2_X1",
              "DFF_X1"))
    cfg = CharConfig(slews=(8e-9,), loads=(15e-15,), n_bisect=3,
                     max_steps=200 if SMOKE else 220)

    print("1) Building the characterization dataset + GNN (cached)…")
    dataset = build_char_dataset(
        "ltps", cells=cells,
        train_corners=[Corner(1.0, 0.0, 1.0), Corner(0.85, 0.05, 1.1),
                       Corner(1.15, -0.05, 0.9)],
        test_corners=[Corner(0.95, 0.02, 1.05)], config=cfg)
    model = train_char_model(
        dataset, train_config=CharTrainConfig(epochs=8 if SMOKE else 25))
    builder = GNNLibraryBuilder(model, dataset, cells=cells, config=cfg)

    print("2) Sweeping (benchmark x agent x weights) scenarios…")
    scenarios = sweep_scenarios(
        benchmarks=["s298"] if SMOKE else ["s298", "s386", "s526"],
        agents=("qlearning", "random") if SMOKE
        else ("qlearning", "random", "anneal"),
        weights_list=((1.0, 1.0, 0.5),    # balanced
                      (2.0, 1.0, 0.5)),   # power-conscious
        iterations=4 if SMOKE else 8)
    space = DesignSpace(vdd_scales=(0.9, 1.0, 1.1),
                        vth_shifts=(-0.05, 0.05), cox_scales=(0.9, 1.1))

    # One engine for the whole campaign: the design space is prefetched
    # up-front (parallel across CPUs when the machine has them, batched
    # through the GNN otherwise), and the persistent cache means the
    # *next* campaign starts warm.
    workers = available_workers()
    config = EngineConfig(
        backend=f"process:{workers}" if workers > 1 else "serial",
        batch_characterization=True,
        cache_dir=".cache/engine")
    campaign = Campaign(builder, scenarios, space=space,
                        engine_config=config,
                        checkpoint_path=".cache/campaign_ckpt.json",
                        prefetch=True)
    report = campaign.run()

    print_table(["Scenario", "Best corner", "Reward", "Evals", "Time"],
                report.summary_rows(),
                title=f"Campaign: {len(scenarios)} scenarios, "
                      f"{report.engine_stats['characterizations']} "
                      f"characterizations, "
                      f"{report.resumed_scenarios} resumed")
    best = report.best()
    print(f"\nBest overall: {best.scenario.label()} at corner "
          f"{best.best_corner} (reward {best.best_reward:.3f})")
    print("Re-run this script: scenarios resume from the checkpoint and "
          "the corner cache makes re-characterization count 0.")


if __name__ == "__main__":
    main()
