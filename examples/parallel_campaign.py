"""Campaign quickstart: sweep scenarios through the evaluation engine.

Demonstrates the engine subsystem end to end, driven declaratively:

1. a :class:`repro.api.Workspace` builds (and caches) the
   characterization GNN — no copy-pasted training block;
2. a ``mode="campaign"`` :class:`repro.api.StcoConfig` sweeps
   (benchmark × agent × PPA-weights) scenarios through one shared
   engine — every scenario reuses the others' characterized corners;
3. the campaign checkpoints after every scenario and resumes instantly
   on a re-run;
4. the workspace's disk cache means re-running this script performs
   **zero** re-characterizations.

Run:  python examples/parallel_campaign.py
(add PYTHONPATH=src if the package is not installed;
 set REPRO_SMOKE=1 for a CI-sized run)
"""

import os

from repro.api import (EngineConfig, ModelConfig, ScenarioConfig,
                       SearchConfig, StcoConfig, TechnologyConfig,
                       Workspace, run)
from repro.engine import available_workers
from repro.utils import print_table

SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main():
    cells = (("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1") if SMOKE else
             ("INV_X1", "NAND2_X1", "NOR2_X1", "AND2_X1", "XOR2_X1",
              "DFF_X1"))
    benchmarks = ["s298"] if SMOKE else ["s298", "s386", "s526"]
    agents = (("qlearning", "random") if SMOKE
              else ("qlearning", "random", "anneal"))
    weights_list = ((1.0, 1.0, 0.5),    # balanced
                    (2.0, 1.0, 0.5))    # power-conscious
    iterations = 4 if SMOKE else 8
    scenarios = tuple(
        ScenarioConfig(benchmark=b, agent=a, weights=w,
                       iterations=iterations)
        for b in benchmarks for a in agents for w in weights_list)

    workers = available_workers()
    config = StcoConfig(
        mode="campaign",
        technology=TechnologyConfig(
            cells=cells,
            train_corners=((1.0, 0.0, 1.0), (0.85, 0.05, 1.1),
                           (1.15, -0.05, 0.9)),
            test_corners=((0.95, 0.02, 1.05),),
            slews=(8e-9,), loads=(15e-15,),
            n_bisect=3, max_steps=200 if SMOKE else 220),
        model=ModelConfig(epochs=8 if SMOKE else 25),
        # One engine for the whole campaign: the design space is
        # prefetched up-front (parallel across CPUs when the machine has
        # them, batched through the GNN otherwise), and the workspace's
        # persistent cache means the *next* campaign starts warm.
        engine=EngineConfig(
            backend=f"process:{workers}" if workers > 1 else "serial",
            batch_characterization=True),
        search=SearchConfig(vdd_scales=(0.9, 1.0, 1.1),
                            vth_shifts=(-0.05, 0.05),
                            cox_scales=(0.9, 1.1)),
        scenarios=scenarios,
        checkpoint="campaign_ckpt.json",
        prefetch=True)

    print("1) Building the characterization dataset + GNN "
          "(workspace-cached)…")
    workspace = Workspace(".cache/workspace")

    print("2) Sweeping (benchmark x agent x weights) scenarios…")
    report = run(config, workspace)

    def label(s):
        weights_txt = ",".join(f"{w:g}" for w in s["weights"])
        return (f"{s['benchmark']}/{s['agent']}"
                f"(seed={s['seed']}, w={weights_txt})")

    rows = [[label(s["scenario"]),
             str(tuple(s["best_corner"])), f"{s['best_reward']:.3f}",
             str(s["evaluations"]),
             "resume" if s.get("resumed") else f"{s['runtime_s']:.2f}s"]
            for s in report.scenarios]
    engine_stats = report.cache_stats["engine"]
    print_table(["Scenario", "Best corner", "Reward", "Evals", "Time"],
                rows,
                title=f"Campaign: {len(scenarios)} scenarios, "
                      f"{engine_stats['characterizations']} "
                      f"characterizations, "
                      f"{report.resumed_scenarios} resumed")
    print(f"\nBest overall: corner {report.best_corner} "
          f"(reward {report.best_reward:.3f})")
    print("Re-run this script: scenarios resume from the checkpoint and "
          "the corner cache makes re-characterization count 0.")


if __name__ == "__main__":
    main()
