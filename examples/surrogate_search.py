"""Surrogate-guided search: learn the objective, spend evaluations
where the model is unsure.

Three acts on one persistent workspace:

1. a ``bayes`` search (online deep-ensemble surrogate + expected
   improvement) with **harvesting** on — every engine evaluation
   becomes a persisted training row;
2. the same config warm: nothing retrains, nothing re-characterizes,
   nothing re-featurizes — the record store recognises every row by
   content key;
3. a promotion-gated random search: the surrogate screens candidates
   and only the top few reach the engine — plus an offline ensemble
   trained from the accumulated store
   (``repro surrogate train .cache/surrogate-ws``).

Run:  python examples/surrogate_search.py
(add PYTHONPATH=src if the package is not installed;
 set REPRO_SMOKE=1 for a CI-sized run)
"""

import os
from dataclasses import replace

from repro.api import (ModelConfig, SearchConfig, StcoConfig,
                       SurrogateConfig, TechnologyConfig, Workspace, run)
from repro.utils import print_table

SMOKE = bool(os.environ.get("REPRO_SMOKE"))
WS = ".cache/surrogate-ws"


def make_config() -> StcoConfig:
    return StcoConfig(
        mode="search",
        benchmark="s298",
        technology=TechnologyConfig(
            cells=("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1"),
            train_corners=((1.0, 0.0, 1.0), (0.9, 0.05, 1.1)),
            test_corners=((0.95, 0.02, 1.05),),
            slews=(8e-9,), loads=(15e-15,), n_bisect=3, max_steps=200),
        model=ModelConfig(epochs=8 if SMOKE else 20),
        search=SearchConfig(
            optimizer="bayes", seed=0,
            iterations=10 if SMOKE else 24),
        surrogate=SurrogateConfig(harvest=True, min_observations=5))


def main():
    config = make_config()
    workspace = Workspace(WS)

    print("1) Bayes search with harvesting — every evaluation "
          "becomes a training row…")
    report = run(config, workspace)
    print_table(["field", "value"], report.summary_rows(),
                title="bayes + harvest")
    # Every unique evaluation is in the store — freshly harvested on a
    # cold workspace, recognised by content key on a rerun.
    sg = report.surrogate
    assert sg["store_rows"] >= report.evaluations
    assert sg["harvested"] + sg["skipped"] >= report.evaluations

    print("2) Same config, fresh Workspace handle (as a new process "
          "would see it)…")
    second = run(config, Workspace(WS))
    sg = second.surrogate
    print(f"   engine misses: {second.engine_misses}, "
          f"rows harvested: {sg['harvested']}, "
          f"featurizations: {sg['featurizations']}, "
          f"store rows: {sg['store_rows']}")
    assert second.engine_misses == 0
    assert sg["featurizations"] == 0     # zero re-featurization
    print("   warm run reused the engine cache AND the record store.")

    print("3) Promotion-gated random search: the surrogate screens "
          "candidates, only the top-k cost engine evaluations…")
    gated = replace(
        config,
        search=replace(config.search, optimizer="random", seed=1),
        surrogate=SurrogateConfig(harvest=True, screen=10, promote=2,
                                  min_observations=5))
    third = run(gated, Workspace(WS))
    sg = third.surrogate
    print(f"   screened {sg.get('screened', 0)} candidates, promoted "
          f"{sg.get('promoted', 0)} to the engine "
          f"(backfilled {sg.get('backfilled', 0)} predictions)")

    store = Workspace(WS).record_store()
    if len(store) >= 8:
        model = Workspace(WS).surrogate_model()
        print(f"4) Offline ensemble trained on {model.trained_rows} "
              f"harvested rows (fingerprint {model.fingerprint()}) — "
              f"registered like any workspace artifact.")


if __name__ == "__main__":
    main()
