"""Quickstart: one full fast-STCO iteration, end to end (paper Fig. 1).

Builds a small characterized library with transistor-level SPICE, trains
the characterization GNN, and runs the RL-driven technology exploration on
an ISCAS89-class benchmark — printing the PPA of the chosen technology
corner and the measured GNN-vs-SPICE characterization speedup.

Run:  python examples/quickstart.py
"""

import time

from repro.charlib import (CharConfig, CharTrainConfig, Corner,
                           GNNLibraryBuilder, SpiceLibraryBuilder,
                           build_char_dataset, train_char_model)
from repro.eda import build_benchmark
from repro.stco import DesignSpace, FastSTCO


def main():
    cells = ("INV_X1", "INV_X2", "NAND2_X1", "NOR2_X1", "AND2_X1",
             "XOR2_X1", "DFF_X1")
    cfg = CharConfig(slews=(8e-9,), loads=(15e-15,), n_bisect=3,
                     max_steps=220)

    print("1) Characterizing training corners with transistor-level SPICE…")
    dataset = build_char_dataset(
        "ltps", cells=cells,
        train_corners=[Corner(1.0, 0.0, 1.0), Corner(0.85, 0.05, 1.1),
                       Corner(1.15, -0.05, 0.9)],
        test_corners=[Corner(0.95, 0.02, 1.05)],
        config=cfg)
    counts = dataset.counts()
    print(f"   dataset: {sum(c['train'] for c in counts.values())} "
          f"training points across {len(counts)} metrics")

    print("2) Training the cell-characterization GNN (3-layer GCN)…")
    model = train_char_model(dataset,
                             train_config=CharTrainConfig(epochs=25))

    print("3) Measuring characterization speedup (GNN vs SPICE)…")
    spice = SpiceLibraryBuilder("ltps", cells=cells, config=cfg)
    spice.build()
    gnn = GNNLibraryBuilder(model, dataset, cells=cells, config=cfg)
    gnn.build()
    speedup = spice.last_runtime_s / max(gnn.last_runtime_s, 1e-9)
    print(f"   SPICE {spice.last_runtime_s:.1f} s vs "
          f"GNN {gnn.last_runtime_s * 1e3:.0f} ms -> {speedup:.0f}x")

    print("4) RL exploration of (VDD, Vth, Cox) on benchmark s298…")
    design = build_benchmark("s298")
    space = DesignSpace(vdd_scales=(0.85, 1.0, 1.15),
                        vth_shifts=(-0.05, 0.0, 0.05),
                        cox_scales=(0.9, 1.1))
    stco = FastSTCO(design, model, dataset, cells=cells, char_config=cfg,
                    space=space)
    t0 = time.perf_counter()
    outcome = stco.run(iterations=10)
    print(f"   {outcome.iterations} iterations, "
          f"{outcome.evaluations} distinct corners, "
          f"{time.perf_counter() - t0:.1f} s total")
    print(f"   best corner (vdd, vth, cox scale): {outcome.best_corner}")
    ppa = outcome.best_ppa
    print(f"   PPA: {ppa['power_w'] * 1e6:.1f} uW, "
          f"{ppa['performance_hz'] / 1e6:.2f} MHz, "
          f"{ppa['area_um2']:.0f} um^2")


if __name__ == "__main__":
    main()
