"""Quickstart: one full fast-STCO iteration, end to end (paper Fig. 1).

Uses the declarative API: a :class:`repro.api.StcoConfig` describes the
technology, the characterization GNN and the exploration; a
:class:`repro.api.Workspace` owns the trained model and the engine
caches (so re-running this script is nearly instant); and
:func:`repro.api.run` executes the RL-driven technology exploration on
an ISCAS89-class benchmark — printing the PPA of the chosen technology
corner and the measured GNN-vs-SPICE characterization speedup.

Run:  python examples/quickstart.py
"""

import time

from repro.api import (ModelConfig, SearchConfig, StcoConfig,
                       TechnologyConfig, Workspace, run)
from repro.charlib import SpiceLibraryBuilder


def main():
    config = StcoConfig(
        mode="fast",
        benchmark="s298",
        technology=TechnologyConfig(
            cells=("INV_X1", "INV_X2", "NAND2_X1", "NOR2_X1", "AND2_X1",
                   "XOR2_X1", "DFF_X1"),
            train_corners=((1.0, 0.0, 1.0), (0.85, 0.05, 1.1),
                           (1.15, -0.05, 0.9)),
            test_corners=((0.95, 0.02, 1.05),),
            slews=(8e-9,), loads=(15e-15,), n_bisect=3, max_steps=220),
        model=ModelConfig(epochs=25),
        search=SearchConfig(
            optimizer="qlearning", iterations=10,
            vdd_scales=(0.85, 1.0, 1.15),
            vth_shifts=(-0.05, 0.0, 0.05),
            cox_scales=(0.9, 1.1)))
    workspace = Workspace(".cache/workspace")
    tech = config.technology

    print("1) Characterizing training corners with transistor-level "
          "SPICE (workspace-cached)…")
    dataset = workspace.dataset(tech)
    counts = dataset.counts()
    print(f"   dataset: {sum(c['train'] for c in counts.values())} "
          f"training points across {len(counts)} metrics")

    print("2) Training the cell-characterization GNN (3-layer GCN, "
          "workspace-cached)…")
    gnn = workspace.builder(tech, config.model)

    print("3) Measuring characterization speedup (GNN vs SPICE)…")
    spice = SpiceLibraryBuilder(tech.technology, cells=tech.cells,
                                config=tech.char_config())
    spice.build()
    gnn.build()
    speedup = spice.last_runtime_s / max(gnn.last_runtime_s, 1e-9)
    print(f"   SPICE {spice.last_runtime_s:.1f} s vs "
          f"GNN {gnn.last_runtime_s * 1e3:.0f} ms -> {speedup:.0f}x")

    print("4) RL exploration of (VDD, Vth, Cox) on benchmark s298…")
    t0 = time.perf_counter()
    report = run(config, workspace)
    print(f"   {config.search.iterations} iterations, "
          f"{report.evaluations} distinct corners, "
          f"{time.perf_counter() - t0:.1f} s total")
    print(f"   best corner (vdd, vth, cox scale): {report.best_corner}")
    ppa = report.best_ppa
    print(f"   PPA: {ppa['power_w'] * 1e6:.1f} uW, "
          f"{ppa['performance_hz'] / 1e6:.2f} MHz, "
          f"{ppa['area_um2']:.0f} um^2")


if __name__ == "__main__":
    main()
