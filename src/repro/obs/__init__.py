"""repro.obs: unified metrics + tracing across the whole pipeline.

Two dependency-free primitives, threaded through every layer:

* :mod:`~repro.obs.metrics` — a process-wide
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  histograms (thread-safe, labeled, snapshot/delta semantics) with
  Prometheus-text and JSON exposition. The engine's cache hits,
  the batcher's occupancy, the serve queue depth and the coalescer's
  leader/follower/duplicate counts all land here, and the serve layer
  exports it live at ``GET /v1/metrics``.
* :mod:`~repro.obs.trace` — lightweight span trees
  (``with span("engine.characterize", corners=3): …``) with wall and
  CPU time, built per request as the serve worker → search driver →
  engine call tree executes. Serve jobs persist their tree to the
  events sidecar; ``repro trace JOB_ID`` renders it.

Three closed-loop layers build on them:

* :mod:`~repro.obs.series` — a
  :class:`~repro.obs.series.SeriesRecorder` sampling the registry on
  an interval into a bounded ring + workspace JSONL, with windowed
  queries (deltas, rates, histogram quantiles over time).
* :mod:`~repro.obs.slo` — declarative
  :class:`~repro.obs.slo.SloRule` objectives over those windows with
  ok/warning/breach states and burn rates, rolled up to the
  healthy/degraded/unhealthy value ``/healthz`` reports.
* :mod:`~repro.obs.prof` — a stdlib
  :class:`~repro.obs.prof.SamplingProfiler` attached per serve job,
  persisting collapsed stacks (``kind="profile"`` event) rendered by
  ``repro profile JOB_ID``.

:func:`disabled` turns the primitives off (no-op instruments, no-op
spans) — the configuration the overhead benchmark compares against.
"""

from contextlib import contextmanager

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      NullRegistry, get_registry, use_registry)
from .prof import Profile, SamplingProfiler
from .series import SeriesRecorder
from .slo import (SloEngine, SloRule, cluster_rules, default_rules,
                  shard_series)
from .trace import (TraceContext, Span, current_context, current_span,
                    current_traceparent, format_traceparent,
                    mint_context, parse_traceparent, render_tree, span,
                    trace_context)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "get_registry", "use_registry",
    "Span", "span", "current_span", "render_tree",
    "TraceContext", "mint_context", "parse_traceparent",
    "format_traceparent", "trace_context", "current_context",
    "current_traceparent",
    "SeriesRecorder", "SloEngine", "SloRule", "default_rules",
    "cluster_rules", "shard_series",
    "Profile", "SamplingProfiler",
    "disabled",
]


@contextmanager
def disabled():
    """No-op every instrument and span within the block (components
    must be constructed inside it to bind the null instruments)."""
    from . import trace as _trace
    was = _trace.enabled()
    _trace.set_enabled(False)
    try:
        with use_registry(NullRegistry()) as registry:
            yield registry
    finally:
        _trace.set_enabled(was)
