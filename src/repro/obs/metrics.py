"""Process-wide metrics: counters, gauges and histograms, one registry.

Every layer of the pipeline already counts things — the engine counts
characterizations, the caches count hits, the coalescer counts leaders —
but each subsystem kept its own ad-hoc dict and none of it was visible
outside the owning object. A :class:`MetricsRegistry` is the one place
those numbers live:

* **instruments** — :class:`Counter` (monotonic), :class:`Gauge`
  (set/inc/dec), :class:`Histogram` (bucketed distribution with exact
  sum/count). All are thread-safe; a family with ``labels=(...)``
  fans out into per-label-value children (``family.labels(tier="disk")``).
* **snapshot / delta** — a flat ``{series: value}`` view that subtracts
  cleanly, generalizing ``EvaluationEngine.snapshot()`` to the whole
  process: bracket any window of work with :meth:`MetricsRegistry.snapshot`
  / :meth:`MetricsRegistry.delta`.
* **exposition** — Prometheus text (:meth:`render_prometheus`) and a
  JSON document (:meth:`render_json`), both served by the serve layer's
  ``GET /v1/metrics``.
* **collectors** — callbacks run at scrape time for values that are
  sampled rather than incremented (queue depth, body-cache occupancy).

The module keeps one process-wide default registry
(:func:`get_registry`); components fetch their instruments from it at
construction. Tests and the overhead benchmark swap it with
:func:`use_registry` — :class:`NullRegistry` hands out no-op instruments
so the fully-instrumented hot path can be timed against a zero-cost one.

Dependency-free by design: nothing here imports any other repro module.
"""

from __future__ import annotations

import bisect
import json
import threading
import time
from contextlib import contextmanager

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullRegistry", "get_registry", "use_registry",
           "quantile_from_cumulative", "DEFAULT_BUCKETS"]

#: Default histogram buckets (seconds): spans microsecond GNN forwards
#: to minute-scale campaign sweeps.
DEFAULT_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                   0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                   10.0, 30.0, 60.0)


class Counter:
    """Monotonically increasing value (events since process start)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (queue depth, occupancy)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Bucketed distribution with exact ``sum`` and ``count``.

    Buckets are cumulative at render time (Prometheus ``le`` semantics)
    but stored per-interval so ``observe`` is one bisect + two adds.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, buckets=DEFAULT_BUCKETS):
        self._lock = lock
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)   # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @contextmanager
    def time(self):
        """Observe the wall-clock of the ``with`` block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def cumulative(self) -> list:
        """[(upper_bound, cumulative_count)] including ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        out, total = [], 0
        for bound, n in zip(self.buckets + (float("inf"),), counts):
            total += n
            out.append((bound, total))
        return out

    def quantile(self, q: float):
        """Interpolated quantile of everything ever observed.

        ``None`` on an empty histogram; mass in the ``+Inf`` bucket
        clamps to the largest finite bound. See
        :func:`quantile_from_cumulative` for the interpolation rules.
        """
        return quantile_from_cumulative(self.cumulative(), q)


def quantile_from_cumulative(cumulative, q: float):
    """Interpolated quantile from ``[(upper_bound, cumulative_count)]``.

    The shared math behind :meth:`Histogram.quantile` and the series
    layer's quantile-over-window (which feeds it *bucket deltas*
    between two samples). Prometheus ``histogram_quantile`` semantics:
    linear interpolation inside the bucket holding the target rank.
    Returns ``None`` when there is no mass. Mass in the ``+Inf`` bucket
    clamps to the largest finite bound (the distribution's true tail is
    unknowable from the buckets).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not cumulative:
        return None
    total = cumulative[-1][1]
    if total <= 0:
        return None
    finite = [b for b, _ in cumulative
              if b is not None and b != float("inf")]
    largest_finite = finite[-1] if finite else None
    rank = q * total
    prev_bound, prev_cum = None, 0
    for bound, cum in cumulative:
        if cum > 0 and cum >= rank:
            if bound is None or bound == float("inf"):
                return largest_finite
            in_bucket = cum - prev_cum
            if prev_bound is None:
                # First (non-empty) bucket: no lower edge to
                # interpolate from — use 0 for positive bounds (the
                # natural origin for durations), else the bound itself.
                lower = 0.0 if bound > 0 else bound
            else:
                lower = prev_bound
            if in_bucket <= 0:
                return bound
            return lower + (bound - lower) * (rank - prev_cum) / in_bucket
        prev_bound, prev_cum = bound, cum
    return largest_finite


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_key(labelnames: tuple, labels: dict) -> tuple:
    if set(labels) != set(labelnames):
        raise ValueError(f"expected labels {labelnames}, "
                         f"got {sorted(labels)}")
    return tuple(str(labels[name]) for name in labelnames)


class Family:
    """One named metric and its per-label-value children.

    With ``labels=()`` the family has a single anonymous child and
    proxies the instrument methods directly (``family.inc()``); with
    label names, call :meth:`labels` to get (and memoize) a child.
    """

    def __init__(self, kind: str, name: str, help: str = "",
                 labelnames: tuple = (), buckets=DEFAULT_BUCKETS):
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = buckets
        self._lock = threading.Lock()
        self._children: dict = {}
        if not self.labelnames:
            self._children[()] = self._make()

    def _make(self):
        if self.kind == "histogram":
            return Histogram(self._lock, self._buckets)
        return _KINDS[self.kind](self._lock)

    def labels(self, **labels):
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make()
        return child

    def _default(self):
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} has labels "
                             f"{self.labelnames}; use .labels(...)")
        return self._children[()]

    # Unlabeled convenience proxies.
    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def time(self):
        return self._default().time()

    @property
    def value(self):
        return self._default().value

    @property
    def sum(self):
        return self._default().sum

    @property
    def count(self):
        return self._default().count

    def cumulative(self) -> list:
        return self._default().cumulative()

    def quantile(self, q: float):
        return self._default().quantile(q)

    def children(self) -> list:
        """[(label_dict, instrument)] snapshot, insertion order."""
        with self._lock:
            items = list(self._children.items())
        return [(dict(zip(self.labelnames, key)), child)
                for key, child in items]


def _series(name: str, labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return name
    inner = ",".join(f'{k}="{_escape(str(v))}"'
                     for k, v in merged.items())
    return f"{name}{{{inner}}}"


def _escape(value: str) -> str:
    """Label-value escaping per the 0.0.4 text format: backslash
    first (or the other escapes would double up), then double-quote
    and newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP-line escaping: the 0.0.4 format escapes only backslash and
    newline there (quotes are legal verbatim in help text)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Thread-safe, name-addressed home for every instrument."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, Family] = {}
        self._collectors: list = []
        self._collector_errors = 0

    # -- registration ------------------------------------------------------
    def _family(self, kind: str, name: str, help: str,
                labels: tuple, buckets=DEFAULT_BUCKETS) -> Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = Family(kind, name, help, labels, buckets)
                self._families[name] = family
                return family
        if family.kind != kind or family.labelnames != tuple(labels):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{family.kind}{family.labelnames}, requested "
                f"{kind}{tuple(labels)}")
        return family

    def counter(self, name: str, help: str = "",
                labels: tuple = ()) -> Family:
        return self._family("counter", name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: tuple = ()) -> Family:
        return self._family("gauge", name, help, labels)

    def histogram(self, name: str, help: str = "", labels: tuple = (),
                  buckets=DEFAULT_BUCKETS) -> Family:
        return self._family("histogram", name, help, labels, buckets)

    # -- scrape-time sampling ----------------------------------------------
    def add_collector(self, fn) -> None:
        """Register ``fn()`` to run before every snapshot/render — for
        gauges sampled from live state rather than incremented."""
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    def remove_collector(self, fn) -> None:
        with self._lock:
            try:
                self._collectors.remove(fn)
            except ValueError:
                pass

    def collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            try:
                fn()
            except Exception:   # noqa: BLE001 — one broken collector
                # must not take down the metrics endpoint.
                with self._lock:
                    self._collector_errors += 1

    # -- views -------------------------------------------------------------
    def _items(self) -> list:
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> dict:
        """Flat ``{series: value}`` of every instrument (collectors run
        first). Histograms contribute ``_sum`` / ``_count`` series so
        the whole dict subtracts cleanly via :meth:`delta`."""
        self.collect()
        out = {}
        for family in self._items():
            for labels, child in family.children():
                if family.kind == "histogram":
                    out[_series(family.name + "_sum", labels)] = child.sum
                    out[_series(family.name + "_count", labels)] = \
                        child.count
                else:
                    out[_series(family.name, labels)] = child.value
        return out

    def delta(self, before: dict) -> dict:
        """Series movement since ``before`` (a :meth:`snapshot`)."""
        now = self.snapshot()
        return {key: value - before.get(key, 0)
                for key, value in now.items()}

    def histogram_cumulative(self) -> dict:
        """``{series: [(upper_bound, cumulative_count), …]}`` for every
        histogram child — the bucket-level view :meth:`snapshot` folds
        away, needed by the series layer for quantile-over-window.
        Does *not* run collectors (call after :meth:`snapshot` to get a
        consistent pair)."""
        out = {}
        for family in self._items():
            if family.kind != "histogram":
                continue
            for labels, child in family.children():
                out[_series(family.name, labels)] = child.cumulative()
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4)."""
        self.collect()
        lines = []
        for family in self._items():
            if family.help:
                lines.append(f"# HELP {family.name} "
                             f"{_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.children():
                if family.kind == "histogram":
                    for bound, count in child.cumulative():
                        lines.append(
                            f"{_series(family.name + '_bucket', labels, {'le': _fmt(bound)})}"
                            f" {count}")
                    lines.append(f"{_series(family.name + '_sum', labels)}"
                                 f" {repr(child.sum)}")
                    lines.append(
                        f"{_series(family.name + '_count', labels)}"
                        f" {child.count}")
                else:
                    lines.append(f"{_series(family.name, labels)} "
                                 f"{_fmt(child.value)}")
        return "\n".join(lines) + "\n"

    def render_json(self) -> dict:
        """Structured JSON exposition (``/v1/metrics?format=json``)."""
        self.collect()
        metrics = {}
        for family in self._items():
            series = []
            for labels, child in family.children():
                if family.kind == "histogram":
                    series.append({
                        "labels": labels, "sum": child.sum,
                        "count": child.count,
                        "buckets": [[_fmt(b), n] for b, n
                                    in child.cumulative()]})
                else:
                    series.append({"labels": labels,
                                   "value": child.value})
            metrics[family.name] = {"type": family.kind,
                                    "help": family.help,
                                    "series": series}
        return {"metrics": metrics,
                "collector_errors": self._collector_errors}

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.render_json(), indent=indent,
                          sort_keys=True)


class _NullInstrument:
    """Absorbs every instrument call; ``labels`` returns itself."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **labels):
        return self

    @contextmanager
    def time(self):
        yield

    @property
    def value(self) -> float:
        return 0.0

    sum = value
    count = value

    def cumulative(self) -> list:
        return []

    def quantile(self, q: float):
        return None

    def children(self) -> list:
        return []


_NULL = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """Hands out no-op instruments — the zero-overhead baseline the
    instrumentation benchmark compares against, and the off switch for
    embedders that want none of this."""

    def _family(self, kind, name, help, labels, buckets=DEFAULT_BUCKETS):
        return _NULL

    def snapshot(self) -> dict:
        return {}

    def render_prometheus(self) -> str:
        return ""

    def render_json(self) -> dict:
        return {"metrics": {}, "collector_errors": 0}


_default_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry components instrument themselves on."""
    return _default_registry


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Swap the process default within a ``with`` block.

    Components bind instruments at construction, so anything that
    should land in ``registry`` must be *constructed* inside the block.
    Intended for tests and the overhead benchmark; not safe against
    concurrent swaps (the restore is last-writer-wins).
    """
    global _default_registry
    with _registry_lock:
        previous, _default_registry = _default_registry, registry
    try:
        yield registry
    finally:
        with _registry_lock:
            _default_registry = previous
