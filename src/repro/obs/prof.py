"""Per-job sampling profiler: *where inside* a slow span did time go?

Spans bound the execute stage; they cannot say which frame burned it.
:class:`SamplingProfiler` answers that with nothing but the stdlib: a
daemon thread wakes every ``interval_s``, pulls the target thread's
current frame out of ``sys._current_frames()``, renders the stack
root-first as ``module.function`` frames, and credits the stack with
the wall time elapsed since the previous sample (dt-weighted, so
attributed seconds track profiled duration even when the OS stretches
a sleep). ``stop()`` takes one final tail sample before joining, so
the last partial interval is not dropped.

The result is a :class:`Profile`: a ``stack -> seconds`` mapping that
serialises to the job's events sidecar (``kind="profile"``) and
renders as flamegraph-compatible collapsed-stack text
(``frame;frame;frame weight`` — feed it straight to ``flamegraph.pl``
or speedscope). Stack cardinality is bounded by ``max_stacks``;
overflow collapses into a synthetic ``(overflow)`` row rather than
growing without bound, and ``truncated`` says it happened.

Sampling costs one stack walk of *one* thread per interval — the
profiled thread itself is never interrupted, which is what keeps the
overhead benchmark's 5% budget intact with the profiler on.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Profile", "SamplingProfiler", "DEFAULT_INTERVAL_S"]

#: Default sampling period: 10 ms — ~100 samples/s, plenty for stages
#: that run seconds to minutes, invisible next to real work.
DEFAULT_INTERVAL_S = 0.01

#: Frames deeper than this aggregate into a trailing ``(deep)`` frame.
MAX_DEPTH = 128


def _frame_name(frame) -> str:
    code = frame.f_code
    return f"{Path(code.co_filename).stem}.{code.co_name}"


def _collapse(frame) -> str:
    """Render a frame chain root-first as ``a.f;b.g;c.h``."""
    names = []
    while frame is not None:
        names.append(_frame_name(frame))
        frame = frame.f_back
    names.reverse()
    if len(names) > MAX_DEPTH:
        names = names[:MAX_DEPTH] + ["(deep)"]
    return ";".join(names)


@dataclass
class Profile:
    """Aggregated collapsed stacks with dt weights, in seconds."""

    stacks: dict = field(default_factory=dict)
    samples: int = 0
    duration_s: float = 0.0
    interval_s: float = DEFAULT_INTERVAL_S
    truncated: bool = False

    @property
    def attributed_s(self) -> float:
        return sum(self.stacks.values())

    def add(self, stack: str, dt: float, max_stacks: int) -> None:
        if stack not in self.stacks and len(self.stacks) >= max_stacks:
            stack = "(overflow)"
            self.truncated = True
        self.stacks[stack] = self.stacks.get(stack, 0.0) + dt
        self.samples += 1

    def to_dict(self) -> dict:
        return {"samples": self.samples,
                "duration_s": round(self.duration_s, 6),
                "attributed_s": round(self.attributed_s, 6),
                "interval_s": self.interval_s,
                "truncated": self.truncated,
                "stacks": {k: round(v, 6)
                           for k, v in sorted(
                               self.stacks.items(),
                               key=lambda kv: -kv[1])}}

    @classmethod
    def from_dict(cls, payload: dict) -> "Profile":
        prof = cls(stacks=dict(payload.get("stacks", {})),
                   samples=int(payload.get("samples", 0)),
                   duration_s=float(payload.get("duration_s", 0.0)),
                   interval_s=float(payload.get(
                       "interval_s", DEFAULT_INTERVAL_S)),
                   truncated=bool(payload.get("truncated", False)))
        return prof

    def render_collapsed(self) -> str:
        """Flamegraph collapsed-stack text: ``frames weight`` per line,
        weight in integer microseconds, heaviest first."""
        lines = []
        for stack, seconds in sorted(self.stacks.items(),
                                     key=lambda kv: -kv[1]):
            lines.append(f"{stack} {max(1, round(seconds * 1e6))}")
        return "\n".join(lines) + ("\n" if lines else "")


class SamplingProfiler:
    """Sample one thread's stack on an interval from a daemon thread."""

    def __init__(self, thread_id: int | None = None,
                 interval_s: float = DEFAULT_INTERVAL_S,
                 max_stacks: int = 2000, clock=time.perf_counter):
        self.thread_id = (thread_id if thread_id is not None
                          else threading.get_ident())
        self.interval_s = float(interval_s)
        self.max_stacks = int(max_stacks)
        self.clock = clock
        self.profile = Profile(interval_s=self.interval_s)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._t0 = None
        self._last = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None or self.interval_s <= 0:
            return self
        self._stop.clear()
        self._t0 = self._last = self.clock()
        self._thread = threading.Thread(target=self._loop,
                                        name="obs-prof", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> Profile:
        """Join the sampler (taking one tail sample) and return the
        finished profile."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=10)
            self._thread = None
            self._sample()          # tail: credit the final partial
            #                         interval to whatever runs now
            self.profile.duration_s = self.clock() - self._t0
        return self.profile

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()

    # -- sampling ----------------------------------------------------------
    def _sample(self) -> None:
        now = self.clock()
        dt, self._last = now - self._last, now
        frame = sys._current_frames().get(self.thread_id)
        if frame is None or dt <= 0:    # thread gone (or clock jitter)
            return
        try:
            stack = _collapse(frame)
        finally:
            del frame                   # break the frame ref cycle
        self.profile.add(stack, dt, self.max_stacks)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self._sample()
            except Exception:    # noqa: BLE001 — sampling must never
                pass             # take the profiled thread down with it
