"""Declarative SLOs over recorded series: is the service *healthy*?

A scrape says what the counters are; an SLO says what they are
*allowed* to be. Each :class:`SloRule` names one objective over one
window of a :class:`~repro.obs.series.SeriesRecorder` and comes in four
kinds:

``latency``
    quantile of a histogram series (default p95) must stay **at or
    under** ``objective`` seconds — e.g. ``repro_span_seconds`` with
    ``{span="serve.execute"}``.
``error_rate``
    ``numerator_delta / denominator_delta`` over the window must stay
    at or under ``objective`` — e.g. failed / (failed + succeeded)
    job outcomes.
``ratio_floor``
    the same ratio must stay **at or above** ``objective`` — e.g. a
    cache-hit-ratio floor. ``min_count`` gates the rule until the
    denominator has seen enough traffic (a cold cache is not an
    incident).
``gauge_ceiling``
    the max of a gauge over the window must stay at or under
    ``objective`` — e.g. queue depth.

Every evaluation yields ``ok`` / ``warning`` / ``breach`` per rule
(``warning`` at ``warning`` — default 80% of the way to a ceiling
objective, 1.25× a floor), a **burn rate** (how fast the error budget
is being consumed: 1.0 = exactly at objective), and cumulative
``breach_s`` per rule. :class:`SloEngine` rolls rules up to a single
service ``health``: ``healthy`` (all ok), ``degraded`` (any warning),
``unhealthy`` (any breach) — the value ``/healthz`` now reports.

Absence of data is *not* a breach: a rule with no observations in its
window reports ``ok`` with ``value=None``. SLOs catch bad behaviour,
not quiet periods.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .series import SeriesRecorder

__all__ = ["SloRule", "SloEngine", "default_rules",
           "HEALTHY", "DEGRADED", "UNHEALTHY"]

HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

_KINDS = ("latency", "error_rate", "ratio_floor", "gauge_ceiling")

#: Series the default rules watch (single source for tests/docs).
EXECUTE_SERIES = 'repro_span_seconds{span="serve.execute"}'
JOBS_FAILED = 'repro_serve_jobs_total{outcome="failed"}'
JOBS_SUCCEEDED = 'repro_serve_jobs_total{outcome="succeeded"}'
CACHE_HITS = ('repro_engine_cache_events_total{cache="result",'
              'tier="memory",event="hit"}')
CACHE_MISSES = ('repro_engine_cache_events_total{cache="result",'
                'tier="memory",event="miss"}')
QUEUE_DEPTH = "repro_serve_queue_depth"


@dataclass
class SloRule:
    """One objective over one window. ``series`` is the full snapshot
    key (``name{labels}``); ratio kinds use ``numerator`` /
    ``denominator`` tuples of such keys instead."""

    name: str
    kind: str
    objective: float
    window_s: float = 300.0
    series: str | None = None
    quantile: float = 0.95
    numerator: tuple = ()
    denominator: tuple = ()
    min_count: int = 0
    warning: float | None = None
    description: str = ""
    _breach_s: float = field(default=0.0, repr=False)
    _last_eval_t: float | None = field(default=None, repr=False)

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; "
                             f"expected one of {_KINDS}")
        if self.warning is None:
            self.warning = (self.objective * 1.25
                            if self.kind == "ratio_floor"
                            else self.objective * 0.8)

    # -- measurement -------------------------------------------------------
    def _sum_delta(self, recorder: SeriesRecorder, keys) -> float:
        total = 0.0
        for key in keys:
            moved = recorder.delta(key, self.window_s)
            if moved is not None:
                total += moved
        return total

    def measure(self, recorder: SeriesRecorder):
        """Current value of the watched quantity over the window, or
        ``None`` when the window holds no usable data."""
        if self.kind == "latency":
            return recorder.quantile(self.series, self.quantile,
                                     self.window_s)
        if self.kind == "gauge_ceiling":
            return recorder.gauge_max(self.series, self.window_s)
        num = self._sum_delta(recorder, self.numerator)
        den = self._sum_delta(recorder, self.denominator)
        if den < max(1, self.min_count):
            return None
        return num / den

    def evaluate(self, recorder: SeriesRecorder, now: float) -> dict:
        value = self.measure(recorder)
        floor = self.kind == "ratio_floor"
        if value is None:
            state, burn = "ok", 0.0
        elif floor:
            state = ("ok" if value >= self.warning else
                     "warning" if value >= self.objective
                     else "breach")
            # budget is the shortfall below a perfect 1.0 ratio.
            budget = 1.0 - self.objective
            burn = (1.0 - value) / budget if budget > 0 else \
                (0.0 if value >= self.objective else float("inf"))
        else:
            state = ("ok" if value <= self.warning else
                     "warning" if value <= self.objective
                     else "breach")
            burn = value / self.objective if self.objective > 0 \
                else (0.0 if value <= 0 else float("inf"))
        if state == "breach" and self._last_eval_t is not None:
            self._breach_s += max(0.0, now - self._last_eval_t)
        self._last_eval_t = now
        out = {"name": self.name, "kind": self.kind, "state": state,
               "value": value, "objective": self.objective,
               "warning": self.warning, "window_s": self.window_s,
               "burn_rate": round(burn, 4),
               "breach_s": round(self._breach_s, 3)}
        if self.kind == "latency":
            out["quantile"] = self.quantile
        if self.series:
            out["series"] = self.series
        if self.description:
            out["description"] = self.description
        return out


def default_rules() -> list:
    """Rules safe for any deployment of the serve tier: generous
    enough never to page on a CI smoke run, tight enough to catch a
    wedged worker or a thrashing cache in production."""
    return [
        SloRule(name="execute-latency", kind="latency",
                series=EXECUTE_SERIES, quantile=0.95,
                objective=900.0, window_s=300.0,
                description="p95 of serve.execute under 15 min"),
        SloRule(name="job-error-rate", kind="error_rate",
                numerator=(JOBS_FAILED,),
                denominator=(JOBS_FAILED, JOBS_SUCCEEDED),
                objective=0.1, window_s=600.0,
                description="failed / finished jobs under 10%"),
        SloRule(name="cache-hit-ratio", kind="ratio_floor",
                numerator=(CACHE_HITS,),
                denominator=(CACHE_HITS, CACHE_MISSES),
                objective=0.5, min_count=200, window_s=600.0,
                description="result-cache memory hit ratio over 50% "
                            "once 200 lookups have happened"),
        SloRule(name="queue-depth", kind="gauge_ceiling",
                series=QUEUE_DEPTH, objective=50.0, window_s=300.0,
                description="submission queue shorter than 50 jobs"),
    ]


class SloEngine:
    """Evaluate a rule set against a recorder; roll up to health."""

    def __init__(self, recorder: SeriesRecorder, rules=None):
        self.recorder = recorder
        self.rules = list(rules) if rules is not None \
            else default_rules()
        self._lock = threading.Lock()

    def evaluate(self) -> dict:
        now = self.recorder.clock()
        with self._lock:     # rules carry breach_s accumulators
            results = [rule.evaluate(self.recorder, now)
                       for rule in self.rules]
        states = {r["state"] for r in results}
        health = (UNHEALTHY if "breach" in states else
                  DEGRADED if "warning" in states else HEALTHY)
        return {"health": health, "evaluated_at": now,
                "rules": results}

    def health(self) -> str:
        return self.evaluate()["health"]
