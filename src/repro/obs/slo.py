"""Declarative SLOs over recorded series: is the service *healthy*?

A scrape says what the counters are; an SLO says what they are
*allowed* to be. Each :class:`SloRule` names one objective over one
window of a :class:`~repro.obs.series.SeriesRecorder` and comes in four
kinds:

``latency``
    quantile of a histogram series (default p95) must stay **at or
    under** ``objective`` seconds — e.g. ``repro_span_seconds`` with
    ``{span="serve.execute"}``.
``error_rate``
    ``numerator_delta / denominator_delta`` over the window must stay
    at or under ``objective`` — e.g. failed / (failed + succeeded)
    job outcomes.
``ratio_floor``
    the same ratio must stay **at or above** ``objective`` — e.g. a
    cache-hit-ratio floor. ``min_count`` gates the rule until the
    denominator has seen enough traffic (a cold cache is not an
    incident).
``gauge_ceiling``
    the max of a gauge over the window must stay at or under
    ``objective`` — e.g. queue depth.

Every evaluation yields ``ok`` / ``warning`` / ``breach`` per rule
(``warning`` at ``warning`` — default 80% of the way to a ceiling
objective, 1.25× a floor), a **burn rate** (how fast the error budget
is being consumed: 1.0 = exactly at objective), and cumulative
``breach_s`` per rule. :class:`SloEngine` rolls rules up to a single
service ``health``: ``healthy`` (all ok), ``degraded`` (any warning),
``unhealthy`` (any breach) — the value ``/healthz`` now reports.

Absence of data is *not* a breach: a rule with no observations in its
window reports ``ok`` with ``value=None``. SLOs catch bad behaviour,
not quiet periods.

A rule's ``severity`` caps what its breach rolls up to: the default
``unhealthy`` ejects the service from load balancing, while
``degraded`` (the drift and predict-availability rules) flags it
without ejecting — a stale surrogate model should page someone, not
take the job tier down with it.

:func:`cluster_rules` builds the router's federated rule set: the
per-shard objectives re-expressed over the ``shard``-labeled series of
the merged exposition (:func:`shard_series` maps a single-shard key to
its federated spelling), plus cluster-level predict availability over
the router's own ``repro_router_predict_total`` counter.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .series import SeriesRecorder

__all__ = ["SloRule", "SloEngine", "default_rules", "cluster_rules",
           "shard_series", "HEALTHY", "DEGRADED", "UNHEALTHY"]

HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

_HEALTH_RANK = {HEALTHY: 0, DEGRADED: 1, UNHEALTHY: 2}

_KINDS = ("latency", "error_rate", "ratio_floor", "gauge_ceiling")

#: Series the default rules watch (single source for tests/docs).
EXECUTE_SERIES = 'repro_span_seconds{span="serve.execute"}'
JOBS_FAILED = 'repro_serve_jobs_total{outcome="failed"}'
JOBS_SUCCEEDED = 'repro_serve_jobs_total{outcome="succeeded"}'
CACHE_HITS = ('repro_engine_cache_events_total{cache="result",'
              'tier="memory",event="hit"}')
CACHE_MISSES = ('repro_engine_cache_events_total{cache="result",'
                'tier="memory",event="miss"}')
QUEUE_DEPTH = "repro_serve_queue_depth"
DRIFT_GAUGE = "repro_predict_drift"
PREDICTS_SERVED = 'repro_router_predict_total{outcome="served"}'
PREDICTS_FAILED = 'repro_router_predict_total{outcome="failed"}'


@dataclass
class SloRule:
    """One objective over one window. ``series`` is the full snapshot
    key (``name{labels}``); ratio kinds use ``numerator`` /
    ``denominator`` tuples of such keys instead."""

    name: str
    kind: str
    objective: float
    window_s: float = 300.0
    series: str | None = None
    quantile: float = 0.95
    numerator: tuple = ()
    denominator: tuple = ()
    min_count: int = 0
    warning: float | None = None
    description: str = ""
    severity: str = UNHEALTHY        # what a breach rolls health to
    _breach_s: float = field(default=0.0, repr=False)
    _last_eval_t: float | None = field(default=None, repr=False)

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; "
                             f"expected one of {_KINDS}")
        if self.severity not in (DEGRADED, UNHEALTHY):
            raise ValueError(f"severity must be {DEGRADED!r} or "
                             f"{UNHEALTHY!r}, got {self.severity!r}")
        if self.warning is None:
            self.warning = (self.objective * 1.25
                            if self.kind == "ratio_floor"
                            else self.objective * 0.8)

    # -- measurement -------------------------------------------------------
    def _sum_delta(self, recorder: SeriesRecorder, keys) -> float:
        total = 0.0
        for key in keys:
            moved = recorder.delta(key, self.window_s)
            if moved is not None:
                total += moved
        return total

    def measure(self, recorder: SeriesRecorder):
        """Current value of the watched quantity over the window, or
        ``None`` when the window holds no usable data."""
        if self.kind == "latency":
            return recorder.quantile(self.series, self.quantile,
                                     self.window_s)
        if self.kind == "gauge_ceiling":
            return recorder.gauge_max(self.series, self.window_s)
        num = self._sum_delta(recorder, self.numerator)
        den = self._sum_delta(recorder, self.denominator)
        if den < max(1, self.min_count):
            return None
        return num / den

    def evaluate(self, recorder: SeriesRecorder, now: float) -> dict:
        value = self.measure(recorder)
        floor = self.kind == "ratio_floor"
        if value is None:
            state, burn = "ok", 0.0
        elif floor:
            state = ("ok" if value >= self.warning else
                     "warning" if value >= self.objective
                     else "breach")
            # budget is the shortfall below a perfect 1.0 ratio.
            budget = 1.0 - self.objective
            burn = (1.0 - value) / budget if budget > 0 else \
                (0.0 if value >= self.objective else float("inf"))
        else:
            state = ("ok" if value <= self.warning else
                     "warning" if value <= self.objective
                     else "breach")
            burn = value / self.objective if self.objective > 0 \
                else (0.0 if value <= 0 else float("inf"))
        if state == "breach" and self._last_eval_t is not None:
            self._breach_s += max(0.0, now - self._last_eval_t)
        self._last_eval_t = now
        out = {"name": self.name, "kind": self.kind, "state": state,
               "value": value, "objective": self.objective,
               "warning": self.warning, "window_s": self.window_s,
               "burn_rate": round(burn, 4),
               "breach_s": round(self._breach_s, 3),
               "severity": self.severity}
        if self.kind == "latency":
            out["quantile"] = self.quantile
        if self.series:
            out["series"] = self.series
        if self.description:
            out["description"] = self.description
        return out


def default_rules() -> list:
    """Rules safe for any deployment of the serve tier: generous
    enough never to page on a CI smoke run, tight enough to catch a
    wedged worker or a thrashing cache in production."""
    return [
        SloRule(name="execute-latency", kind="latency",
                series=EXECUTE_SERIES, quantile=0.95,
                objective=900.0, window_s=300.0,
                description="p95 of serve.execute under 15 min"),
        SloRule(name="job-error-rate", kind="error_rate",
                numerator=(JOBS_FAILED,),
                denominator=(JOBS_FAILED, JOBS_SUCCEEDED),
                objective=0.1, window_s=600.0,
                description="failed / finished jobs under 10%"),
        SloRule(name="cache-hit-ratio", kind="ratio_floor",
                numerator=(CACHE_HITS,),
                denominator=(CACHE_HITS, CACHE_MISSES),
                objective=0.5, min_count=200, window_s=600.0,
                description="result-cache memory hit ratio over 50% "
                            "once 200 lookups have happened"),
        SloRule(name="queue-depth", kind="gauge_ceiling",
                series=QUEUE_DEPTH, objective=50.0, window_s=300.0,
                description="submission queue shorter than 50 jobs"),
        SloRule(name="predict-drift", kind="gauge_ceiling",
                series=DRIFT_GAUGE, objective=1.0, window_s=300.0,
                severity=DEGRADED,
                description="surrogate feature-drift score under 1.0 "
                            "(requests within the training "
                            "distribution)"),
    ]


def shard_series(series: str, shard: str) -> str:
    """A single-shard series key re-spelled as the router's merged
    exposition keys it (the ``shard`` label is appended last)."""
    if series.endswith("}"):
        return f'{series[:-1]},shard="{shard}"}}'
    return f'{series}{{shard="{shard}"}}'


def cluster_rules(shards) -> list:
    """The router's federated rule set over ``shards`` (an iterable of
    shard names): per-shard error-rate / execute-latency / queue-depth
    / drift against the shard-labeled merged series, plus cluster
    predict availability from the router's own outcome counter."""
    rules = []
    for name in sorted(shards):
        rules.extend([
            SloRule(name=f"shard-error-rate[{name}]",
                    kind="error_rate",
                    numerator=(shard_series(JOBS_FAILED, name),),
                    denominator=(shard_series(JOBS_FAILED, name),
                                 shard_series(JOBS_SUCCEEDED, name)),
                    objective=0.1, window_s=600.0,
                    description=f"failed / finished jobs on shard "
                                f"{name} under 10%"),
            SloRule(name=f"shard-execute-latency[{name}]",
                    kind="latency",
                    series=shard_series(EXECUTE_SERIES, name),
                    quantile=0.95, objective=900.0, window_s=300.0,
                    description=f"p95 of serve.execute on shard "
                                f"{name} under 15 min"),
            SloRule(name=f"shard-queue-depth[{name}]",
                    kind="gauge_ceiling",
                    series=shard_series(QUEUE_DEPTH, name),
                    objective=50.0, window_s=300.0,
                    description=f"queue on shard {name} shorter than "
                                f"50 jobs"),
            SloRule(name=f"shard-predict-drift[{name}]",
                    kind="gauge_ceiling",
                    series=shard_series(DRIFT_GAUGE, name),
                    objective=1.0, window_s=300.0, severity=DEGRADED,
                    description=f"surrogate drift score on shard "
                                f"{name} under 1.0"),
        ])
    rules.append(SloRule(
        name="predict-availability", kind="ratio_floor",
        numerator=(PREDICTS_SERVED,),
        denominator=(PREDICTS_SERVED, PREDICTS_FAILED),
        objective=0.9, min_count=20, window_s=600.0,
        severity=DEGRADED,
        description="cluster predict requests served over 90% once "
                    "20 have been routed"))
    return rules


class SloEngine:
    """Evaluate a rule set against a recorder; roll up to health."""

    def __init__(self, recorder: SeriesRecorder, rules=None):
        self.recorder = recorder
        self.rules = list(rules) if rules is not None \
            else default_rules()
        self._lock = threading.Lock()

    def evaluate(self) -> dict:
        now = self.recorder.clock()
        with self._lock:     # rules carry breach_s accumulators
            results = [rule.evaluate(self.recorder, now)
                       for rule in self.rules]
        health = HEALTHY
        for result in results:
            if result["state"] == "breach":
                # A breach rolls up to the rule's severity — drift
                # degrades, it does not eject.
                hit = result.get("severity", UNHEALTHY)
            elif result["state"] == "warning":
                hit = DEGRADED
            else:
                continue
            if _HEALTH_RANK[hit] > _HEALTH_RANK[health]:
                health = hit
        return {"health": health, "evaluated_at": now,
                "rules": results}

    def health(self) -> str:
        return self.evaluate()["health"]
