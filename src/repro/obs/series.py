"""Time-series history over the metrics registry: what changed, when?

``GET /v1/metrics`` is a point-in-time scrape — fine for a dashboard
that stores its own history, useless for a process that must judge its
*own* recent behaviour ("is the p95 over the last five minutes within
the objective?"). A :class:`SeriesRecorder` closes that gap:

* **sampling** — a daemon thread calls :meth:`sample` every
  ``interval_s`` seconds; each sample is the registry's flat
  :meth:`~MetricsRegistry.snapshot` plus per-histogram cumulative
  bucket counts (the part ``snapshot`` folds away, without which no
  quantile can be computed over a window).
* **retention** — samples land in a bounded in-memory ring buffer
  (``deque(maxlen=window)``) and, when ``persist_dir`` is given, an
  append-only JSONL file (``samples.jsonl``) that rotates once at
  ``max_bytes`` — bounded history a weeks-long process can afford.
* **windowed queries** — :meth:`delta` (counter movement),
  :meth:`rate` (per-second), :meth:`bucket_delta` /
  :meth:`quantile` (histogram-quantile-over-window via
  :func:`~repro.obs.metrics.quantile_from_cumulative`),
  :meth:`gauge_last` / :meth:`gauge_max`, and the whole-registry
  :meth:`window_report` behind ``/v1/metrics?window=S``.

``+Inf`` bucket bounds are stored as ``None`` in samples so every
persisted line is strict JSON. The clock is injectable (tests drive
window arithmetic deterministically); :meth:`sample` may also be called
manually, with or without the thread running.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path

from .metrics import MetricsRegistry, get_registry, \
    quantile_from_cumulative

__all__ = ["SeriesRecorder", "DEFAULT_INTERVAL_S", "DEFAULT_WINDOW"]

#: Default sampling period (seconds).
DEFAULT_INTERVAL_S = 5.0

#: Default ring-buffer length — at the default interval, one hour.
DEFAULT_WINDOW = 720

#: Rotate the JSONL file once past this size (one ``.1`` backup kept).
DEFAULT_MAX_BYTES = 16 * 1024 * 1024


def _jsonable_buckets(buckets: dict) -> dict:
    """``+Inf`` bounds become ``None`` so samples are strict JSON."""
    inf = float("inf")
    return {series: [[None if bound == inf else bound, count]
                     for bound, count in cumulative]
            for series, cumulative in buckets.items()}


class SeriesRecorder:
    """Periodic registry snapshots with bounded history and windows."""

    def __init__(self, registry: MetricsRegistry | None = None,
                 interval_s: float = DEFAULT_INTERVAL_S,
                 window: int = DEFAULT_WINDOW,
                 persist_dir: str | Path | None = None,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 clock=time.time, source=None):
        """``source`` replaces the registry scrape: a callable
        returning ``(values, buckets)`` already in sample form (flat
        ``{series: value}`` plus ``{series: [[bound, count], …]}``
        with ``None`` for +Inf) — how the cluster router records the
        merged shard-labeled exposition instead of a local registry.

        When ``persist_dir`` holds history from an earlier process
        (``samples.jsonl`` and its one rotation backup), it is
        preloaded into the ring, so windowed queries span restarts
        and the rotation boundary.
        """
        self.source = source
        self.registry = registry if registry is not None \
            else (None if source is not None else get_registry())
        self.interval_s = float(interval_s)
        self.persist_dir = None if persist_dir is None \
            else Path(persist_dir)
        self.max_bytes = int(max_bytes)
        self.clock = clock
        self.samples_taken = 0
        self.persist_errors = 0
        self.preloaded = 0
        self._ring: deque = deque(maxlen=max(2, int(window)))
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._preload()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "SeriesRecorder":
        """Begin background sampling (no-op when ``interval_s <= 0``
        or already running)."""
        if self.interval_s <= 0 or self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="obs-series", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample()
            except Exception:    # noqa: BLE001 — a scrape failure must
                pass             # not kill the sampler thread.

    # -- sampling ----------------------------------------------------------
    def _preload(self) -> None:
        """Seed the ring with persisted history — the backup first,
        then the live file, so a window reaching past the rotation
        boundary (or a restart) still sees both sides."""
        if self.persist_dir is None:
            return
        entries = []
        for name in ("samples.jsonl.1", "samples.jsonl"):
            try:
                with open(self.persist_dir / name,
                          encoding="utf-8") as fh:
                    for line in fh:
                        try:
                            entry = json.loads(line)
                        except json.JSONDecodeError:
                            continue     # torn tail write: skip
                        if isinstance(entry, dict) and "t" in entry:
                            entries.append(entry)
            except OSError:
                continue
        entries.sort(key=lambda e: e["t"])
        with self._lock:
            self._ring.extend(entries)
            self.preloaded = len(entries)

    def sample(self) -> dict:
        """Take one sample now: snapshot + histogram buckets, appended
        to the ring (and the JSONL file when persisting)."""
        if self.source is not None:
            values, buckets = self.source()
        else:
            values = self.registry.snapshot()   # runs collectors
            buckets = _jsonable_buckets(
                self.registry.histogram_cumulative())
        entry = {"t": self.clock(), "values": values,
                 "buckets": buckets}
        with self._lock:
            self._ring.append(entry)
            self.samples_taken += 1
        if self.persist_dir is not None:
            self._persist(entry)
        return entry

    def _persist(self, entry: dict) -> None:
        try:
            self.persist_dir.mkdir(parents=True, exist_ok=True)
            path = self.persist_dir / "samples.jsonl"
            if path.exists() and path.stat().st_size >= self.max_bytes:
                path.replace(path.with_suffix(".jsonl.1"))
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
        except OSError:
            self.persist_errors += 1     # history is best-effort; the
            #                              live ring stays authoritative.

    # -- windows -----------------------------------------------------------
    def samples(self, window_s: float | None = None) -> list:
        """Ring contents, oldest first; ``window_s`` keeps only samples
        taken within the last that-many seconds."""
        with self._lock:
            out = list(self._ring)
        if window_s is None:
            return out
        horizon = self.clock() - float(window_s)
        return [s for s in out if s["t"] >= horizon]

    def _ends(self, window_s: float):
        pts = self.samples(window_s)
        if len(pts) < 2:
            return None, None
        return pts[0], pts[-1]

    def delta(self, series: str, window_s: float):
        """Counter movement across the window; ``None`` without two
        samples (or the series absent from both ends). Negative deltas
        (a counter reset — process restart) clamp to the end value."""
        first, last = self._ends(window_s)
        if first is None:
            return None
        a, b = first["values"].get(series), last["values"].get(series)
        if b is None:
            return None
        if a is None:                    # series born mid-window
            return b
        return b - a if b >= a else b

    def rate(self, series: str, window_s: float):
        """Per-second movement of a counter series over the window."""
        first, last = self._ends(window_s)
        if first is None:
            return None
        elapsed = last["t"] - first["t"]
        moved = self.delta(series, window_s)
        if moved is None or elapsed <= 0:
            return None
        return moved / elapsed

    def bucket_delta(self, series: str, window_s: float):
        """Histogram bucket movement over the window as
        ``[(upper_bound, cumulative_count)]`` (``None`` bound = +Inf),
        ready for :func:`quantile_from_cumulative`."""
        first, last = self._ends(window_s)
        if first is None:
            return None
        end = last["buckets"].get(series)
        if end is None:
            return None
        start = {bound: count
                 for bound, count in first["buckets"].get(series, [])}
        out = []
        for bound, count in end:
            moved = count - start.get(bound, 0)
            out.append((bound, max(0, moved)))
        return out

    def quantile(self, series: str, q: float, window_s: float):
        """Interpolated quantile of a histogram's observations *within
        the window* — ``None`` when nothing was observed in it."""
        moved = self.bucket_delta(series, window_s)
        if moved is None:
            return None
        return quantile_from_cumulative(moved, q)

    def gauge_last(self, series: str):
        pts = self.samples()
        if not pts:
            return None
        return pts[-1]["values"].get(series)

    def gauge_max(self, series: str, window_s: float):
        values = [s["values"][series] for s in self.samples(window_s)
                  if series in s["values"]]
        return max(values) if values else None

    # -- exposition --------------------------------------------------------
    def window_report(self, window_s: float,
                      quantiles=(0.5, 0.95, 0.99)) -> dict:
        """One JSON document for ``/v1/metrics?window=S``: counter
        deltas + rates and histogram quantiles over the window."""
        pts = self.samples(window_s)
        report = {"window_s": float(window_s), "samples": len(pts),
                  "interval_s": self.interval_s,
                  "from_s": pts[0]["t"] if pts else None,
                  "to_s": pts[-1]["t"] if pts else None,
                  "deltas": {}, "rates": {}, "quantiles": {}}
        if len(pts) < 2:
            return report
        first, last = pts[0], pts[-1]
        elapsed = last["t"] - first["t"]
        for series, value in sorted(last["values"].items()):
            start = first["values"].get(series, 0)
            moved = value - start if value >= start else value
            report["deltas"][series] = moved
            if elapsed > 0:
                report["rates"][series] = moved / elapsed
        for series in sorted(last["buckets"]):
            entry = {}
            for q in quantiles:
                value = self.quantile(series, q, window_s)
                if value is not None:
                    entry[f"p{round(q * 100)}"] = value
            if entry:
                report["quantiles"][series] = entry
        return report

    def stats(self) -> dict:
        with self._lock:
            ring = len(self._ring)
        return {"interval_s": self.interval_s, "ring": ring,
                "ring_max": self._ring.maxlen,
                "samples_taken": self.samples_taken,
                "preloaded": self.preloaded,
                "persist_errors": self.persist_errors,
                "running": self._thread is not None,
                "persist_dir": (str(self.persist_dir)
                                if self.persist_dir else None)}
