"""Lightweight span tracing: where did this request's time actually go?

A :class:`Span` is one named, timed stage of work (wall clock via
``perf_counter``, CPU via ``thread_time``) with free-form attributes
and child spans. The module-level :func:`span` context manager
maintains a per-thread stack, so nested ``with`` blocks build a tree
without any plumbing::

    with span("serve.execute", job_id=jid) as root:
        ...
        with span("engine.evaluate_many", corners=3):
            ...
    root.to_dict()      # the whole tree, JSON-able

The tree shape mirrors the call tree: the serve worker opens the root,
the search driver adds per-round spans, the engine adds
characterize/flow/executor spans underneath — all on the same thread,
which is exactly how the serve layer executes jobs (engine executions
serialize on one lock).

Span durations also feed the process metrics registry
(``repro_span_seconds{span=...}`` histograms), so every traced stage
gets a latency distribution for free; :func:`set_enabled` (or
:func:`repro.obs.disabled`) turns the whole mechanism into a no-op.

Synthetic spans (:meth:`Span.synthetic`) cover stages that were
measured externally rather than executed under a tracer — e.g. a serve
job's queue wait, reconstructed from its ledger.

Traces cross process boundaries via a W3C-traceparent-shaped
:class:`TraceContext` (``00-{trace_id}-{span_id}-01``): the caller
mints one (:func:`mint_context`), sends it as the ``traceparent``
header, and the receiver's root span :meth:`Span.adopt`\\ s it — same
trace id, the caller's span id as parent, a fresh id of its own. The
per-thread :func:`trace_context` holder lets outgoing hops made deep
inside a request (escalations, peer borrows) pick the context up
without plumbing it through every call signature.
"""

from __future__ import annotations

import os
import re
import threading
import time
from contextlib import contextmanager

from .metrics import get_registry

__all__ = ["Span", "span", "current_span", "set_enabled", "enabled",
           "render_tree", "TraceContext", "mint_context",
           "parse_traceparent", "format_traceparent", "trace_context",
           "current_context", "current_traceparent",
           "TRACEPARENT_HEADER"]

#: Children beyond this are dropped (counted in ``dropped``) so a
#: pathological loop cannot grow an unbounded tree.
MAX_CHILDREN = 256

_local = threading.local()
_enabled = True

# Span-exit fast path: resolving histogram children through the family
# costs label-key validation per call, which adds up on micro-spans.
# Memoize per (registry, span name); invalidated whenever use_registry
# swaps the default registry out from under us.
_hist_registry = None
_hist_children: dict = {}


def _span_histogram(name: str):
    global _hist_registry, _hist_children
    registry = get_registry()
    if registry is not _hist_registry:
        _hist_registry = registry
        _hist_children = {}
    child = _hist_children.get(name)
    if child is None:
        child = _hist_children[name] = registry.histogram(
            "repro_span_seconds",
            "Wall-clock seconds per traced stage",
            labels=("span",)).labels(span=name)
    return child


def set_enabled(flag: bool) -> None:
    """Globally enable/disable tracing (spans become no-ops)."""
    global _enabled
    _enabled = bool(flag)


def enabled() -> bool:
    return _enabled


#: HTTP header that carries the propagation context between processes.
TRACEPARENT_HEADER = "traceparent"

_TRACEPARENT_RE = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$")


def new_trace_id() -> str:
    return os.urandom(16).hex()


def new_span_id() -> str:
    return os.urandom(8).hex()


class TraceContext:
    """One hop's worth of trace identity: which trace, which parent."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def traceparent(self) -> str:
        return format_traceparent(self)

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext | None":
        trace_id = str(data.get("trace_id", ""))
        span_id = str(data.get("span_id", ""))
        if not trace_id:
            return None
        return cls(trace_id, span_id or new_span_id())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceContext({self.trace_id!r}, {self.span_id!r})"


def mint_context() -> TraceContext:
    """A fresh trace root: new trace id, new span id."""
    return TraceContext(new_trace_id(), new_span_id())


def format_traceparent(ctx: TraceContext) -> str:
    return f"00-{ctx.trace_id}-{ctx.span_id}-01"


def parse_traceparent(header: str) -> TraceContext | None:
    """Parse a ``traceparent`` header; ``None`` on anything malformed."""
    if not header:
        return None
    m = _TRACEPARENT_RE.match(header.strip().lower())
    if not m:
        return None
    return TraceContext(m.group(1), m.group(2))


def current_context() -> TraceContext | None:
    """This thread's active propagation context (``None`` outside one)."""
    return getattr(_local, "ctx", None)


def current_traceparent() -> str:
    """Rendered header for the active context ("" when there is none)."""
    ctx = current_context()
    return format_traceparent(ctx) if ctx is not None else ""


@contextmanager
def trace_context(ctx: TraceContext | None):
    """Install ``ctx`` as this thread's context for the ``with`` body.

    Outgoing :class:`repro.serve.client.ServeClient` requests made
    inside the body carry it as ``traceparent`` automatically.
    """
    prev = getattr(_local, "ctx", None)
    _local.ctx = ctx
    try:
        yield ctx
    finally:
        _local.ctx = prev


class Span:
    """One timed stage; a node in a per-request trace tree."""

    __slots__ = ("name", "attrs", "children", "start_s", "wall_s",
                 "cpu_s", "dropped", "error", "trace_id", "span_id",
                 "parent_span_id", "_t0", "_c0")

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.children: list = []
        self.start_s = time.time()
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.dropped = 0
        self.error = ""
        self.trace_id = ""
        self.span_id = ""
        self.parent_span_id = ""
        self._t0 = time.perf_counter()
        self._c0 = time.thread_time()

    def finish(self) -> "Span":
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.thread_time() - self._c0
        return self

    def adopt(self, ctx: TraceContext) -> TraceContext:
        """Join a propagated trace: ``ctx``'s trace id, its span id as
        parent, a freshly minted id of our own. Returns the context to
        hand to *our* downstream hops."""
        self.trace_id = ctx.trace_id
        self.parent_span_id = ctx.span_id
        self.span_id = new_span_id()
        return TraceContext(self.trace_id, self.span_id)

    def add_child(self, child: "Span") -> None:
        if len(self.children) >= MAX_CHILDREN:
            self.dropped += 1
            return
        self.children.append(child)

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    @classmethod
    def synthetic(cls, name: str, wall_s: float,
                  start_s: float | None = None, **attrs) -> "Span":
        """A finished span for an externally measured stage."""
        out = cls(name, attrs)
        out.wall_s = float(wall_s)
        out.cpu_s = 0.0
        if start_s is not None:
            out.start_s = float(start_s)
        return out

    def to_dict(self) -> dict:
        out = {"name": self.name, "start_s": self.start_s,
               "wall_s": self.wall_s, "cpu_s": self.cpu_s}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        if self.dropped:
            out["dropped"] = self.dropped
        if self.error:
            out["error"] = self.error
        if self.trace_id:
            out["trace_id"] = self.trace_id
        if self.span_id:
            out["span_id"] = self.span_id
        if self.parent_span_id:
            out["parent_span_id"] = self.parent_span_id
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        out = cls.synthetic(data.get("name", "?"),
                            data.get("wall_s", 0.0),
                            start_s=data.get("start_s"),
                            **data.get("attrs", {}))
        out.cpu_s = data.get("cpu_s", 0.0)
        out.dropped = data.get("dropped", 0)
        out.error = data.get("error", "")
        out.trace_id = data.get("trace_id", "")
        out.span_id = data.get("span_id", "")
        out.parent_span_id = data.get("parent_span_id", "")
        out.children = [cls.from_dict(c)
                        for c in data.get("children", [])]
        return out


class _NullSpan:
    """Stands in when tracing is disabled: absorbs annotations."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    children: list = []
    wall_s = 0.0
    cpu_s = 0.0
    trace_id = ""
    span_id = ""
    parent_span_id = ""

    def annotate(self, **attrs) -> None:
        pass

    def add_child(self, child) -> None:
        pass

    def adopt(self, ctx) -> "TraceContext":
        # Keep propagating the caller's context even when local
        # tracing is off — downstream processes may have it on.
        return ctx

    def to_dict(self) -> dict:
        return {}


_NULL_SPAN = _NullSpan()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_span():
    """The innermost open span on this thread (``None`` outside any)."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def span(name: str, **attrs):
    """Open a child span of this thread's current span.

    Yields the :class:`Span`; on exit it is finished, attached to its
    parent (roots stay with the caller), and its wall time is observed
    into the ``repro_span_seconds{span=name}`` histogram. An exception
    marks the span's ``error`` and propagates.
    """
    if not _enabled:
        yield _NULL_SPAN
        return
    node = Span(name, attrs)
    stack = _stack()
    stack.append(node)
    try:
        yield node
    except BaseException as exc:
        node.error = type(exc).__name__
        raise
    finally:
        stack.pop()
        node.finish()
        if stack:
            stack[-1].add_child(node)
        _span_histogram(name).observe(node.wall_s)


def render_tree(trace: dict, indent: int = 0) -> list:
    """Pretty lines for one ``Span.to_dict()`` tree (CLI renderer)."""
    if not trace:
        return []
    wall = trace.get("wall_s", 0.0)
    cpu = trace.get("cpu_s", 0.0)
    attrs = trace.get("attrs", {})
    suffix = ""
    if attrs:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        suffix = f"  [{inner}]"
    if trace.get("error"):
        suffix += f"  !{trace['error']}"
    if trace.get("trace_id"):
        suffix += f"  trace={trace['trace_id'][:8]}"
    lines = [f"{'  ' * indent}{trace.get('name', '?')}  "
             f"{wall * 1000:.2f} ms wall / {cpu * 1000:.2f} ms cpu"
             f"{suffix}"]
    for child in trace.get("children", []):
        lines.extend(render_tree(child, indent + 1))
    if trace.get("dropped"):
        lines.append(f"{'  ' * (indent + 1)}"
                     f"… {trace['dropped']} child span(s) dropped")
    return lines
