"""Lightweight span tracing: where did this request's time actually go?

A :class:`Span` is one named, timed stage of work (wall clock via
``perf_counter``, CPU via ``thread_time``) with free-form attributes
and child spans. The module-level :func:`span` context manager
maintains a per-thread stack, so nested ``with`` blocks build a tree
without any plumbing::

    with span("serve.execute", job_id=jid) as root:
        ...
        with span("engine.evaluate_many", corners=3):
            ...
    root.to_dict()      # the whole tree, JSON-able

The tree shape mirrors the call tree: the serve worker opens the root,
the search driver adds per-round spans, the engine adds
characterize/flow/executor spans underneath — all on the same thread,
which is exactly how the serve layer executes jobs (engine executions
serialize on one lock).

Span durations also feed the process metrics registry
(``repro_span_seconds{span=...}`` histograms), so every traced stage
gets a latency distribution for free; :func:`set_enabled` (or
:func:`repro.obs.disabled`) turns the whole mechanism into a no-op.

Synthetic spans (:meth:`Span.synthetic`) cover stages that were
measured externally rather than executed under a tracer — e.g. a serve
job's queue wait, reconstructed from its ledger.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from .metrics import get_registry

__all__ = ["Span", "span", "current_span", "set_enabled", "enabled",
           "render_tree"]

#: Children beyond this are dropped (counted in ``dropped``) so a
#: pathological loop cannot grow an unbounded tree.
MAX_CHILDREN = 256

_local = threading.local()
_enabled = True

# Span-exit fast path: resolving histogram children through the family
# costs label-key validation per call, which adds up on micro-spans.
# Memoize per (registry, span name); invalidated whenever use_registry
# swaps the default registry out from under us.
_hist_registry = None
_hist_children: dict = {}


def _span_histogram(name: str):
    global _hist_registry, _hist_children
    registry = get_registry()
    if registry is not _hist_registry:
        _hist_registry = registry
        _hist_children = {}
    child = _hist_children.get(name)
    if child is None:
        child = _hist_children[name] = registry.histogram(
            "repro_span_seconds",
            "Wall-clock seconds per traced stage",
            labels=("span",)).labels(span=name)
    return child


def set_enabled(flag: bool) -> None:
    """Globally enable/disable tracing (spans become no-ops)."""
    global _enabled
    _enabled = bool(flag)


def enabled() -> bool:
    return _enabled


class Span:
    """One timed stage; a node in a per-request trace tree."""

    __slots__ = ("name", "attrs", "children", "start_s", "wall_s",
                 "cpu_s", "dropped", "error", "_t0", "_c0")

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.children: list = []
        self.start_s = time.time()
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.dropped = 0
        self.error = ""
        self._t0 = time.perf_counter()
        self._c0 = time.thread_time()

    def finish(self) -> "Span":
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.thread_time() - self._c0
        return self

    def add_child(self, child: "Span") -> None:
        if len(self.children) >= MAX_CHILDREN:
            self.dropped += 1
            return
        self.children.append(child)

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    @classmethod
    def synthetic(cls, name: str, wall_s: float,
                  start_s: float | None = None, **attrs) -> "Span":
        """A finished span for an externally measured stage."""
        out = cls(name, attrs)
        out.wall_s = float(wall_s)
        out.cpu_s = 0.0
        if start_s is not None:
            out.start_s = float(start_s)
        return out

    def to_dict(self) -> dict:
        out = {"name": self.name, "start_s": self.start_s,
               "wall_s": self.wall_s, "cpu_s": self.cpu_s}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        if self.dropped:
            out["dropped"] = self.dropped
        if self.error:
            out["error"] = self.error
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        out = cls.synthetic(data.get("name", "?"),
                            data.get("wall_s", 0.0),
                            start_s=data.get("start_s"),
                            **data.get("attrs", {}))
        out.cpu_s = data.get("cpu_s", 0.0)
        out.dropped = data.get("dropped", 0)
        out.error = data.get("error", "")
        out.children = [cls.from_dict(c)
                        for c in data.get("children", [])]
        return out


class _NullSpan:
    """Stands in when tracing is disabled: absorbs annotations."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    children: list = []
    wall_s = 0.0
    cpu_s = 0.0

    def annotate(self, **attrs) -> None:
        pass

    def add_child(self, child) -> None:
        pass

    def to_dict(self) -> dict:
        return {}


_NULL_SPAN = _NullSpan()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_span():
    """The innermost open span on this thread (``None`` outside any)."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def span(name: str, **attrs):
    """Open a child span of this thread's current span.

    Yields the :class:`Span`; on exit it is finished, attached to its
    parent (roots stay with the caller), and its wall time is observed
    into the ``repro_span_seconds{span=name}`` histogram. An exception
    marks the span's ``error`` and propagates.
    """
    if not _enabled:
        yield _NULL_SPAN
        return
    node = Span(name, attrs)
    stack = _stack()
    stack.append(node)
    try:
        yield node
    except BaseException as exc:
        node.error = type(exc).__name__
        raise
    finally:
        stack.pop()
        node.finish()
        if stack:
            stack[-1].add_child(node)
        _span_histogram(name).observe(node.wall_s)


def render_tree(trace: dict, indent: int = 0) -> list:
    """Pretty lines for one ``Span.to_dict()`` tree (CLI renderer)."""
    if not trace:
        return []
    wall = trace.get("wall_s", 0.0)
    cpu = trace.get("cpu_s", 0.0)
    attrs = trace.get("attrs", {})
    suffix = ""
    if attrs:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        suffix = f"  [{inner}]"
    if trace.get("error"):
        suffix += f"  !{trace['error']}"
    lines = [f"{'  ' * indent}{trace.get('name', '?')}  "
             f"{wall * 1000:.2f} ms wall / {cpu * 1000:.2f} ms cpu"
             f"{suffix}"]
    for child in trace.get("children", []):
        lines.extend(render_tree(child, indent + 1))
    if trace.get("dropped"):
        lines.append(f"{'  ' * (indent + 1)}"
                     f"… {trace['dropped']} child span(s) dropped")
    return lines
