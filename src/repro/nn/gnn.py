"""Graph neural network layers: GCN and edge-feature GAT (RelGAT).

``RelGATConv`` implements the paper's RelGAT building block: graph attention
(Velickovic et al.) extended with an edge-feature term so the FEM-inspired
spatial relationship embedding of Fig. 2 participates in both the attention
logits and the messages. ``GCNConv`` is the standard Kipf–Welling layer used
by the cell-characterization model (Sec. II-C).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .graph import add_self_loops
from .layers import Linear, Module
from .tensor import Tensor

__all__ = ["GCNConv", "RelGATConv", "global_mean_pool", "global_sum_pool",
           "global_max_pool"]


class GCNConv(Module):
    """Graph convolution ``X' = D^-1/2 (A + I) D^-1/2 X W + b``.

    Edges are treated as directed as given; callers wanting symmetric
    aggregation should pass an undirected edge list (both directions).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.lin = Linear(in_features, out_features, bias=bias, rng=rng)

    def forward(self, x: Tensor, edge_index: np.ndarray,
                num_nodes: int | None = None) -> Tensor:
        n = num_nodes if num_nodes is not None else x.shape[0]
        ei, _ = add_self_loops(edge_index, n)
        src, dst = ei[0], ei[1]
        deg = np.bincount(dst, minlength=n).astype(np.float64)
        deg_src = np.bincount(src, minlength=n).astype(np.float64)
        norm = 1.0 / np.sqrt(np.maximum(deg_src[src], 1.0) *
                             np.maximum(deg[dst], 1.0))
        h = self.lin(x)
        messages = h.gather_rows(src) * Tensor(norm[:, None])
        return F.scatter_sum(messages, dst, n)


class RelGATConv(Module):
    """Graph attention layer with relative-position edge features.

    For edge ``(s -> t)`` with transformed features ``h_s, h_t`` and edge
    embedding ``w_e``::

        logit_e = LeakyReLU(a_src . h_s + a_dst . h_t + a_edge . w_e)
        alpha_e = softmax over incoming edges of t
        out_t   = sum_e alpha_e * (h_s + w_e)

    Multi-head outputs are concatenated (``concat=True``) or averaged.
    Self loops are added so every node attends to itself (with a zero edge
    embedding), matching common GAT practice.

    Parameters
    ----------
    in_features, out_features:
        Node feature sizes (``out_features`` is per head).
    edge_features:
        Dimensionality of raw edge attributes (0 disables the edge term).
    heads:
        Number of attention heads.
    concat:
        Concatenate head outputs (output size ``heads * out_features``)
        instead of averaging them.
    negative_slope:
        LeakyReLU slope for attention logits.
    residual:
        Add a (projected) skip connection from the layer input.
    """

    def __init__(self, in_features: int, out_features: int,
                 edge_features: int = 0, heads: int = 1, concat: bool = True,
                 negative_slope: float = 0.2, residual: bool = False,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.edge_features = edge_features
        self.heads = heads
        self.concat = concat
        self.negative_slope = negative_slope
        self.lin = Linear(in_features, heads * out_features, bias=False, rng=rng)
        if edge_features > 0:
            self.lin_edge = Linear(edge_features, heads * out_features,
                                   bias=False, rng=rng)
        else:
            self.lin_edge = None
        from .tensor import Parameter
        scale = np.sqrt(2.0 / (out_features + 1))
        self.att_src = Parameter(rng.uniform(-scale, scale,
                                             size=(heads, out_features)))
        self.att_dst = Parameter(rng.uniform(-scale, scale,
                                             size=(heads, out_features)))
        if edge_features > 0:
            self.att_edge = Parameter(rng.uniform(-scale, scale,
                                                  size=(heads, out_features)))
        else:
            self.att_edge = None
        out_dim = heads * out_features if concat else out_features
        if residual and in_features != out_dim:
            self.lin_res = Linear(in_features, out_dim, bias=False, rng=rng)
        else:
            self.lin_res = None
        self.residual = residual
        from .tensor import Parameter as _P
        self.bias = _P(np.zeros(out_dim))

    def forward(self, x: Tensor, edge_index: np.ndarray,
                edge_attr: np.ndarray | Tensor | None = None,
                num_nodes: int | None = None) -> Tensor:
        n = num_nodes if num_nodes is not None else x.shape[0]
        h_heads, ei = self._transform(x, edge_index, edge_attr, n)
        return self._finish(x, h_heads, ei, n)

    # -- internals -----------------------------------------------------------
    def _transform(self, x, edge_index, edge_attr, n):
        H, Fo = self.heads, self.out_features
        if self.edge_features > 0:
            if edge_attr is None:
                raise ValueError("layer was built with edge features; "
                                 "edge_attr is required")
            ea = edge_attr.data if isinstance(edge_attr, Tensor) else \
                np.asarray(edge_attr, dtype=np.float64)
            ei, ea = add_self_loops(edge_index, n, ea, fill_value=0.0)
        else:
            ei, ea = add_self_loops(edge_index, n)
        src, dst = ei[0], ei[1]
        h = self.lin(x).reshape(-1, H, Fo)                     # (N, H, Fo)
        # Per-node attention contributions, (N, H).
        alpha_src = (h * self.att_src).sum(axis=-1)
        alpha_dst = (h * self.att_dst).sum(axis=-1)
        logits = alpha_src.gather_rows(src) + alpha_dst.gather_rows(dst)
        if self.lin_edge is not None:
            w_e = self.lin_edge(Tensor(ea)).reshape(-1, H, Fo)  # (E, H, Fo)
            logits = logits + (w_e * self.att_edge).sum(axis=-1)
        else:
            w_e = None
        logits = logits.leaky_relu(self.negative_slope)         # (E, H)
        alpha = F.segment_softmax(logits, dst, n)               # (E, H)
        messages = h.gather_rows(src)                           # (E, H, Fo)
        if w_e is not None:
            messages = messages + w_e
        weighted = messages * alpha.reshape(-1, H, 1)
        out = F.scatter_sum(weighted, dst, n)                   # (N, H, Fo)
        return out, ei

    def _finish(self, x, out, ei, n):
        H, Fo = self.heads, self.out_features
        if self.concat:
            out = out.reshape(n, H * Fo)
        else:
            out = out.mean(axis=1)
        if self.residual:
            res = self.lin_res(x) if self.lin_res is not None else x
            out = out + res
        return out + self.bias


def global_mean_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Average node features per graph → ``(num_graphs, F)``."""
    return F.scatter_mean(x, batch, num_graphs)


def global_sum_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Sum node features per graph → ``(num_graphs, F)``."""
    return F.scatter_sum(x, batch, num_graphs)


def global_max_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-graph feature-wise max pooling (gradient flows to the argmax)."""
    data = x.data
    out = np.full((num_graphs,) + data.shape[1:], -np.inf)
    np.maximum.at(out, batch, data)
    # Build a selection mask: 1 where the node value equals its graph max.
    mask = (data == out[batch]).astype(np.float64)
    # Normalise ties so the gradient is split.
    denom = np.zeros_like(out)
    np.add.at(denom, batch, mask)
    mask /= np.maximum(denom[batch], 1.0)
    masked = x * Tensor(mask)
    return F.scatter_sum(masked, batch, num_graphs)
