"""Generic mini-batch training loop for graph regression models.

The models in :mod:`repro.surrogate` and :mod:`repro.charlib` expose
``forward_batch(batch) -> Tensor`` returning predictions aligned with
``batch.y``. :class:`Trainer` shuffles graphs, batches them block-diagonally,
runs Adam with gradient clipping, and tracks validation loss with optional
early stopping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .graph import batch_graphs
from .loss import mse_loss
from .optim import Adam, clip_grad_norm
from .tensor import no_grad

__all__ = ["TrainConfig", "TrainResult", "Trainer"]


@dataclass
class TrainConfig:
    """Hyperparameters for :class:`Trainer`."""

    epochs: int = 100
    batch_size: int = 16
    lr: float = 1e-3
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    early_stop_patience: int = 0      # 0 disables early stopping
    shuffle: bool = True
    seed: int = 0
    verbose: bool = False
    log_every: int = 10


@dataclass
class TrainResult:
    """Training history and timing."""

    train_losses: list = field(default_factory=list)
    val_losses: list = field(default_factory=list)
    best_val_loss: float = float("inf")
    best_epoch: int = -1
    wall_time_s: float = 0.0
    epochs_run: int = 0


class Trainer:
    """Train a graph model by minimising a loss over mini-batches.

    Parameters
    ----------
    model:
        Module exposing ``forward_batch(batch) -> Tensor`` (or being callable
        on a batch directly).
    loss_fn:
        ``(pred_tensor, target_array) -> scalar Tensor``; default MSE.
    config:
        :class:`TrainConfig` hyperparameters.
    """

    def __init__(self, model, loss_fn=mse_loss, config: TrainConfig | None = None):
        self.model = model
        self.loss_fn = loss_fn
        self.config = config if config is not None else TrainConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.lr,
                              weight_decay=self.config.weight_decay)

    # ------------------------------------------------------------------
    def _forward(self, batch):
        if hasattr(self.model, "forward_batch"):
            return self.model.forward_batch(batch)
        return self.model(batch)

    def _iter_batches(self, graphs, rng: np.random.Generator | None):
        idx = np.arange(len(graphs))
        if rng is not None and self.config.shuffle:
            rng.shuffle(idx)
        bs = self.config.batch_size
        for start in range(0, len(idx), bs):
            chunk = [graphs[i] for i in idx[start:start + bs]]
            yield batch_graphs(chunk)

    def evaluate(self, graphs) -> float:
        """Mean loss over ``graphs`` without gradient tracking."""
        if not graphs:
            return float("nan")
        self.model.eval()
        total, count = 0.0, 0
        with no_grad():
            for batch in self._iter_batches(graphs, rng=None):
                pred = self._forward(batch)
                loss = self.loss_fn(pred, batch.y)
                n = batch.num_graphs
                total += loss.item() * n
                count += n
        self.model.train()
        return total / count

    def predict(self, graphs) -> np.ndarray:
        """Concatenated predictions over ``graphs`` (inference mode)."""
        outs = []
        self.model.eval()
        with no_grad():
            for batch in self._iter_batches(graphs, rng=None):
                outs.append(self._forward(batch).data)
        self.model.train()
        return np.concatenate(outs, axis=0)

    # ------------------------------------------------------------------
    def fit(self, train_graphs, val_graphs=None) -> TrainResult:
        """Run the optimisation loop; returns the training history."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        result = TrainResult()
        best_state = None
        patience = 0
        start = time.perf_counter()
        for epoch in range(cfg.epochs):
            epoch_loss, seen = 0.0, 0
            for batch in self._iter_batches(train_graphs, rng):
                self.optimizer.zero_grad()
                pred = self._forward(batch)
                loss = self.loss_fn(pred, batch.y)
                loss.backward()
                if cfg.grad_clip > 0:
                    clip_grad_norm(self.optimizer.params, cfg.grad_clip)
                self.optimizer.step()
                epoch_loss += loss.item() * batch.num_graphs
                seen += batch.num_graphs
            train_loss = epoch_loss / max(seen, 1)
            result.train_losses.append(train_loss)
            result.epochs_run = epoch + 1

            if val_graphs:
                val_loss = self.evaluate(val_graphs)
                result.val_losses.append(val_loss)
                if val_loss < result.best_val_loss:
                    result.best_val_loss = val_loss
                    result.best_epoch = epoch
                    best_state = self.model.state_dict()
                    patience = 0
                else:
                    patience += 1
                if cfg.early_stop_patience and patience >= cfg.early_stop_patience:
                    break
            if cfg.verbose and (epoch % cfg.log_every == 0 or
                                epoch == cfg.epochs - 1):
                msg = f"epoch {epoch:4d} train {train_loss:.3e}"
                if val_graphs:
                    msg += f" val {result.val_losses[-1]:.3e}"
                print(msg)
        if best_state is not None:
            self.model.load_state_dict(best_state)
        result.wall_time_s = time.perf_counter() - start
        return result
