"""Functional operations for :mod:`repro.nn`.

Free functions over :class:`~repro.nn.tensor.Tensor`: activations, softmax,
concatenation, and the segment (scatter/gather) primitives that message
passing layers are assembled from.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "relu", "leaky_relu", "elu", "tanh", "sigmoid", "gelu", "softplus",
    "identity", "softmax", "log_softmax", "concat", "stack", "dropout",
    "gather_rows", "scatter_sum", "scatter_mean", "segment_max_np",
    "segment_softmax", "get_activation",
]


def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    return x.leaky_relu(negative_slope)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    return x.elu(alpha)


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def softplus(x: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))``."""
    # softplus(x) = max(x, 0) + log1p(exp(-|x|)); compose from stable pieces.
    return x.relu() + ((-x.abs()).exp() + 1.0).log()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    inner = (x + x * x * x * 0.044715) * 0.7978845608028654
    return x * (inner.tanh() + 1.0) * 0.5


def identity(x: Tensor) -> Tensor:
    return x


_ACTIVATIONS = {
    "relu": relu,
    "leaky_relu": leaky_relu,
    "elu": elu,
    "tanh": tanh,
    "sigmoid": sigmoid,
    "gelu": gelu,
    "softplus": softplus,
    "identity": identity,
    "linear": identity,
    None: identity,
}


def get_activation(name):
    """Look up an activation function by name (or pass a callable through)."""
    if callable(name):
        return name
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise ValueError(f"unknown activation {name!r}") from None


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with max-shift stabilisation."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def concat(tensors, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors, axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        for i, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(np.take(grad, i, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Row gather along axis 0 (``x[index]`` with autograd)."""
    return as_tensor(x).gather_rows(index)


def scatter_sum(src: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``src`` into ``num_segments`` buckets given by ``index``.

    The inverse of :func:`gather_rows`: ``out[s] = sum_{i: index[i]==s} src[i]``.
    This is the aggregation step of message passing.
    """
    src = as_tensor(src)
    index = np.asarray(index, dtype=np.intp)
    out_shape = (num_segments,) + src.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, index, src.data)

    def backward(grad):
        if src.requires_grad:
            src._accumulate(grad[index])

    return Tensor._make(out_data, (src,), backward)


def scatter_mean(src: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregate rows of ``src`` per segment (empty segments give 0)."""
    index = np.asarray(index, dtype=np.intp)
    counts = np.bincount(index, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    summed = scatter_sum(src, index, num_segments)
    shape = (num_segments,) + (1,) * (len(summed.shape) - 1)
    return summed * Tensor(1.0 / counts.reshape(shape))


def segment_max_np(values: np.ndarray, index: np.ndarray,
                   num_segments: int) -> np.ndarray:
    """Per-segment max as a plain numpy array (no gradient; used for
    softmax stabilisation)."""
    out = np.full((num_segments,) + values.shape[1:], -np.inf)
    np.maximum.at(out, index, values)
    return out


def segment_softmax(logits: Tensor, index: np.ndarray,
                    num_segments: int) -> Tensor:
    """Softmax over variable-size segments (attention normalisation).

    ``out[i] = exp(logits[i]) / sum_{j: index[j]==index[i]} exp(logits[j])``
    with the usual per-segment max shift for stability. The max shift is
    detached, which is exact for softmax gradients.
    """
    logits = as_tensor(logits)
    index = np.asarray(index, dtype=np.intp)
    seg_max = segment_max_np(logits.data, index, num_segments)
    seg_max = np.where(np.isfinite(seg_max), seg_max, 0.0)
    shifted = logits - Tensor(seg_max[index])
    exps = shifted.exp()
    denom = scatter_sum(exps, index, num_segments)
    denom_safe = denom + 1e-16
    return exps / denom_safe.gather_rows(index)
