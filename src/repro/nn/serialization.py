"""Save and load model parameters as ``.npz`` archives."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = ["save_model", "load_model"]


def save_model(model, path, meta: dict | None = None) -> None:
    """Write a module's ``state_dict`` (and optional JSON metadata) to disk.

    Parameter names may contain ``.``, which ``np.savez`` preserves as-is.
    Metadata is stored under the reserved key ``__meta__``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(model.state_dict())
    if "__meta__" in payload:
        raise ValueError("'__meta__' is a reserved key")
    payload["__meta__"] = np.frombuffer(
        json.dumps(meta or {}).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **payload)


def load_model(model, path) -> dict:
    """Load parameters saved by :func:`save_model` into ``model``.

    Returns the metadata dictionary stored alongside the parameters.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        state = {k: archive[k] for k in archive.files if k != "__meta__"}
        meta_raw = archive["__meta__"] if "__meta__" in archive.files else None
    model.load_state_dict(state)
    if meta_raw is None:
        return {}
    return json.loads(bytes(meta_raw.tobytes()).decode("utf-8"))
