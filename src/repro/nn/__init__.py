"""Minimal numpy-based neural network framework with GNN support.

Provides reverse-mode autograd (:mod:`~repro.nn.tensor`), standard layers,
graph layers (GCN, edge-feature GAT / RelGAT), optimizers, losses, metrics,
graph batching and a training loop — everything the paper's surrogates need,
with no dependency beyond numpy.
"""

from .tensor import Tensor, Parameter, as_tensor, no_grad, is_grad_enabled
from . import functional
from .layers import (Module, Linear, MLP, LayerNorm, Sequential, Activation,
                     Dropout, ModuleList)
from .graph import Graph, Batch, batch_graphs, add_self_loops
from .gnn import (GCNConv, RelGATConv, global_mean_pool, global_sum_pool,
                  global_max_pool)
from .optim import SGD, Adam, clip_grad_norm, StepLR, CosineLR
from .loss import mse_loss, l1_loss, huber_loss, relative_l2_loss
from .metrics import mse, rmse, mae, mape, r2_score
from .trainer import Trainer, TrainConfig, TrainResult
from .serialization import save_model, load_model

__all__ = [
    "Tensor", "Parameter", "as_tensor", "no_grad", "is_grad_enabled",
    "functional",
    "Module", "Linear", "MLP", "LayerNorm", "Sequential", "Activation",
    "Dropout", "ModuleList",
    "Graph", "Batch", "batch_graphs", "add_self_loops",
    "GCNConv", "RelGATConv", "global_mean_pool", "global_sum_pool",
    "global_max_pool",
    "SGD", "Adam", "clip_grad_norm", "StepLR", "CosineLR",
    "mse_loss", "l1_loss", "huber_loss", "relative_l2_loss",
    "mse", "rmse", "mae", "mape", "r2_score",
    "Trainer", "TrainConfig", "TrainResult",
    "save_model", "load_model",
]
