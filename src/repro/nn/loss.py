"""Differentiable loss functions."""

from __future__ import annotations

from .tensor import Tensor, as_tensor

__all__ = ["mse_loss", "l1_loss", "huber_loss", "relative_l2_loss"]


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error."""
    target = as_tensor(target)
    diff = pred - target.detach()
    return (diff * diff).mean()


def l1_loss(pred: Tensor, target) -> Tensor:
    """Mean absolute error."""
    target = as_tensor(target)
    return (pred - target.detach()).abs().mean()


def huber_loss(pred: Tensor, target, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails.

    Implemented with the smooth identity
    ``huber(r) = delta^2 * (sqrt(1 + (r/delta)^2) - 1)`` (pseudo-Huber),
    which keeps the computation graph free of branches.
    """
    target = as_tensor(target)
    r = (pred - target.detach()) * (1.0 / delta)
    return ((r * r + 1.0).sqrt() - 1.0).mean() * (delta ** 2)


def relative_l2_loss(pred: Tensor, target, eps: float = 1e-8) -> Tensor:
    """MSE normalised by target magnitude — useful when targets span
    orders of magnitude (e.g. dynamic power across cells)."""
    target = as_tensor(target).detach()
    scale = (target * target).mean().item() + eps
    diff = pred - target
    return (diff * diff).mean() * (1.0 / scale)
