"""Graph containers and batching for GNN training.

A :class:`Graph` stores node features ``x (N, F)``, directed edges
``edge_index (2, E)``, optional edge features ``edge_attr (E, Fe)`` and
targets ``y`` (node-level ``(N, T)`` or graph-level ``(T,)``).
:func:`batch_graphs` merges a list of graphs into one block-diagonal graph,
tracking the node → graph assignment needed by pooling layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Graph", "Batch", "batch_graphs", "add_self_loops"]


@dataclass
class Graph:
    """A single attributed graph sample."""

    x: np.ndarray
    edge_index: np.ndarray
    edge_attr: np.ndarray | None = None
    y: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=np.float64)
        self.edge_index = np.asarray(self.edge_index, dtype=np.intp)
        if self.edge_index.ndim != 2 or self.edge_index.shape[0] != 2:
            raise ValueError("edge_index must have shape (2, E)")
        if self.edge_attr is not None:
            self.edge_attr = np.asarray(self.edge_attr, dtype=np.float64)
            if self.edge_attr.shape[0] != self.edge_index.shape[1]:
                raise ValueError("edge_attr rows must match number of edges")
        if self.y is not None:
            self.y = np.asarray(self.y, dtype=np.float64)
        if self.num_edges and self.edge_index.max(initial=-1) >= self.num_nodes:
            raise ValueError("edge_index references a node that does not exist")

    @property
    def num_nodes(self) -> int:
        return self.x.shape[0]

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1]

    @property
    def num_node_features(self) -> int:
        return self.x.shape[1] if self.x.ndim > 1 else 1

    @property
    def num_edge_features(self) -> int:
        if self.edge_attr is None:
            return 0
        return self.edge_attr.shape[1] if self.edge_attr.ndim > 1 else 1

    def to_undirected(self) -> "Graph":
        """Return a copy with every edge mirrored (edge attrs duplicated)."""
        rev = self.edge_index[::-1]
        edge_index = np.concatenate([self.edge_index, rev], axis=1)
        edge_attr = None
        if self.edge_attr is not None:
            edge_attr = np.concatenate([self.edge_attr, self.edge_attr], axis=0)
        return Graph(self.x, edge_index, edge_attr, self.y, dict(self.meta))


@dataclass
class Batch:
    """A block-diagonal merge of several graphs."""

    x: np.ndarray
    edge_index: np.ndarray
    edge_attr: np.ndarray | None
    y: np.ndarray | None
    batch: np.ndarray          # (N,) node -> graph id
    num_graphs: int
    node_offsets: np.ndarray   # (num_graphs + 1,)

    @property
    def num_nodes(self) -> int:
        return self.x.shape[0]

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1]


def batch_graphs(graphs) -> Batch:
    """Merge graphs into one disconnected union graph.

    Node-level targets are concatenated along axis 0; graph-level targets are
    stacked into ``(num_graphs, T)``.
    """
    graphs = list(graphs)
    if not graphs:
        raise ValueError("cannot batch an empty list of graphs")
    xs, eis, eas, ys, batch_ids = [], [], [], [], []
    offsets = [0]
    has_edge_attr = graphs[0].edge_attr is not None
    node_level = (graphs[0].y is not None
                  and graphs[0].y.ndim >= 1
                  and graphs[0].y.shape[0] == graphs[0].num_nodes
                  and graphs[0].y.ndim > 0
                  and graphs[0].meta.get("target_level", "node") == "node")
    offset = 0
    for gid, g in enumerate(graphs):
        xs.append(g.x)
        eis.append(g.edge_index + offset)
        if has_edge_attr:
            if g.edge_attr is None:
                raise ValueError("cannot mix graphs with and without edge_attr")
            eas.append(g.edge_attr)
        if g.y is not None:
            ys.append(g.y)
        batch_ids.append(np.full(g.num_nodes, gid, dtype=np.intp))
        offset += g.num_nodes
        offsets.append(offset)
    y = None
    if ys:
        if node_level:
            y = np.concatenate(ys, axis=0)
        else:
            y = np.stack(ys, axis=0)
    return Batch(
        x=np.concatenate(xs, axis=0),
        edge_index=np.concatenate(eis, axis=1),
        edge_attr=np.concatenate(eas, axis=0) if eas else None,
        y=y,
        batch=np.concatenate(batch_ids),
        num_graphs=len(graphs),
        node_offsets=np.asarray(offsets, dtype=np.intp),
    )


def add_self_loops(edge_index: np.ndarray, num_nodes: int,
                   edge_attr: np.ndarray | None = None,
                   fill_value: float = 0.0):
    """Append one self loop per node; self-loop edge attrs are constant."""
    loops = np.arange(num_nodes, dtype=np.intp)
    ei = np.concatenate([edge_index, np.stack([loops, loops])], axis=1)
    if edge_attr is None:
        return ei, None
    loop_attr = np.full((num_nodes, edge_attr.shape[1]), fill_value)
    return ei, np.concatenate([edge_attr, loop_attr], axis=0)
