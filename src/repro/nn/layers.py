"""Neural-network modules: Linear, MLP, LayerNorm, Sequential, Dropout.

The :class:`Module` base class provides parameter discovery by attribute
scanning (including lists of modules), a ``state_dict`` for serialization,
and train/eval mode switching — a deliberately small subset of the
``torch.nn.Module`` contract.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Parameter, Tensor

__all__ = ["Module", "Linear", "MLP", "LayerNorm", "Sequential",
           "Activation", "Dropout", "ModuleList"]


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        self.training = True

    # -- parameter discovery -------------------------------------------------
    def named_parameters(self, prefix: str = ""):
        """Yield ``(name, Parameter)`` pairs for this module and children."""
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{name}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(f"{name}.{i}.")

    def parameters(self):
        """Return the list of trainable parameters."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.size for p in self.parameters()))

    def modules(self):
        """Yield this module and all descendant modules."""
        yield self
        for value in vars(self).items():
            pass
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- mode switching -------------------------------------------------------
    def train(self, mode: bool = True):
        for module in self.modules():
            module.training = mode
        return self

    def eval(self):
        return self.train(False)

    def zero_grad(self):
        for p in self.parameters():
            p.grad = None

    # -- serialization --------------------------------------------------------
    def state_dict(self) -> dict:
        """Return a name → array snapshot of all parameters."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.data.shape}")
            param.data = value.copy()

    # -- call protocol ----------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape=None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


class Linear(Module):
    """Affine map ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input / output dimensionality.
    bias:
        Include an additive bias term.
    rng:
        Generator used for Glorot initialisation (defaults to a fixed seed so
        module construction is reproducible).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot_uniform(rng, in_features, out_features))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Activation(Module):
    """Wrap a named activation function as a module."""

    def __init__(self, name):
        super().__init__()
        self.fn = F.get_activation(name)
        self._name = name if isinstance(name, str) else getattr(name, "__name__", "fn")

    def forward(self, x: Tensor) -> Tensor:
        return self.fn(x)


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class LayerNorm(Module):
    """Layer normalisation over the last dimension.

    The paper applies layer normalisation in both surrogate models to aid
    convergence; this matches that choice.
    """

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_shape))
        self.beta = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Sequential(Module):
    """Chain modules, feeding each output to the next."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.items = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.items:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self.items)

    def __len__(self):
        return len(self.items)


class MLP(Module):
    """Multilayer perceptron with configurable hidden activation.

    ``dims = [in, h1, ..., out]`` produces ``len(dims) - 1`` linear layers
    with the activation between them (none after the last unless
    ``final_activation`` is given).
    """

    def __init__(self, dims, activation="relu", final_activation=None,
                 layer_norm: bool = False,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least [in, out] dims")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dims = list(dims)
        layers: list[Module] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng=rng))
            is_last = i == len(dims) - 2
            if not is_last:
                if layer_norm:
                    layers.append(LayerNorm(d_out))
                layers.append(Activation(activation))
            elif final_activation is not None:
                layers.append(Activation(final_activation))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class ModuleList(Module):
    """A list container whose items participate in parameter discovery."""

    def __init__(self, modules=()):
        super().__init__()
        self.items = list(modules)

    def append(self, module: Module):
        self.items.append(module)
        return self

    def __getitem__(self, i):
        return self.items[i]

    def __iter__(self):
        return iter(self.items)

    def __len__(self):
        return len(self.items)

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")
