"""Evaluation metrics (plain numpy; no gradients).

These are the metrics the paper reports: MSE (Table II), MAPE (Table IV)
and the coefficient of determination R² (Table II, 32k unseen split).
"""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "rmse", "mae", "mape", "r2_score"]


def _pair(pred, target):
    pred = np.asarray(pred, dtype=np.float64).ravel()
    target = np.asarray(target, dtype=np.float64).ravel()
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return pred, target


def mse(pred, target) -> float:
    """Mean squared error."""
    pred, target = _pair(pred, target)
    return float(np.mean((pred - target) ** 2))


def rmse(pred, target) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(pred, target)))


def mae(pred, target) -> float:
    """Mean absolute error."""
    pred, target = _pair(pred, target)
    return float(np.mean(np.abs(pred - target)))


def mape(pred, target, eps: float = 1e-12) -> float:
    """Mean absolute percentage error, in percent.

    Targets with magnitude below ``eps`` are excluded (they would produce
    unbounded percentages); if all targets are excluded the result is NaN.
    """
    pred, target = _pair(pred, target)
    mask = np.abs(target) > eps
    if not mask.any():
        return float("nan")
    return float(np.mean(np.abs((pred[mask] - target[mask]) / target[mask]))
                 * 100.0)


def r2_score(pred, target) -> float:
    """Coefficient of determination ``1 - SS_res / SS_tot``."""
    pred, target = _pair(pred, target)
    ss_res = float(np.sum((target - pred) ** 2))
    ss_tot = float(np.sum((target - target.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
