"""Optimizers and gradient utilities."""

from __future__ import annotations

import numpy as np

from .tensor import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "StepLR",
           "CosineLR"]


class Optimizer:
    """Base optimizer over a list of :class:`Parameter`."""

    def __init__(self, params, lr: float):
        self.params = [p for p in params if isinstance(p, Parameter)]
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with decoupled weight decay option."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(params, max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is ≤ ``max_norm``.

    Returns the pre-clip norm.
    """
    total = 0.0
    grads = [p.grad for p in params if p.grad is not None]
    for g in grads:
        total += float((g * g).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for g in grads:
            g *= scale
    return norm


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class CosineLR:
    """Cosine-anneal the learning rate from its initial value to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 min_lr: float = 0.0):
        self.optimizer = optimizer
        self.total = max(total_epochs, 1)
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.total)
        cos = 0.5 * (1 + np.cos(np.pi * self._epoch / self.total))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cos
