"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the :mod:`repro.nn` framework. It provides a
:class:`Tensor` that records the operations applied to it and can replay them
backwards to accumulate gradients — the same contract PyTorch offers, scoped
to the operations the STCO surrogates need (dense linear algebra plus the
gather/scatter primitives graph neural networks are built from).

Design notes
------------
* Gradients are plain ``numpy.ndarray`` objects stored on ``Tensor.grad``.
* The graph is a DAG of ``Tensor`` nodes; ``backward`` runs an iterative
  topological sort so very deep networks (the paper's Poisson emulator is a
  12-layer GAT) do not hit the recursion limit.
* Broadcasting follows numpy semantics; ``_unbroadcast`` folds gradients back
  to the operand's original shape.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "Parameter", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = [True]


class no_grad:
    """Context manager that disables graph recording (inference mode)."""

    def __enter__(self):
        self._prev = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = False
        return self

    def __exit__(self, exc_type, exc, tb):
        _GRAD_ENABLED[0] = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded for autograd."""
    return _GRAD_ENABLED[0]


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading dimensions numpy added during broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` (Tensor, array, or scalar) to a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64), requires_grad=requires_grad)


class Tensor:
    """A numpy array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64`` unless already a numpy
        array of another dtype.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(self, data, requires_grad: bool = False, _prev=(), name: str = ""):
        if not isinstance(data, np.ndarray):
            data = np.asarray(data, dtype=np.float64)
        self.data = data
        self.grad = None
        self.requires_grad = requires_grad and _GRAD_ENABLED[0]
        self._backward = None
        self._prev = _prev if self.requires_grad or _prev else ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data, parents, backward):
        """Create a result tensor; record ``backward`` if grads are needed."""
        requires = _GRAD_ENABLED[0] and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires,
                     _prev=tuple(parents) if requires else ())
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        out_data = self.data ** exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad @ np.swapaxes(other.data, -1, -2),
                                              self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(np.swapaxes(self.data, -1, -2) @ grad,
                                               other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        factor = np.where(self.data > 0, 1.0, negative_slope)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * factor)

        return Tensor._make(self.data * factor, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        pos = self.data > 0
        exp_part = alpha * (np.exp(np.minimum(self.data, 0.0)) - 1.0)
        out_data = np.where(pos, self.data, exp_part)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * np.where(pos, 1.0, exp_part + alpha))

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through inside the window."""
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            full = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == full).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(old_shape))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, axes=None) -> "Tensor":
        if axes is None:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Select rows ``index`` along axis 0 (autograd-aware fancy index)."""
        index = np.asarray(index, dtype=np.intp)
        out_data = self.data[index]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad=None) -> None:
        """Accumulate gradients of this tensor w.r.t. graph leaves.

        Parameters
        ----------
        grad:
            Incoming gradient; defaults to 1 for scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None


class Parameter(Tensor):
    """A trainable :class:`Tensor` (``requires_grad=True`` by default)."""

    def __init__(self, data, name: str = ""):
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True,
                         name=name)
        # Parameters are leaves even when created inside no_grad blocks.
        self.requires_grad = True
