"""Semiconductor charge physics for the Poisson / IV solvers.

Uses the intrinsic-level-referenced Boltzmann formulation:
``n = ni exp((psi - phi_n)/Vt)``, ``p = ni exp((phi_p - psi)/Vt)`` with an
acceptor-like exponential tail-trap term (the TDT population whose transport
signature is the compact model's gamma), SRH recombination, and the
percolation / variable-range-hopping mobility enhancement.
"""

from __future__ import annotations

import numpy as np

from .materials import KB_T, Material, Q

__all__ = ["ChargeModel", "srh_recombination", "tdt_mobility",
           "tdt_gamma"]

#: Exponent clip keeping exp() inside float64 while allowing full
#: accumulation for wide-gap materials (IGZO needs ~ e^60 above intrinsic).
_EXP_CLIP = 80.0


def _bexp(x):
    """Clipped exponential."""
    return np.exp(np.clip(x, -_EXP_CLIP, _EXP_CLIP))


class ChargeModel:
    """Charge density and its derivative for one semiconductor material.

    Parameters
    ----------
    mat:
        Semiconductor material (must have ``nc > 0``).
    vt:
        Thermal voltage [V].
    """

    def __init__(self, mat: Material, vt: float = KB_T):
        if mat.nc <= 0:
            raise ValueError(f"{mat.name} has no band parameters")
        self.mat = mat
        self.vt = vt
        self.ni = mat.ni
        # Tail traps: acceptor-like band-tail states just below the
        # conduction band edge (Ec sits Eg/2 above the intrinsic reference),
        # with characteristic energy tail_kt; occupation grows with psi.
        self.vt_tail = max(mat.tail_kt, 1e-3)
        self.tail_offset = max(mat.bandgap / 2.0 - 0.1, 0.05)

    # -- carrier densities --------------------------------------------------
    def n(self, psi, phi_n=0.0):
        """Electron density [1/m^3]."""
        return self.ni * _bexp((psi - phi_n) / self.vt)

    def p(self, psi, phi_p=0.0):
        """Hole density [1/m^3]."""
        return self.ni * _bexp((phi_p - psi) / self.vt)

    def n_tail(self, psi, phi_n=0.0):
        """Occupied tail-trap density [1/m^3] (bounded by tail_nt)."""
        x = (psi - phi_n - self.tail_offset) / self.vt_tail
        return self.mat.tail_nt / (1.0 + _bexp(-x))

    # -- space charge and derivative ----------------------------------------
    def rho(self, psi, doping, phi_n=0.0, phi_p=None):
        """Space charge density [C/m^3]: q (p - n - n_tail + N_dop)."""
        if phi_p is None:
            phi_p = phi_n
        return Q * (self.p(psi, phi_p) - self.n(psi, phi_n)
                    - self.n_tail(psi, phi_n) + doping)

    def drho_dpsi(self, psi, phi_n=0.0, phi_p=None):
        """d(rho)/d(psi) [C/m^3/V] (for the Newton Jacobian)."""
        if phi_p is None:
            phi_p = phi_n
        n = self.n(psi, phi_n)
        p = self.p(psi, phi_p)
        x = (psi - phi_n - self.tail_offset) / self.vt_tail
        f = 1.0 / (1.0 + _bexp(-x))
        dtail = self.mat.tail_nt * f * (1.0 - f) / self.vt_tail
        return Q * (-(p + n) / self.vt - dtail)

    def builtin_potential(self, doping) -> np.ndarray:
        """Equilibrium potential of a doped region:
        ``Vt * asinh(N / 2 ni)`` (exact for Boltzmann statistics)."""
        return self.vt * np.arcsinh(np.asarray(doping) / (2.0 * self.ni))


def srh_recombination(n, p, ni, tau_n, tau_p=None):
    """Shockley-Read-Hall recombination rate [1/m^3/s] with midgap traps."""
    if tau_p is None:
        tau_p = tau_n
    n1 = p1 = ni
    return (n * p - ni ** 2) / (tau_p * (n + n1) + tau_n * (p + p1) + 1e-300)


def tdt_gamma(mat: Material, vt: float = KB_T) -> float:
    """Mobility-enhancement exponent implied by the tail-trap energy.

    Multiple-trapping / VRH transport in an exponential tail of
    characteristic temperature ``T_t`` gives a power-law carrier-density
    dependence with exponent ``~ T_t/T - 1``.
    """
    return float(np.clip(mat.tail_kt / vt - 1.0, 0.0, 1.5))


def tdt_mobility(mat: Material, sheet_charge, q_ref: float = 1e-3,
                 vt: float = KB_T):
    """Effective mobility [m^2/Vs] vs sheet charge [C/m^2].

    ``mu = mu_band * (Qs / q_ref)^gamma`` — the microscopic origin of the
    compact model's Eq. (1).
    """
    gamma = tdt_gamma(mat, vt)
    qs = np.maximum(np.asarray(sheet_charge, dtype=np.float64), 1e-12)
    return mat.mu_band * (qs / q_ref) ** gamma
