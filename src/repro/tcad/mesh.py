"""Rectilinear 2-D device mesh for planar TFT structures.

The mesh discretises a bottom-gate planar TFT cross-section::

        y ^
          |   source |   channel semiconductor   | drain      (t_semi)
          |   ------------------------------------------
          |              gate insulator                       (t_ox)
          |   ------------------------------------------
          |              gate metal                           (t_gate)
          +----------------------------------------------------> x

Nodes sit on grid points; each carries a material, a region label and a
doping value. Edges connect 4-neighbours; their geometric data (dx, dy,
distance) doubles as the FEM-inspired spatial relationship embedding of the
paper's Fig. 2 encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .materials import MATERIALS, Material, material

__all__ = ["Region", "DeviceMesh", "build_tft_mesh"]


class Region:
    """Region labels (stable integers used by the one-hot encoding)."""

    GATE = 0
    OXIDE = 1
    CHANNEL = 2
    SOURCE = 3
    DRAIN = 4

    NAMES = {GATE: "gate", OXIDE: "oxide", CHANNEL: "channel",
             SOURCE: "source", DRAIN: "drain"}
    COUNT = 5


@dataclass
class DeviceMesh:
    """A meshed device cross-section.

    Attributes
    ----------
    xs, ys:
        1-D grid coordinates [m] (lengths nx, ny).
    node_xy:
        (N, 2) node positions, row-major with x fastest.
    material_idx:
        (N,) material database indices.
    region:
        (N,) :class:`Region` labels.
    doping:
        (N,) net doping, donors positive [1/m^3].
    dirichlet_mask / dirichlet_kind:
        Electrical contacts; kind is "gate", "source" or "drain".
    edges:
        (2, E) directed edge list (both directions included).
    """

    xs: np.ndarray
    ys: np.ndarray
    node_xy: np.ndarray
    material_idx: np.ndarray
    region: np.ndarray
    doping: np.ndarray
    dirichlet_mask: np.ndarray
    dirichlet_kind: list
    edges: np.ndarray
    meta: dict = field(default_factory=dict)

    @property
    def nx(self) -> int:
        return len(self.xs)

    @property
    def ny(self) -> int:
        return len(self.ys)

    @property
    def num_nodes(self) -> int:
        return self.node_xy.shape[0]

    @property
    def num_edges(self) -> int:
        return self.edges.shape[1]

    def node_id(self, ix: int, iy: int) -> int:
        """Row-major node index (x fastest)."""
        return iy * self.nx + ix

    def materials(self) -> list[Material]:
        """Materials per node (database objects)."""
        by_index = {m.index: m for m in MATERIALS.values()}
        return [by_index[i] for i in self.material_idx]

    def edge_vectors(self) -> np.ndarray:
        """(E, 3) relative-position edge features: dx, dy, distance [m]."""
        src, dst = self.edges
        delta = self.node_xy[dst] - self.node_xy[src]
        dist = np.linalg.norm(delta, axis=1, keepdims=True)
        return np.concatenate([delta, dist], axis=1)

    def semiconductor_mask(self) -> np.ndarray:
        """Nodes belonging to the semiconductor film (channel + contacts)."""
        return np.isin(self.region,
                       [Region.CHANNEL, Region.SOURCE, Region.DRAIN])


def _grade(span: float, n: int) -> np.ndarray:
    """n grid points across [0, span]."""
    return np.linspace(0.0, span, n)


def build_tft_mesh(l_channel: float, l_overlap: float, t_semi: float,
                   t_ox: float, t_gate: float,
                   channel_material: str, oxide_material: str,
                   gate_material: str, contact_doping: float,
                   channel_doping: float = 0.0,
                   nx_channel: int = 13, nx_overlap: int = 4,
                   ny_semi: int = 5, ny_ox: int = 4,
                   ny_gate: int = 2) -> DeviceMesh:
    """Mesh a bottom-gate planar TFT.

    Parameters
    ----------
    l_channel, l_overlap:
        Channel length and source/drain overlap length [m].
    t_semi, t_ox, t_gate:
        Layer thicknesses [m].
    channel_material, oxide_material, gate_material:
        Database keys.
    contact_doping:
        Net doping in the source/drain regions (donors positive) [1/m^3].
    channel_doping:
        Net doping in the channel [1/m^3].
    nx_channel, nx_overlap, ny_semi, ny_ox, ny_gate:
        Resolution per section (total nx = nx_channel + 2*nx_overlap,
        ny = ny_gate + ny_ox + ny_semi, with shared interface rows merged).
    """
    ch = material(channel_material)
    ox = material(oxide_material)
    gm = material(gate_material)
    # x grid: overlap | channel | overlap (endpoint-shared)
    x_left = _grade(l_overlap, nx_overlap + 1)
    x_mid = _grade(l_channel, nx_channel + 1)[1:] + l_overlap
    x_right = _grade(l_overlap, nx_overlap + 1)[1:] + l_overlap + l_channel
    xs = np.concatenate([x_left, x_mid, x_right])
    # y grid: gate | oxide | semiconductor
    y_gate = _grade(t_gate, ny_gate + 1)
    y_ox = _grade(t_ox, ny_ox + 1)[1:] + t_gate
    y_semi = _grade(t_semi, ny_semi + 1)[1:] + t_gate + t_ox
    ys = np.concatenate([y_gate, y_ox, y_semi])
    nx, ny = len(xs), len(ys)

    xv, yv = np.meshgrid(xs, ys)               # (ny, nx)
    node_xy = np.stack([xv.ravel(), yv.ravel()], axis=1)

    region = np.empty(nx * ny, dtype=np.intp)
    mat_idx = np.empty(nx * ny, dtype=np.intp)
    doping = np.zeros(nx * ny)
    dirichlet = np.zeros(nx * ny, dtype=bool)
    kind = [""] * (nx * ny)

    y_ox_lo, y_ox_hi = t_gate, t_gate + t_ox
    x_src_hi = l_overlap
    x_drn_lo = l_overlap + l_channel
    eps = 1e-15
    for i, (x, y) in enumerate(node_xy):
        if y < y_ox_lo - eps:
            region[i] = Region.GATE
            mat_idx[i] = gm.index
            dirichlet[i] = True
            kind[i] = "gate"
        elif y < y_ox_hi - eps:
            region[i] = Region.OXIDE
            mat_idx[i] = ox.index
        else:
            mat_idx[i] = ch.index
            if x <= x_src_hi + eps:
                region[i] = Region.SOURCE
                doping[i] = contact_doping
            elif x >= x_drn_lo - eps:
                region[i] = Region.DRAIN
                doping[i] = contact_doping
            else:
                region[i] = Region.CHANNEL
                doping[i] = channel_doping
    # Top surface of the contacts is the ohmic terminal.
    top_row = ny - 1
    for ix in range(nx):
        i = top_row * nx + ix
        if region[i] == Region.SOURCE:
            dirichlet[i] = True
            kind[i] = "source"
        elif region[i] == Region.DRAIN:
            dirichlet[i] = True
            kind[i] = "drain"

    # 4-neighbour edges, both directions.
    src_list, dst_list = [], []
    for iy in range(ny):
        for ix in range(nx):
            a = iy * nx + ix
            if ix + 1 < nx:
                b = a + 1
                src_list += [a, b]
                dst_list += [b, a]
            if iy + 1 < ny:
                b = a + nx
                src_list += [a, b]
                dst_list += [b, a]
    edges = np.array([src_list, dst_list], dtype=np.intp)

    return DeviceMesh(
        xs=xs, ys=ys, node_xy=node_xy, material_idx=mat_idx, region=region,
        doping=doping, dirichlet_mask=dirichlet, dirichlet_kind=kind,
        edges=edges,
        meta={
            "l_channel": l_channel, "l_overlap": l_overlap,
            "t_semi": t_semi, "t_ox": t_ox, "t_gate": t_gate,
            "channel_material": channel_material,
            "oxide_material": oxide_material,
            "gate_material": gate_material,
            "contact_doping": contact_doping,
            "channel_doping": channel_doping,
        })
