"""Quasi-2D IV simulation: vertical electrostatics + charge-sheet drift.

For each channel quasi-Fermi level ``V`` a 1-D vertical Poisson solve gives
the induced sheet charge ``Qs(VG, V)``; the gradual-channel integral then
yields the drain current with the trap-limited (TDT/VRH) mobility::

    Id = (W/L) * Integral_0^VD  mu_eff(Qs(V)) * Qs(V)  dV

This is the physics the paper's IV predictor GNN learns to emulate, and the
origin of the compact model's Eq. (1) power law.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .device import PlanarTFT
from .materials import EPS0, KB_T, Q, material
from .physics import ChargeModel, tdt_mobility

__all__ = ["IVResult", "ChargeSheetIV"]


@dataclass
class IVResult:
    """An IV surface: currents over a (vg, vd) grid."""

    vgs: np.ndarray           # (G,)
    vds: np.ndarray           # (D,)
    ids: np.ndarray           # (G, D) drain current [A]
    device: PlanarTFT

    def at(self, vg: float, vd: float) -> float:
        """Current at a grid point (must be on the grid)."""
        gi = int(np.argmin(np.abs(self.vgs - vg)))
        di = int(np.argmin(np.abs(self.vds - vd)))
        return float(self.ids[gi, di])


class ChargeSheetIV:
    """Per-device IV engine (n-type; the sampler generates donor contacts).

    Parameters
    ----------
    device:
        Device specification (geometry + materials).
    n_quad:
        Quadrature points for the gradual-channel integral.
    lambda_cl:
        Channel-length-modulation factor applied as ``(1 + lambda*vd)``.
    """

    def __init__(self, device: PlanarTFT, n_quad: int = 17,
                 lambda_cl: float = 0.02, vt: float = KB_T):
        self.device = device
        self.n_quad = n_quad
        self.lambda_cl = lambda_cl
        self.vt = vt
        self._mat = material(device.channel_material)
        self._charge = ChargeModel(self._mat, vt=vt)
        self._build_grid()

    def _build_grid(self):
        d = self.device
        ox = material(d.oxide_material)
        gate = material(d.gate_material)
        n_ox, n_semi = 6, 8
        y_ox = np.linspace(0.0, d.t_ox, n_ox + 1)
        y_semi = np.linspace(0.0, d.t_semi, n_semi + 1)[1:] + d.t_ox
        ys = np.concatenate([y_ox, y_semi])
        self._ys = ys
        self._is_semi = ys > d.t_ox - 1e-15
        eps = np.where(self._is_semi, self._mat.eps_r, ox.eps_r) * EPS0
        # Interface node takes the semiconductor's permittivity; fluxes use
        # harmonic means so the oxide side is still ox-limited.
        d_y = np.diff(ys)
        e_pair = 2.0 * eps[:-1] * eps[1:] / (eps[:-1] + eps[1:])
        self._flux = e_pair / d_y                     # per unit area
        w = np.empty_like(ys)
        w[0] = d_y[0] / 2
        w[-1] = d_y[-1] / 2
        w[1:-1] = (d_y[:-1] + d_y[1:]) / 2
        self._w = w
        midgap_wf = self._mat.affinity + self._mat.bandgap / 2.0
        self._phi_ms = gate.work_function - midgap_wf

    # ------------------------------------------------------------------
    def sheet_charge(self, vg: float, vch: float,
                     max_iter: int = 80) -> float:
        """Induced sheet charge Qs [C/m^2] (mobile + tail-trapped).

        Solves the 1-D vertical Poisson equation with the gate at ``vg``
        and the channel quasi-Fermi level at ``vch``.
        """
        ys = self._ys
        m = len(ys)
        model = self._charge
        doping = self.device.channel_doping
        psi = np.full(m, vch + float(model.builtin_potential(doping)))
        psi_gate = vg - self._phi_ms
        psi[0] = psi_gate
        semi = self._is_semi
        flux = self._flux
        w = self._w
        for _ in range(max_iter):
            f = np.zeros(m)
            f[1:] += flux * (psi[:-1] - psi[1:])
            f[:-1] += flux * (psi[1:] - psi[:-1])
            rho = np.zeros(m)
            drho = np.zeros(m)
            rho[semi] = model.rho(psi[semi], doping, vch)
            drho[semi] = model.drho_dpsi(psi[semi], vch)
            f += rho * w
            jac = np.zeros((m, m))
            idx = np.arange(m - 1)
            jac[idx, idx] -= flux
            jac[idx, idx + 1] += flux
            jac[idx + 1, idx + 1] -= flux
            jac[idx + 1, idx] += flux
            jac[np.arange(m), np.arange(m)] += drho * w
            # Dirichlet at the gate node.
            f_free = f[1:]
            if np.abs(f_free).max() < 1e-12 * max(flux.max(), 1.0):
                break
            delta = np.linalg.solve(jac[1:, 1:], -f_free)
            psi[1:] += np.clip(delta, -1.0, 1.0)
        n_free = model.n(psi[semi], vch)
        n_trap = model.n_tail(psi[semi], vch)
        return float(Q * np.sum((n_free + n_trap) * w[semi]))

    def _qs_interpolator(self, vg: float, v_max: float):
        """Tabulate Qs(V) on [0, v_max] and return a linear interpolant."""
        v_pts = np.linspace(0.0, max(v_max, 1e-3), self.n_quad)
        qs = np.array([self.sheet_charge(vg, v) for v in v_pts])
        return v_pts, qs

    def ids(self, vg: float, vd: float) -> float:
        """Drain current [A] at one bias point."""
        d = self.device
        v_pts, qs = self._qs_interpolator(vg, vd)
        mu = tdt_mobility(self._mat, qs, vt=self.vt)
        integrand = mu * qs
        integral = float(np.trapezoid(integrand, v_pts)) if vd > 0 else 0.0
        current = (d.w / d.l_channel) * integral * (1.0 + self.lambda_cl * vd)
        return current

    def iv_surface(self, vgs, vds) -> IVResult:
        """Currents over the outer product of ``vgs`` and ``vds``."""
        vgs = np.asarray(vgs, dtype=np.float64)
        vds = np.asarray(vds, dtype=np.float64)
        out = np.zeros((len(vgs), len(vds)))
        for i, vg in enumerate(vgs):
            # One Qs table per vg covering the largest vd, reused per vd.
            v_pts, qs = self._qs_interpolator(vg, float(vds.max()))
            mu = tdt_mobility(self._mat, qs, vt=self.vt)
            integrand = mu * qs
            cumulative = np.concatenate(
                [[0.0], np.cumsum(np.diff(v_pts)
                                  * (integrand[:-1] + integrand[1:]) / 2.0)])
            for j, vd in enumerate(vds):
                val = float(np.interp(vd, v_pts, cumulative))
                out[i, j] = ((self.device.w / self.device.l_channel) * val
                             * (1.0 + self.lambda_cl * vd))
        return IVResult(vgs=vgs, vds=vds, ids=out, device=self.device)
