"""Nonlinear 2-D Poisson solver on the device mesh.

Finite-volume discretisation of ``div(eps grad psi) = -rho(psi)`` with
Dirichlet contacts (gate / source / drain) and Neumann outer boundaries,
solved by damped Newton iteration with a sparse Jacobian. This is the
"traditional TCAD" ground truth the paper's Poisson emulator learns to
replace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from .materials import EPS0, KB_T, MATERIALS, SEMICONDUCTOR
from .mesh import DeviceMesh, Region
from .physics import ChargeModel

__all__ = ["PoissonSolution", "PoissonSolver"]


@dataclass
class PoissonSolution:
    """Self-consistent electrostatic solution on a mesh."""

    psi: np.ndarray              # (N,) potential [V]
    n: np.ndarray                # (N,) electron density [1/m^3]
    p: np.ndarray                # (N,) hole density [1/m^3]
    phi_n: np.ndarray            # (N,) quasi-Fermi potential [V]
    converged: bool
    iterations: int
    residual: float
    vg: float
    vd: float


class PoissonSolver:
    """Newton solver for one meshed device.

    Geometry factors (flux coefficients, node volumes) are assembled once
    per mesh, so repeated bias points reuse the expensive part.
    """

    def __init__(self, mesh: DeviceMesh, vt: float = KB_T,
                 max_iter: int = 150, tol: float = 1e-9,
                 damp_clip: float = 1.0):
        self.mesh = mesh
        self.vt = vt
        self.max_iter = max_iter
        self.tol = tol
        self.damp_clip = damp_clip
        self._assemble_geometry()
        self._setup_charge()

    # ------------------------------------------------------------------
    def _assemble_geometry(self):
        mesh = self.mesh
        xs, ys = mesh.xs, mesh.ys
        nx, ny = mesh.nx, mesh.ny
        n_nodes = mesh.num_nodes
        by_index = {m.index: m for m in MATERIALS.values()}
        eps = np.array([by_index[i].eps_r for i in mesh.material_idx]) * EPS0

        # Half-widths of the dual (control-volume) cells.
        def half_steps(coords):
            d = np.diff(coords)
            left = np.concatenate([[0.0], d]) / 2.0
            right = np.concatenate([d, [0.0]]) / 2.0
            return left + right

        wx = half_steps(xs)          # control-volume width per column
        wy = half_steps(ys)          # control-volume height per row
        vol = np.outer(wy, wx).ravel()      # per unit depth [m^2]

        rows, cols, vals = [], [], []
        diag = np.zeros(n_nodes)

        def add_flux(a, b, coeff):
            rows.extend([a, a, b, b])
            cols.extend([a, b, b, a])
            vals.extend([-coeff, coeff, -coeff, coeff])

        for iy in range(ny):
            for ix in range(nx):
                a = iy * nx + ix
                if ix + 1 < nx:
                    b = a + 1
                    d = xs[ix + 1] - xs[ix]
                    e = 2.0 * eps[a] * eps[b] / (eps[a] + eps[b])
                    add_flux(a, b, e * wy[iy] / d)
                if iy + 1 < ny:
                    b = a + nx
                    d = ys[iy + 1] - ys[iy]
                    e = 2.0 * eps[a] * eps[b] / (eps[a] + eps[b])
                    add_flux(a, b, e * wx[ix] / d)

        lap = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(n_nodes, n_nodes))
        self._lap = lap                      # div(eps grad .) operator
        self._vol = vol
        self._scale = float(np.abs(lap.diagonal()).max())

    def _setup_charge(self):
        mesh = self.mesh
        by_index = {m.index: m for m in MATERIALS.values()}
        self._semi_mask = mesh.semiconductor_mask()
        # One ChargeModel per distinct semiconductor material on the mesh.
        self._charge_models = {}
        for idx in np.unique(mesh.material_idx[self._semi_mask]):
            self._charge_models[int(idx)] = ChargeModel(by_index[int(idx)],
                                                        vt=self.vt)
        ch_nodes = mesh.region == Region.CHANNEL
        if ch_nodes.any():
            ch_idx = int(mesh.material_idx[ch_nodes][0])
        else:
            ch_idx = int(mesh.material_idx[self._semi_mask][0])
        self._channel_model = self._charge_models[ch_idx]
        ch_mat = self._channel_model.mat
        self._phi_ms_offset = {}
        for kind in ("gate",):
            gm = by_index[int(mesh.material_idx[mesh.region == Region.GATE][0])]
            # Metal-semiconductor work function difference vs channel midgap.
            midgap_wf = ch_mat.affinity + ch_mat.bandgap / 2.0
            self._phi_ms_offset[kind] = gm.work_function - midgap_wf

    # ------------------------------------------------------------------
    def _quasi_fermi(self, vd: float) -> np.ndarray:
        """Quasi-Fermi potential per node: 0 in the source, vd in the
        drain, linear along the channel (above-threshold approximation)."""
        mesh = self.mesh
        phi = np.zeros(mesh.num_nodes)
        x = mesh.node_xy[:, 0]
        x0 = mesh.meta["l_overlap"]
        x1 = x0 + mesh.meta["l_channel"]
        frac = np.clip((x - x0) / max(x1 - x0, 1e-12), 0.0, 1.0)
        phi[:] = frac * vd
        phi[mesh.region == Region.SOURCE] = 0.0
        phi[mesh.region == Region.DRAIN] = vd
        return phi

    def _boundary_values(self, vg: float, vd: float) -> np.ndarray:
        mesh = self.mesh
        bc = np.zeros(mesh.num_nodes)
        model = self._channel_model
        for i in np.flatnonzero(mesh.dirichlet_mask):
            kind = mesh.dirichlet_kind[i]
            if kind == "gate":
                bc[i] = vg - self._phi_ms_offset["gate"]
            elif kind == "source":
                bc[i] = float(model.builtin_potential(mesh.doping[i]))
            elif kind == "drain":
                bc[i] = vd + float(model.builtin_potential(mesh.doping[i]))
        return bc

    def _charge_terms(self, psi, phi_n):
        """Space charge rho [C/m^3] and its psi-derivative, per node."""
        mesh = self.mesh
        rho = np.zeros(mesh.num_nodes)
        drho = np.zeros(mesh.num_nodes)
        for idx, model in self._charge_models.items():
            mask = self._semi_mask & (mesh.material_idx == idx)
            if not mask.any():
                continue
            rho[mask] = model.rho(psi[mask], mesh.doping[mask],
                                  phi_n[mask])
            drho[mask] = model.drho_dpsi(psi[mask], phi_n[mask])
        return rho, drho

    def _neutral_start(self, bc: np.ndarray, phi_n: np.ndarray) -> np.ndarray:
        """Initial guess: semiconductor nodes at their local charge-neutral
        potential, dielectric nodes from a Laplace interpolation.

        Starting in the neutral basin avoids the well-known ~Vt-per-step
        Newton crawl of exponential charge models.
        """
        mesh = self.mesh
        psi = np.array(bc)
        semi_vals = np.zeros(mesh.num_nodes)
        for idx, model in self._charge_models.items():
            mask = self._semi_mask & (mesh.material_idx == idx)
            semi_vals[mask] = (phi_n[mask]
                               + model.builtin_potential(mesh.doping[mask]))
        pinned = mesh.dirichlet_mask | self._semi_mask
        psi[self._semi_mask & ~mesh.dirichlet_mask] = \
            semi_vals[self._semi_mask & ~mesh.dirichlet_mask]
        free = ~pinned
        if free.any():
            lap_ff = self._lap[free][:, free]
            rhs = -self._lap[free][:, pinned] @ psi[pinned]
            psi[free] = spsolve(lap_ff.tocsc(), rhs)
        return psi

    def solve_ramped(self, vg: float, vd: float, steps: int = 4,
                     psi0: np.ndarray | None = None) -> PoissonSolution:
        """Continuation solve: ramp (vg, vd) from zero bias in ``steps``
        increments, warm-starting each from the previous solution."""
        sol = None
        psi = psi0
        for k in range(1, steps + 1):
            frac = k / steps
            sol = self.solve(vg * frac, vd * frac, psi0=psi)
            psi = sol.psi
        return sol

    # ------------------------------------------------------------------
    def solve(self, vg: float, vd: float,
              psi0: np.ndarray | None = None) -> PoissonSolution:
        """Solve for the bias point ``(vg, vd)``.

        Parameters
        ----------
        psi0:
            Warm-start potential (e.g. the previous bias point's solution).
        """
        mesh = self.mesh
        n_nodes = mesh.num_nodes
        fixed = mesh.dirichlet_mask
        free = ~fixed
        bc = self._boundary_values(vg, vd)
        phi_n = self._quasi_fermi(vd)

        if psi0 is not None:
            psi = np.array(psi0, dtype=float)
            psi[fixed] = bc[fixed]
        else:
            psi = self._neutral_start(bc, phi_n)

        lap = self._lap
        converged = False
        res_norm = np.inf
        it = 0
        for it in range(1, self.max_iter + 1):
            rho, drho = self._charge_terms(psi, phi_n)
            f_all = lap @ psi + rho * self._vol
            f = f_all[free]
            res_norm = float(np.abs(f).max()) / self._scale
            if res_norm < self.tol:
                converged = True
                break
            jac = (lap + sparse.diags(drho * self._vol)).tocsr()
            jac_ff = jac[free][:, free].tocsc()
            delta = spsolve(jac_ff, -f)
            # Potential-style damping keeps Newton stable with exp charge.
            step = np.clip(delta, -self.damp_clip, self.damp_clip)
            psi_new = psi.copy()
            psi_new[free] += step
            # Backtracking line search on the residual norm.
            shrink = 1.0
            for _ in range(8):
                rho_n, _ = self._charge_terms(psi_new, phi_n)
                f_new = (lap @ psi_new + rho_n * self._vol)[free]
                if np.abs(f_new).max() <= np.abs(f).max() * (1 - 1e-4 * shrink):
                    break
                shrink *= 0.5
                psi_new = psi.copy()
                psi_new[free] += step * shrink
            psi = psi_new

        n = np.zeros(n_nodes)
        p = np.zeros(n_nodes)
        for idx, model in self._charge_models.items():
            mask = self._semi_mask & (mesh.material_idx == idx)
            n[mask] = model.n(psi[mask], phi_n[mask])
            p[mask] = model.p(psi[mask], phi_n[mask])
        return PoissonSolution(psi=psi, n=n, p=p, phi_n=phi_n,
                               converged=converged, iterations=it,
                               residual=res_norm, vg=vg, vd=vd)
