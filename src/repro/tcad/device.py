"""Planar TFT device specifications and random sampling.

:class:`PlanarTFT` captures everything needed to mesh and simulate one
device; :class:`DeviceSampler` draws randomised devices the way the paper's
dataset was built (50,000 independent devices with varying geometry,
materials and bias) — the calibration study it cites used 576 planar CNT
devices with 2-D TCAD.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..utils.rng import make_rng
from .materials import SEMICONDUCTOR, material
from .mesh import DeviceMesh, build_tft_mesh

__all__ = ["PlanarTFT", "DeviceSampler", "SamplerRanges"]


@dataclass(frozen=True)
class PlanarTFT:
    """Geometry + materials of one planar bottom-gate TFT."""

    channel_material: str = "cnt"
    oxide_material: str = "sio2"
    gate_material: str = "al"
    l_channel: float = 10e-6
    l_overlap: float = 2e-6
    w: float = 50e-6
    t_semi: float = 50e-9
    t_ox: float = 100e-9
    t_gate: float = 50e-9
    contact_doping: float = 1e25      # donors positive
    channel_doping: float = 1e21
    nx_channel: int = 13
    nx_overlap: int = 4
    ny_semi: int = 5
    ny_ox: int = 4
    ny_gate: int = 2

    def __post_init__(self):
        ch = material(self.channel_material)
        if ch.kind != SEMICONDUCTOR:
            raise ValueError(f"{self.channel_material} is not a semiconductor")
        for name in ("l_channel", "l_overlap", "w", "t_semi", "t_ox",
                     "t_gate"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def polarity(self) -> str:
        """'n' if the contacts are donor-doped, else 'p'."""
        return "n" if self.contact_doping >= 0 else "p"

    def with_updates(self, **kwargs) -> "PlanarTFT":
        return replace(self, **kwargs)

    def mesh(self) -> DeviceMesh:
        """Build the finite-difference mesh for this device."""
        return build_tft_mesh(
            l_channel=self.l_channel, l_overlap=self.l_overlap,
            t_semi=self.t_semi, t_ox=self.t_ox, t_gate=self.t_gate,
            channel_material=self.channel_material,
            oxide_material=self.oxide_material,
            gate_material=self.gate_material,
            contact_doping=self.contact_doping,
            channel_doping=self.channel_doping,
            nx_channel=self.nx_channel, nx_overlap=self.nx_overlap,
            ny_semi=self.ny_semi, ny_ox=self.ny_ox, ny_gate=self.ny_gate)

    @property
    def cox(self) -> float:
        """Gate capacitance per area [F/m^2]."""
        from .materials import EPS0
        return EPS0 * material(self.oxide_material).eps_r / self.t_ox


@dataclass(frozen=True)
class SamplerRanges:
    """Uniform / log-uniform ranges for :class:`DeviceSampler`.

    The ``unseen`` split of Table II uses :meth:`shifted`, which widens the
    geometry ranges by 20 % so generalisation is tested on devices outside
    the training distribution.
    """

    l_channel: tuple = (2e-6, 30e-6)
    l_overlap: tuple = (0.5e-6, 4e-6)
    w: tuple = (10e-6, 200e-6)
    t_semi: tuple = (30e-9, 100e-9)
    t_ox: tuple = (50e-9, 300e-9)
    contact_doping: tuple = (1e24, 1e26)      # log-uniform
    channel_doping: tuple = (1e20, 5e21)      # log-uniform
    channel_materials: tuple = ("cnt", "igzo", "ltps", "a-si")
    oxide_materials: tuple = ("sio2", "hfo2", "al2o3")
    gate_materials: tuple = ("al", "au", "ito")
    vg: tuple = (-1.0, 4.0)
    vd: tuple = (0.05, 4.0)

    def shifted(self, factor: float = 1.2) -> "SamplerRanges":
        """Widen geometric ranges (out-of-distribution 'unseen' split)."""
        def widen(lo_hi):
            lo, hi = lo_hi
            return (lo / factor, hi * factor)

        return replace(self, l_channel=widen(self.l_channel),
                       t_semi=widen(self.t_semi), t_ox=widen(self.t_ox))


class DeviceSampler:
    """Draw random :class:`PlanarTFT` devices plus bias points."""

    def __init__(self, ranges: SamplerRanges | None = None,
                 seed: int | np.random.Generator = 0):
        self.ranges = ranges if ranges is not None else SamplerRanges()
        self.rng = make_rng(seed)

    def _uniform(self, lo_hi):
        lo, hi = lo_hi
        return float(self.rng.uniform(lo, hi))

    def _log_uniform(self, lo_hi):
        lo, hi = lo_hi
        return float(np.exp(self.rng.uniform(np.log(lo), np.log(hi))))

    def sample_device(self) -> PlanarTFT:
        """One random device specification."""
        r = self.ranges
        return PlanarTFT(
            channel_material=str(self.rng.choice(r.channel_materials)),
            oxide_material=str(self.rng.choice(r.oxide_materials)),
            gate_material=str(self.rng.choice(r.gate_materials)),
            l_channel=self._uniform(r.l_channel),
            l_overlap=self._uniform(r.l_overlap),
            w=self._uniform(r.w),
            t_semi=self._uniform(r.t_semi),
            t_ox=self._uniform(r.t_ox),
            contact_doping=self._log_uniform(r.contact_doping),
            channel_doping=self._log_uniform(r.channel_doping),
        )

    def sample_bias(self) -> tuple[float, float]:
        """One (vg, vd) bias point."""
        return self._uniform(self.ranges.vg), self._uniform(self.ranges.vd)

    def sample(self, n: int):
        """Yield ``n`` (device, vg, vd) tuples."""
        for _ in range(n):
            device = self.sample_device()
            vg, vd = self.sample_bias()
            yield device, vg, vd
