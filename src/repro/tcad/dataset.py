"""Dataset generation for the GNN TCAD surrogates (Table II).

For every sampled (device, bias) point the full physics is solved once and
two training samples are emitted:

* a **Poisson sample** — inputs: Fig. 2 encoding + self-consistent charge
  density; node-level target: electrostatic potential (normalised);
* an **IV sample** — inputs: encoding + charge density + potential;
  graph-level target: normalised log drain current.

The paper trains on 50,000 independent devices and evaluates an additional
32,000 *unseen* samples; sizes here are arguments (CI-scale by default) and
the unseen split draws from widened geometry ranges so it is genuinely
out-of-distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..utils.rng import make_rng
from .device import DeviceSampler, SamplerRanges
from .simulator import TCADSimulator

__all__ = ["TCADDataset", "TCADDatasetBuilder", "LOG_I_CENTER", "LOG_I_SCALE",
           "normalize_log_current", "denormalize_log_current"]

LOG_I_CENTER = -9.0
LOG_I_SCALE = 9.0
_I_FLOOR = 1e-18


def normalize_log_current(ids: float) -> float:
    """Map a drain current [A] to a ~[-1, 1] regression target."""
    return (np.log10(abs(ids) + _I_FLOOR) - LOG_I_CENTER) / LOG_I_SCALE


def denormalize_log_current(y: float) -> float:
    """Inverse of :func:`normalize_log_current` (returns amps)."""
    return 10.0 ** (np.asarray(y) * LOG_I_SCALE + LOG_I_CENTER)


@dataclass
class TCADDataset:
    """Paired Poisson / IV graph samples with the paper's split names."""

    poisson: dict = field(default_factory=dict)   # split -> [Graph]
    iv: dict = field(default_factory=dict)        # split -> [Graph]

    def sizes(self) -> dict:
        return {split: len(graphs) for split, graphs in self.poisson.items()}


class TCADDatasetBuilder:
    """Generate surrogate training data by running the physics solvers."""

    def __init__(self, seed: int = 0, ranges: SamplerRanges | None = None,
                 mesh_resolution: dict | None = None):
        # Imported here: repro.encoding depends on repro.tcad submodules,
        # so a module-level import would be circular.
        from ..encoding.device_encoding import DeviceEncoder
        self.seed = seed
        self.ranges = ranges if ranges is not None else SamplerRanges()
        self.mesh_resolution = mesh_resolution or {}
        self.simulator = TCADSimulator()
        self.poisson_encoder = DeviceEncoder(include_charge=True,
                                             include_potential=False)
        self.iv_encoder = DeviceEncoder(include_charge=True,
                                        include_potential=True)

    def _generate(self, n: int, sampler: DeviceSampler):
        poisson_graphs, iv_graphs = [], []
        produced = 0
        attempts = 0
        while produced < n and attempts < 4 * n + 20:
            attempts += 1
            device, vg, vd = next(iter(sampler.sample(1)))
            if self.mesh_resolution:
                device = device.with_updates(**self.mesh_resolution)
            try:
                sol = self.simulator.simulate_point(device, vg, vd)
            except Exception:
                continue
            if not sol.poisson.converged:
                continue
            from ..encoding.device_encoding import PSI_SCALE
            psi_target = sol.poisson.psi[:, None] / PSI_SCALE
            pg = self.poisson_encoder.encode(
                sol.mesh, vg, vd, charge=sol.poisson.n, y=psi_target,
                target_level="node")
            ig = self.iv_encoder.encode(
                sol.mesh, vg, vd, charge=sol.poisson.n, psi=sol.poisson.psi,
                y=np.array([normalize_log_current(sol.ids)]),
                target_level="graph")
            ig.meta["ids"] = sol.ids
            poisson_graphs.append(pg)
            iv_graphs.append(ig)
            produced += 1
        return poisson_graphs, iv_graphs

    def build(self, n_train: int, n_val: int, n_test: int,
              n_unseen: int = 0) -> TCADDataset:
        """Generate all splits.

        train/val/test share the sampling distribution (paper's 50k pool);
        ``unseen`` uses widened geometry ranges (paper's extra 32k samples).
        """
        dataset = TCADDataset()
        base_rng = make_rng(self.seed)
        sampler = DeviceSampler(self.ranges, seed=base_rng)
        for split, count in (("train", n_train), ("val", n_val),
                             ("test", n_test)):
            pg, ig = self._generate(count, sampler)
            dataset.poisson[split] = pg
            dataset.iv[split] = ig
        if n_unseen > 0:
            unseen_sampler = DeviceSampler(self.ranges.shifted(),
                                           seed=make_rng(self.seed + 991))
            pg, ig = self._generate(n_unseen, unseen_sampler)
            dataset.poisson["unseen"] = pg
            dataset.iv["unseen"] = ig
        return dataset
