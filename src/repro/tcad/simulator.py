"""TCAD simulator facade: one entry point for Poisson and IV simulation.

Wraps :class:`~repro.tcad.poisson.PoissonSolver` and
:class:`~repro.tcad.iv.ChargeSheetIV` behind a device-level API and records
wall-clock per task so the STCO runtime ledger can compare the "traditional"
path against the GNN surrogates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.timing import TimingRecord, timed
from .device import PlanarTFT
from .iv import ChargeSheetIV, IVResult
from .mesh import DeviceMesh
from .poisson import PoissonSolution, PoissonSolver

__all__ = ["TCADSimulator", "DeviceSolution"]


@dataclass
class DeviceSolution:
    """Everything the dataset builder needs for one (device, bias) point."""

    device: PlanarTFT
    mesh: DeviceMesh
    poisson: PoissonSolution
    ids: float
    vg: float
    vd: float


class TCADSimulator:
    """Simulate planar TFT devices with the full (non-surrogate) physics."""

    def __init__(self):
        self.timing = TimingRecord()

    def solve_poisson(self, device: PlanarTFT, vg: float,
                      vd: float) -> tuple[DeviceMesh, PoissonSolution]:
        """2-D self-consistent electrostatics at one bias point."""
        with timed(self.timing, "poisson"):
            mesh = device.mesh()
            solver = PoissonSolver(mesh)
            sol = solver.solve(vg, vd)
            if not sol.converged:
                sol = solver.solve_ramped(vg, vd, steps=4)
        return mesh, sol

    def simulate_iv(self, device: PlanarTFT, vgs, vds) -> IVResult:
        """Quasi-2D IV surface over a bias grid."""
        with timed(self.timing, "iv"):
            engine = ChargeSheetIV(device)
            return engine.iv_surface(np.atleast_1d(vgs), np.atleast_1d(vds))

    def simulate_point(self, device: PlanarTFT, vg: float,
                       vd: float) -> DeviceSolution:
        """Full solution at one bias: 2-D fields plus the drain current."""
        mesh, sol = self.solve_poisson(device, vg, vd)
        with timed(self.timing, "iv"):
            ids = ChargeSheetIV(device).ids(vg, vd)
        return DeviceSolution(device=device, mesh=mesh, poisson=sol,
                              ids=ids, vg=vg, vd=vd)
