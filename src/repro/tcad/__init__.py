"""2-D TCAD substrate: materials, meshing, Poisson, quasi-2D IV, datasets.

Stands in for the commercial TCAD the paper used (calibrated to 576 planar
CNT devices): a finite-volume nonlinear Poisson solver plus a charge-sheet
drift IV engine over a material database covering CNT, IGZO, LTPS and a-Si.
"""

from .materials import (Material, MATERIALS, material, material_names,
                        SEMICONDUCTOR, INSULATOR, METAL, EPS0, Q, KB_T)
from .mesh import Region, DeviceMesh, build_tft_mesh
from .device import PlanarTFT, DeviceSampler, SamplerRanges
from .physics import ChargeModel, srh_recombination, tdt_mobility, tdt_gamma
from .poisson import PoissonSolver, PoissonSolution
from .iv import ChargeSheetIV, IVResult
from .simulator import TCADSimulator, DeviceSolution
from .dataset import (TCADDataset, TCADDatasetBuilder, normalize_log_current,
                      denormalize_log_current, LOG_I_CENTER, LOG_I_SCALE)

__all__ = [
    "Material", "MATERIALS", "material", "material_names",
    "SEMICONDUCTOR", "INSULATOR", "METAL", "EPS0", "Q", "KB_T",
    "Region", "DeviceMesh", "build_tft_mesh",
    "PlanarTFT", "DeviceSampler", "SamplerRanges",
    "ChargeModel", "srh_recombination", "tdt_mobility", "tdt_gamma",
    "PoissonSolver", "PoissonSolution",
    "ChargeSheetIV", "IVResult",
    "TCADSimulator", "DeviceSolution",
    "TCADDataset", "TCADDatasetBuilder", "normalize_log_current",
    "denormalize_log_current", "LOG_I_CENTER", "LOG_I_SCALE",
]
