"""Material database for the TCAD substrate.

Each :class:`Material` carries the electrostatic and transport parameters
the Poisson / IV solvers need, plus the fixed one-hot index used by the
unified device encoding (Fig. 2 material-level embedding). Parameter values
are literature-grade for the emerging technologies the paper targets (CNT
network films, IGZO, LTPS) plus conventional references (a-Si, poly-Si) and
the dielectrics / metals that complete a planar TFT stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Material", "MATERIALS", "material", "material_names",
           "SEMICONDUCTOR", "INSULATOR", "METAL", "EPS0", "Q", "KB_T"]

# Physical constants (SI, T = 300 K)
EPS0 = 8.8541878128e-12     # F/m
Q = 1.602176634e-19         # C
KB_T = 0.02585              # eV at 300 K (thermal voltage in volts)

SEMICONDUCTOR = "semiconductor"
INSULATOR = "insulator"
METAL = "metal"


@dataclass(frozen=True)
class Material:
    """Physical parameters of one material.

    Attributes
    ----------
    name:
        Database key.
    kind:
        ``semiconductor``, ``insulator`` or ``metal``.
    index:
        Stable one-hot position in the encoding.
    eps_r:
        Relative permittivity.
    bandgap:
        Bandgap [eV] (0 for metals).
    affinity:
        Electron affinity [eV].
    nc, nv:
        Effective conduction / valence band DOS [1/m^3].
    mu_band:
        Band (free-carrier) mobility [m^2/Vs].
    tail_nt:
        Tail-distributed-trap density [1/m^3] (drives the VRH/TDT mobility
        enhancement the compact model's gamma captures).
    tail_kt:
        Characteristic tail energy [eV].
    tau_srh:
        SRH lifetime [s] (recombination in the IV solver).
    work_function:
        For metals, the work function [eV]; 0 otherwise.
    """

    name: str
    kind: str
    index: int
    eps_r: float
    bandgap: float = 0.0
    affinity: float = 0.0
    nc: float = 0.0
    nv: float = 0.0
    mu_band: float = 0.0
    tail_nt: float = 0.0
    tail_kt: float = 0.035
    tau_srh: float = 1e-7
    work_function: float = 0.0

    @property
    def ni(self) -> float:
        """Intrinsic carrier density [1/m^3] (0 for non-semiconductors)."""
        if self.kind != SEMICONDUCTOR or self.nc <= 0:
            return 0.0
        return float(np.sqrt(self.nc * self.nv)
                     * np.exp(-self.bandgap / (2 * KB_T)))

    def param_vector(self) -> np.ndarray:
        """Material-level parameter embedding (Fig. 2): normalised physical
        properties and physics-model parameters (SRH, tail traps)."""
        log = lambda v: np.log10(v) if v > 0 else 0.0
        return np.array([
            self.eps_r / 25.0,
            self.bandgap / 3.0,
            self.affinity / 5.0,
            log(self.nc) / 30.0,
            log(self.mu_band * 1e4) / 4.0,     # cm^2/Vs scale
            log(self.tail_nt) / 30.0,
            self.tail_kt / 0.1,
            log(self.tau_srh / 1e-9) / 6.0,
            self.work_function / 6.0,
        ])


#: Parameter-vector length (kept in sync with Material.param_vector).
PARAM_VECTOR_LEN = 9

_DB = [
    # Emerging channel materials (the paper's focus)
    Material("cnt", SEMICONDUCTOR, 0, eps_r=5.0, bandgap=0.6, affinity=4.5,
             nc=5e25, nv=5e25, mu_band=40e-4, tail_nt=5e24, tail_kt=0.045,
             tau_srh=5e-8),
    Material("igzo", SEMICONDUCTOR, 1, eps_r=10.0, bandgap=3.1, affinity=4.16,
             nc=5e24, nv=5e24, mu_band=15e-4, tail_nt=2e25, tail_kt=0.06,
             tau_srh=1e-7),
    Material("ltps", SEMICONDUCTOR, 2, eps_r=11.7, bandgap=1.12, affinity=4.05,
             nc=2.8e25, nv=1.04e25, mu_band=100e-4, tail_nt=8e24,
             tail_kt=0.03, tau_srh=1e-7),
    Material("a-si", SEMICONDUCTOR, 3, eps_r=11.8, bandgap=1.7, affinity=3.9,
             nc=2.5e26, nv=2.5e26, mu_band=1e-4, tail_nt=1e26, tail_kt=0.05,
             tau_srh=1e-8),
    # Dielectrics
    Material("sio2", INSULATOR, 4, eps_r=3.9, bandgap=9.0, affinity=0.9),
    Material("hfo2", INSULATOR, 5, eps_r=22.0, bandgap=5.8, affinity=2.0),
    Material("al2o3", INSULATOR, 6, eps_r=9.0, bandgap=6.5, affinity=1.0),
    # Electrodes
    Material("al", METAL, 7, eps_r=1.0, work_function=4.1),
    Material("au", METAL, 8, eps_r=1.0, work_function=5.1),
    Material("ito", METAL, 9, eps_r=4.0, work_function=4.7),
]

MATERIALS: dict[str, Material] = {m.name: m for m in _DB}
NUM_MATERIALS = len(_DB)


def material(name: str) -> Material:
    """Look up a material by name."""
    try:
        return MATERIALS[name]
    except KeyError:
        raise ValueError(f"unknown material {name!r}; "
                         f"available: {sorted(MATERIALS)}") from None


def material_names() -> list[str]:
    """All database keys in one-hot index order."""
    return [m.name for m in sorted(_DB, key=lambda m: m.index)]
