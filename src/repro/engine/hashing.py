"""Stable content hashing for cache keys.

Every digest here is derived from a canonical JSON rendering (sorted
keys, floats via ``repr``) fed through SHA-256 — never Python's builtin
``hash``, whose string seed changes per process. That makes keys stable
across interpreter runs and across the worker processes of the parallel
executor, which is what lets the on-disk cache be shared between
campaigns and machines.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

__all__ = ["canonicalize", "stable_hash", "array_digest",
           "model_fingerprint", "netlist_fingerprint", "EvalKey"]


def canonicalize(obj):
    """Reduce ``obj`` to JSON-able primitives with a stable rendering.

    Floats are rendered via ``repr`` (shortest round-trip form), numpy
    scalars/arrays via their Python equivalents, dicts with sorted keys.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return canonicalize(obj.item())
    if isinstance(obj, np.ndarray):
        return [canonicalize(v) for v in obj.tolist()]
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in sorted(
            obj.items(), key=lambda kv: str(kv[0]))}
    if hasattr(obj, "key"):
        return canonicalize(obj.key())
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for "
                    "hashing; give it a .key() method or pass primitives")


def stable_hash(obj, length: int = 16) -> str:
    """Hex digest of the canonical JSON rendering of ``obj``."""
    payload = json.dumps(canonicalize(obj), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:length]


def array_digest(arrays, length: int = 16) -> str:
    """Digest of raw array bytes (shape-aware, order-sensitive)."""
    h = hashlib.sha256()
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        h.update(str(arr.shape).encode())
        h.update(str(arr.dtype).encode())
        h.update(arr.tobytes())
    return h.hexdigest()[:length]


def model_fingerprint(model, length: int = 16) -> str:
    """Version token for a trained model: architecture + exact weights.

    Any retraining (different data, seed, epochs) changes the weights and
    hence the fingerprint, so stale cached libraries are never reused for
    a newer model.
    """
    state = model.state_dict()
    h = hashlib.sha256()
    for name in sorted(state):
        h.update(name.encode())
        h.update(array_digest([state[name]], length=64).encode())
    return h.hexdigest()[:length]


def netlist_fingerprint(netlist, length: int = 16) -> str:
    """Structural digest of a gate netlist (instances, pins, IO)."""
    instances = [(inst.name, inst.cell, sorted(inst.pins.items()))
                 for inst in netlist.instances.values()]
    return stable_hash({
        "name": netlist.name,
        "clock": netlist.clock,
        "inputs": list(netlist.primary_inputs),
        "outputs": list(netlist.primary_outputs),
        "instances": sorted(instances),
    }, length=length)


class EvalKey:
    """Content-addressed key for one evaluation (or one library build).

    ``kind`` separates namespaces ("lib" for corner → library,
    "eval" for corner × design × weights → full record); the remaining
    parts are stable tokens of everything that influences the output.
    """

    __slots__ = ("kind", "parts", "digest")

    def __init__(self, kind: str, **parts):
        self.kind = kind
        self.parts = parts
        self.digest = stable_hash({"kind": kind, **parts}, length=32)

    def __hash__(self):
        return hash(self.digest)

    def __eq__(self, other):
        return isinstance(other, EvalKey) and self.digest == other.digest

    def __repr__(self):
        return f"EvalKey({self.kind}, {self.digest[:12]}…)"
