"""Content-addressed memoization: in-memory LRU + optional disk tier.

The cache is keyed on :class:`~repro.engine.hashing.EvalKey` digests, so
a hit means "the exact same (corner, builder config, model weights)
combination was characterized before" — whether earlier in this process,
by another worker, or in a previous campaign that persisted its cache
directory. Disk entries are pickled under ``<dir>/<digest>.pkl`` and
written atomically (temp file + rename) so concurrent workers never
observe a torn entry.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from .hashing import EvalKey

__all__ = ["CacheStats", "LRUCache", "DiskCache", "EvaluationCache"]

_MISS = object()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache tier."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "evictions": self.evictions,
                "hit_rate": self.hit_rate}


class LRUCache:
    """Bounded in-memory cache with least-recently-used eviction."""

    def __init__(self, capacity: int = 256):
        self.capacity = int(capacity)
        self._data: OrderedDict = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, digest: str) -> bool:
        return digest in self._data

    def get(self, digest: str, default=None):
        if digest not in self._data:
            self.stats.misses += 1
            return default
        self._data.move_to_end(digest)
        self.stats.hits += 1
        return self._data[digest]

    def put(self, digest: str, value) -> None:
        if self.capacity <= 0:
            return
        if digest in self._data:
            self._data.move_to_end(digest)
        self._data[digest] = value
        self.stats.puts += 1
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._data.clear()


class DiskCache:
    """Pickle-per-entry persistent cache under one directory.

    ``max_bytes`` bounds the total size of the directory's entries:
    after every write, least-recently-used entries (by mtime — reads
    touch their entry, so a hot corner never ages out under a cold
    sweep) are deleted until the tier fits. ``None`` keeps the
    historical unbounded behavior.
    """

    def __init__(self, directory: str | Path,
                 max_bytes: int | None = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive or None, "
                             f"got {max_bytes}")
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    def path(self, digest: str) -> Path:
        return self.directory / f"{digest}.pkl"

    def __contains__(self, digest: str) -> bool:
        return self.path(digest).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    def get(self, digest: str, default=None):
        path = self.path(digest)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except Exception:
            # A cache entry that cannot load — truncated file, or a
            # stale pickle referencing since-renamed classes/fields from
            # an older version — is a miss, never an error: the caller
            # just re-characterizes and overwrites it.
            self.stats.misses += 1
            return default
        if self.max_bytes is not None:
            # Touch the entry so size eviction is LRU, not FIFO.
            try:
                os.utime(path)
            except OSError:
                pass
        self.stats.hits += 1
        return value

    def put(self, digest: str, value) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self.path(digest))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        if self.max_bytes is not None:
            self._evict_to_fit(keep=self.path(digest))

    def size_bytes(self) -> int:
        """Total bytes held by this tier's entries."""
        total = 0
        for path in self.directory.glob("*.pkl"):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def _evict_to_fit(self, keep: Path | None = None) -> None:
        """Delete oldest-mtime entries until the tier fits ``max_bytes``.

        The just-written entry (``keep``) is never evicted — even when a
        single entry exceeds the budget, the cache must still serve it
        for the current run; it becomes eviction fodder on the next put.
        """
        entries = []
        for path in self.directory.glob("*.pkl"):
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        for _, size, path in sorted(entries):
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            self.stats.evictions += 1
            total -= size
            if total <= self.max_bytes:
                return

    def clear(self) -> None:
        for path in self.directory.glob("*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass


class _NullLock:
    """Stand-in lock so the unlocked path stays branch-free."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class EvaluationCache:
    """Two-tier cache: LRU in front of an optional persistent directory.

    ``get`` promotes disk hits into memory; ``put`` writes through to
    both tiers. With ``directory=None`` this degrades to a plain LRU.

    A third, optional tier sits behind both: a **fetcher** installed
    via :meth:`set_fetcher` (the cluster layer's peer-borrow hook). On
    a miss in both local tiers, ``get`` asks the fetcher for the entry
    — outside the cache lock, because the fetcher may do network I/O
    and must not stall concurrent gets or metric scrapes — and
    installs a non-``None`` answer through both local tiers, so the
    borrow is paid exactly once. Borrow traffic is tallied in
    ``borrows`` / ``borrow_misses`` (surfaced by :meth:`stats`).

    ``name`` opts the cache into process metrics: tier movement is
    mirrored into the registry's
    ``repro_engine_cache_events_total{cache,tier,event}`` counters —
    derived exactly from the per-tier :class:`CacheStats` deltas, so the
    exported numbers always agree with :meth:`stats`. The mirroring is
    lazy: get/put only bump the plain-int stats they always did, and a
    scrape-time collector (:meth:`flush_metrics`, run before every
    registry snapshot/render) folds the movement into the counters —
    the hot warm-hit path pays nothing for metrics. ``lock`` (shared
    with the owning engine) makes get/put atomic against concurrent
    counter snapshots.
    """

    def __init__(self, capacity: int = 256,
                 directory: str | Path | None = None,
                 max_bytes: int | None = None,
                 name: str | None = None, lock=None):
        self.memory = LRUCache(capacity)
        self.disk = (DiskCache(directory, max_bytes=max_bytes)
                     if directory is not None else None)
        self._lock = lock if lock is not None else _NullLock()
        self._fetcher = None
        self.borrows = 0               # fetcher answered a local miss
        self.borrow_misses = 0         # fetcher asked, had nothing
        self._metric = None
        self._name = name
        self._children: dict = {}
        self._flushed: dict = {}       # tier -> last mark pushed
        self._flush_lock = threading.Lock()
        if name is not None:
            from ..obs.metrics import get_registry
            registry = get_registry()
            self._metric = registry.counter(
                "repro_engine_cache_events_total",
                "Engine cache tier events (hit/miss/put/eviction)",
                labels=("cache", "tier", "event"))
            # The collector must not pin the cache alive in the
            # process-wide registry; it unregisters itself once the
            # cache is gone.
            ref = weakref.ref(self)

            def _collect():
                cache = ref()
                if cache is None:
                    registry.remove_collector(_collect)
                else:
                    cache.flush_metrics()

            registry.add_collector(_collect)

    def _child(self, tier: str, event: str):
        # Memoize the eight possible children on first use.
        child = self._children.get((tier, event))
        if child is None:
            child = self._children[(tier, event)] = self._metric.labels(
                cache=self._name, tier=tier, event=event)
        return child

    @staticmethod
    def _mark(stats: CacheStats) -> tuple:
        return (stats.hits, stats.misses, stats.puts, stats.evictions)

    def flush_metrics(self) -> None:
        """Fold :class:`CacheStats` movement since the last flush into
        the registry counters. Runs at scrape time (registry collector);
        ``_flush_lock`` serializes concurrent scrapers so no delta is
        counted twice, and the marks are read under the cache lock so a
        mid-``get`` update can't tear them."""
        if self._metric is None:
            return
        with self._flush_lock:
            with self._lock:
                marks = [("memory", self._mark(self.memory.stats))]
                if self.disk is not None:
                    marks.append(("disk", self._mark(self.disk.stats)))
            for tier, now in marks:
                before = self._flushed.get(tier, (0, 0, 0, 0))
                for event, b, a in zip(
                        ("hit", "miss", "put", "eviction"), before, now):
                    if a > b:
                        self._child(tier, event).inc(a - b)
                self._flushed[tier] = now

    def set_fetcher(self, fetcher) -> None:
        """Install (or clear, with ``None``) the miss-fallback hook:
        ``fetcher(digest) -> value | None``. Called outside the cache
        lock; any network failure must come back as ``None``."""
        self._fetcher = fetcher

    def get(self, key: EvalKey, default=None):
        digest = key.digest if isinstance(key, EvalKey) else key
        with self._lock:
            value = self.memory.get(digest, _MISS)
            if value is not _MISS:
                return value
            if self.disk is not None:
                value = self.disk.get(digest, _MISS)
                if value is not _MISS:
                    self.memory.put(digest, value)
                    return value
            fetcher = self._fetcher
        if fetcher is not None:
            value = fetcher(digest)
            if value is not None:
                # A borrowed hit is installed through both local tiers
                # (the "disk-cache install"): the next request — this
                # process or a restart — never asks the peer again.
                with self._lock:
                    self.borrows += 1
                    self.memory.put(digest, value)
                    if self.disk is not None:
                        self.disk.put(digest, value)
                return value
            with self._lock:
                self.borrow_misses += 1
        return default

    def put(self, key: EvalKey, value) -> None:
        digest = key.digest if isinstance(key, EvalKey) else key
        with self._lock:
            self.memory.put(digest, value)
            if self.disk is not None:
                self.disk.put(digest, value)

    def __contains__(self, key) -> bool:
        digest = key.digest if isinstance(key, EvalKey) else key
        return digest in self.memory or (
            self.disk is not None and digest in self.disk)

    def clear(self) -> None:
        self.memory.clear()
        if self.disk is not None:
            self.disk.clear()

    def stats(self) -> dict:
        out = {"memory": self.memory.stats.as_dict()}
        if self.disk is not None:
            out["disk"] = self.disk.stats.as_dict()
        if self._fetcher is not None or self.borrows \
                or self.borrow_misses:
            out["peer"] = {"borrows": self.borrows,
                           "borrow_misses": self.borrow_misses}
        return out
