"""Campaign orchestration: (benchmark × weights × agent) scenario sweeps.

A :class:`Campaign` runs many STCO explorations against **one shared
engine**, so every scenario amortizes the others' characterizations: two
agents exploring the same design space hit the same corners, and a second
campaign pointed at the same ``cache_dir`` re-characterizes nothing.

Progress is checkpointed to JSON after every scenario (atomic replace),
keyed by a content hash of the campaign configuration — rerunning the
same campaign resumes where it stopped, while any change to the builder,
space or scenario list invalidates the checkpoint instead of silently
mixing results. Checkpoints additionally record the config schema
version (:data:`repro.api.config.SCHEMA_VERSION`); a checkpoint written
under a *different* schema — where the same scenario fields may mean
different things — raises :class:`CampaignCheckpointError` instead of
being silently reinterpreted.

The STCO layer is imported lazily to keep the package import DAG acyclic
(``repro.stco`` itself builds on :mod:`repro.engine`).

.. deprecated::
    Construct campaigns declaratively: a ``mode="campaign"``
    :class:`repro.api.StcoConfig` run through :func:`repro.api.run`
    builds this class internally. Direct construction keeps working but
    emits a ``DeprecationWarning``.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from .engine import EngineConfig, EvaluationEngine
from .hashing import stable_hash
from .records import PPAWeights

__all__ = ["Scenario", "ScenarioResult", "CampaignReport", "Campaign",
           "CampaignCheckpointError", "sweep_scenarios"]

_CHECKPOINT_VERSION = 1


class CampaignCheckpointError(RuntimeError):
    """A checkpoint exists but cannot be safely resumed."""


@dataclass(frozen=True)
class Scenario:
    """One exploration: a benchmark, a PPA trade-off, an agent, a seed.

    ``agent`` names any strategy in the
    :func:`repro.search.optimizers.make_optimizer` registry: the
    historical ``qlearning`` / ``random`` / ``grid``, plus ``anneal``,
    ``evolution``, ``nsga2``, ``surrogate`` and ``portfolio``.
    """

    benchmark: str
    agent: str = "qlearning"
    seed: int = 0
    iterations: int = 12
    weights: tuple = (1.0, 1.0, 0.5)    # (power, performance, area)

    def ppa_weights(self) -> PPAWeights:
        power, performance, area = self.weights
        return PPAWeights(power=power, performance=performance, area=area)

    def scenario_id(self) -> str:
        return stable_hash({"benchmark": self.benchmark, "agent": self.agent,
                            "seed": self.seed,
                            "iterations": self.iterations,
                            "weights": list(self.weights)})

    def label(self) -> str:
        weights = ",".join(f"{w:g}" for w in self.weights)
        return (f"{self.benchmark}/{self.agent}"
                f"(seed={self.seed}, iters={self.iterations},"
                f" w={weights})")

    def to_dict(self) -> dict:
        return {"benchmark": self.benchmark, "agent": self.agent,
                "seed": self.seed, "iterations": self.iterations,
                "weights": list(self.weights)}

    @staticmethod
    def from_dict(d: dict) -> "Scenario":
        return Scenario(benchmark=d["benchmark"], agent=d["agent"],
                        seed=int(d["seed"]),
                        iterations=int(d["iterations"]),
                        weights=tuple(d["weights"]))


def sweep_scenarios(benchmarks, agents=("qlearning",), seeds=(0,),
                    weights_list=((1.0, 1.0, 0.5),),
                    iterations: int = 12) -> list:
    """Cartesian scenario grid over benchmarks × agents × seeds × weights."""
    return [Scenario(benchmark=b, agent=a, seed=s, iterations=iterations,
                     weights=tuple(w))
            for b in benchmarks for a in agents for s in seeds
            for w in weights_list]


@dataclass
class ScenarioResult:
    """One scenario's outcome (JSON round-trippable for checkpoints)."""

    scenario: Scenario
    best_corner: tuple
    best_reward: float
    best_ppa: dict
    evaluations: int
    runtime_s: float
    charlib_s: float                # library build time inside this scenario
    flow_s: float                   # system-flow time inside this scenario
    history_rewards: list = field(default_factory=list)
    resumed: bool = False           # restored from checkpoint, not re-run
    pareto_front: list = field(default_factory=list)
    hypervolume: float = 0.0
    evaluations_to_optimum: int = 0

    def to_dict(self) -> dict:
        return {"scenario": self.scenario.to_dict(),
                "best_corner": list(self.best_corner),
                "best_reward": self.best_reward,
                "best_ppa": dict(self.best_ppa),
                "evaluations": self.evaluations,
                "runtime_s": self.runtime_s,
                "charlib_s": self.charlib_s,
                "flow_s": self.flow_s,
                "history_rewards": list(self.history_rewards),
                "pareto_front": list(self.pareto_front),
                "hypervolume": self.hypervolume,
                "evaluations_to_optimum": self.evaluations_to_optimum}

    @staticmethod
    def from_dict(d: dict, resumed: bool = False) -> "ScenarioResult":
        return ScenarioResult(
            scenario=Scenario.from_dict(d["scenario"]),
            best_corner=tuple(d["best_corner"]),
            best_reward=float(d["best_reward"]),
            best_ppa=dict(d["best_ppa"]),
            evaluations=int(d["evaluations"]),
            runtime_s=float(d["runtime_s"]),
            charlib_s=float(d["charlib_s"]),
            flow_s=float(d["flow_s"]),
            history_rewards=list(d["history_rewards"]),
            resumed=resumed,
            # Absent in pre-search checkpoints; default rather than
            # invalidate them.
            pareto_front=list(d.get("pareto_front", [])),
            hypervolume=float(d.get("hypervolume", 0.0)),
            evaluations_to_optimum=int(d.get("evaluations_to_optimum", 0)))


@dataclass
class CampaignReport:
    """Everything one campaign run produced."""

    results: list
    engine_stats: dict
    total_runtime_s: float
    resumed_scenarios: int = 0

    def best(self) -> ScenarioResult | None:
        return max(self.results, key=lambda r: r.best_reward,
                   default=None)

    def pareto_fronts(self) -> dict:
        """Per-benchmark non-dominated fronts merged across scenarios.

        Every scenario contributes its archive (different agents and
        PPA weightings explore different regions), so the merged front
        is the campaign's actual multi-objective outcome — the
        trade-off surface, not just each scalarisation's winner.
        """
        from ..search.pareto import non_dominated
        by_benchmark: dict = {}
        for r in self.results:
            by_benchmark.setdefault(r.scenario.benchmark,
                                    []).extend(r.pareto_front)
        out = {}
        for benchmark, entries in by_benchmark.items():
            unique = {}
            for e in entries:
                unique.setdefault(tuple(e["corner"]), e)
            entries = list(unique.values())
            vectors = [(e["power_w"], e["delay_s"], e["area_um2"])
                       for e in entries]
            out[benchmark] = [entries[i] for i in non_dominated(vectors)]
        return out

    def ledger(self):
        """A :class:`repro.stco.runtime.RuntimeLedger` view of the sweep.

        Per benchmark, the mean per-iteration characterization and
        system-evaluation times across scenarios are recorded as the
        fast-path :class:`~repro.stco.runtime.IterationTiming`.
        """
        from ..stco.runtime import IterationTiming, RuntimeLedger
        ledger = RuntimeLedger()
        by_benchmark: dict = {}
        for r in self.results:
            by_benchmark.setdefault(r.scenario.benchmark, []).append(r)
        for benchmark, results in by_benchmark.items():
            iters = max(sum(r.scenario.iterations for r in results), 1)
            ledger.record(benchmark, IterationTiming(
                charlib_s=sum(r.charlib_s for r in results) / iters,
                system_eval_s=sum(r.flow_s for r in results) / iters))
        return ledger

    def summary_rows(self) -> list:
        return [[r.scenario.label(),
                 str(r.best_corner), f"{r.best_reward:.3f}",
                 str(r.evaluations),
                 "resume" if r.resumed else f"{r.runtime_s:.2f}s"]
                for r in self.results]


class Campaign:
    """Sweep scenarios through one shared evaluation engine.

    Parameters
    ----------
    builder:
        Library builder shared by every scenario (its fingerprint keys
        the caches, so campaigns with the same builder share work).
    scenarios:
        List of :class:`Scenario` (see :func:`sweep_scenarios`).
    space:
        Design space explored by every scenario (default: the 45-point
        grid from :func:`repro.stco.space.default_space`).
    engine / engine_config:
        Pass an existing engine to share caches with other campaigns, or
        a config for the campaign to build its own.
    checkpoint_path:
        JSON file written after every scenario; an existing, matching
        checkpoint makes ``run()`` skip completed scenarios.
    prefetch:
        Characterize the whole design space up-front through the
        engine's backend/batcher before any agent runs. RL agents
        request corners one at a time, so this is what lets a parallel
        or batched engine actually amortize characterization across a
        campaign; with the serial default it merely reorders work.
    """

    def __init__(self, builder, scenarios, space=None,
                 engine: EvaluationEngine | None = None,
                 engine_config: EngineConfig | None = None,
                 checkpoint_path: str | Path | None = None,
                 prefetch: bool = False):
        warnings.warn(
            "Campaign is superseded by the declarative API: a "
            "mode='campaign' repro.api.StcoConfig run through "
            "repro.api.run(config, workspace) builds this class "
            "internally. Direct construction keeps working "
            "(bit-identical under fixed seeds).",
            DeprecationWarning, stacklevel=2)
        self.builder = builder
        self.scenarios = list(scenarios)
        self.space = space
        self.engine = engine if engine is not None else EvaluationEngine(
            builder, engine_config)
        self.checkpoint_path = (Path(checkpoint_path)
                                if checkpoint_path is not None else None)
        self.prefetch = prefetch

    def _space(self):
        if self.space is None:
            from ..stco.space import default_space
            self.space = default_space()
        return self.space

    def fingerprint(self) -> str:
        """Identity of this campaign: builder + design space.

        Deliberately excludes the scenario list, so extending a campaign
        with new scenarios still resumes the already-completed ones
        (results are keyed per scenario id inside the checkpoint).
        """
        space = self._space()
        if hasattr(space, "vdd_scales"):
            # DesignSpace: keep the historical layout so existing
            # checkpoints stay valid.
            desc = {"vdd": list(space.vdd_scales),
                    "vth": list(space.vth_shifts),
                    "cox": list(space.cox_scales)}
        else:
            desc = {"axes": [[a.name, list(a.values), a.lo, a.hi,
                              a.step] for a in space.axes]}
        return stable_hash({
            "builder": self.engine.builder_fingerprint(),
            "space": desc,
        })

    # -- checkpointing ------------------------------------------------------
    def _load_checkpoint(self) -> dict:
        path = self.checkpoint_path
        if path is None or not path.exists():
            return {}
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return {}
        from ..api.config import SCHEMA_VERSION
        found = data.get("config_schema", SCHEMA_VERSION)
        if found != SCHEMA_VERSION:
            # A schema change can alter what the recorded scenario
            # fields *mean*; resuming would mix results computed under
            # different interpretations. Refuse loudly — a stale
            # builder/space fingerprint (below) merely re-runs, because
            # there the stored rows are simply unusable, not ambiguous.
            raise CampaignCheckpointError(
                f"checkpoint {path} was written under config schema "
                f"{found}, but this library uses schema "
                f"{SCHEMA_VERSION}; delete the checkpoint, or disable "
                f"resuming (run(resume=False) / `repro run "
                f"--no-resume`), to start fresh instead of mixing "
                f"results across schemas")
        if (data.get("version") != _CHECKPOINT_VERSION
                or data.get("campaign") != self.fingerprint()):
            return {}
        return dict(data.get("completed", {}))

    def _write_checkpoint(self, completed: dict) -> None:
        path = self.checkpoint_path
        if path is None:
            return
        from ..api.config import SCHEMA_VERSION
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": _CHECKPOINT_VERSION,
                   "config_schema": SCHEMA_VERSION,
                   "campaign": self.fingerprint(),
                   "completed": completed}
        from ..utils.io import atomic_write_json
        atomic_write_json(path, payload, sort_keys=False)

    # -- execution ----------------------------------------------------------
    def _make_optimizer(self, scenario: Scenario):
        from ..search.optimizers import make_optimizer
        return make_optimizer(scenario.agent, self._space(),
                              seed=scenario.seed,
                              weights=scenario.ppa_weights(),
                              builder=self.builder)

    def _run_scenario(self, scenario: Scenario) -> ScenarioResult:
        from ..api.runner import execute_search
        from ..eda.benchmarks import build_benchmark
        netlist = build_benchmark(scenario.benchmark)
        optimizer = self._make_optimizer(scenario)
        execution = execute_search(netlist, optimizer, self.engine,
                                   scenario.ppa_weights(),
                                   scenario.iterations)
        result = execution.result
        return ScenarioResult(
            scenario=scenario,
            best_corner=result.best_corner,
            best_reward=result.best_reward,
            best_ppa=result.best_record.result.ppa(),
            evaluations=result.evaluations,
            runtime_s=execution.runtime_s,
            charlib_s=execution.charlib_s,
            flow_s=execution.flow_s,
            history_rewards=list(result.rewards),
            pareto_front=result.pareto_front,
            hypervolume=result.hypervolume,
            evaluations_to_optimum=result.evaluations_to_optimum)

    def run(self, resume: bool = True) -> CampaignReport:
        """Run (or resume) every scenario; checkpoint after each one."""
        completed = self._load_checkpoint() if resume else {}
        results = []
        resumed = 0
        t0 = time.perf_counter()
        todo = {s.scenario_id() for s in self.scenarios} - set(completed)
        if self.prefetch and todo:
            self.engine.libraries(self._space().points())
        for scenario in self.scenarios:
            sid = scenario.scenario_id()
            if sid in completed:
                results.append(ScenarioResult.from_dict(completed[sid],
                                                        resumed=True))
                resumed += 1
                continue
            result = self._run_scenario(scenario)
            results.append(result)
            completed[sid] = result.to_dict()
            self._write_checkpoint(completed)
        return CampaignReport(results=results,
                              engine_stats=self.engine.stats(),
                              total_runtime_s=time.perf_counter() - t0,
                              resumed_scenarios=resumed)
