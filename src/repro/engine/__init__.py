"""Parallel evaluation engine with content-addressed caching.

The subsystem that turns corner evaluation into a first-class service:

* :mod:`~repro.engine.hashing` — stable content hashes (corner × builder
  config × model weights) usable across processes and campaigns;
* :mod:`~repro.engine.cache` — in-memory LRU + optional on-disk tier;
* :mod:`~repro.engine.executor` — serial / thread / process backends
  with deterministic result ordering;
* :mod:`~repro.engine.batching` — packed GNN characterization across
  cells and corners;
* :mod:`~repro.engine.engine` — the :class:`EvaluationEngine` funnel
  (result cache → library cache → batcher → executor);
* :mod:`~repro.engine.campaign` — (benchmark × weights × agent) sweeps
  with JSON checkpoint/resume over one shared engine.
"""

from .records import PPAWeights, EvaluationRecord
from .hashing import (canonicalize, stable_hash, array_digest,
                      model_fingerprint, netlist_fingerprint, EvalKey)
from .cache import CacheStats, LRUCache, DiskCache, EvaluationCache
from .executor import (SerialBackend, ThreadPoolBackend, ProcessPoolBackend,
                       get_backend, available_workers)
from .batching import BatchedGNNCharacterizer
from .engine import EngineConfig, EvaluationEngine
from .campaign import (Scenario, ScenarioResult, CampaignReport, Campaign,
                       CampaignCheckpointError, sweep_scenarios)

__all__ = [
    "PPAWeights", "EvaluationRecord",
    "canonicalize", "stable_hash", "array_digest", "model_fingerprint",
    "netlist_fingerprint", "EvalKey",
    "CacheStats", "LRUCache", "DiskCache", "EvaluationCache",
    "SerialBackend", "ThreadPoolBackend", "ProcessPoolBackend",
    "get_backend", "available_workers",
    "BatchedGNNCharacterizer",
    "EngineConfig", "EvaluationEngine",
    "Scenario", "ScenarioResult", "CampaignReport", "Campaign",
    "CampaignCheckpointError", "sweep_scenarios",
]
