"""Pluggable execution backends for batch corner evaluation.

A backend maps a picklable task function over a list of payloads and
returns results in **input order**, whatever the completion order — the
property the engine relies on for reproducible campaign trajectories.

* :class:`SerialBackend` — in-process loop, zero overhead, the default.
* :class:`ThreadPoolBackend` — threads; suited to work that releases
  the GIL (numpy-heavy flows). The engine keeps GNN characterization
  out of thread pools — model inference toggles process-global
  autograd state — and threads only the independent system flows.
* :class:`ProcessPoolBackend` — ``multiprocessing`` pool; wins for the
  CPU-bound SPICE/flow work on multi-core machines (workers get their
  own copy of the builder, so no shared mutable state).

Backends are addressable by spec string (``"serial"``, ``"process"``,
``"process:4"``, ``"thread:8"``) so campaign configs stay JSON-able.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor

__all__ = ["SerialBackend", "ThreadPoolBackend", "ProcessPoolBackend",
           "get_backend", "available_workers"]


def available_workers() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:          # non-Linux
        return multiprocessing.cpu_count()


class SerialBackend:
    """Evaluate tasks one by one in the calling process."""

    name = "serial"
    workers = 1

    def map(self, fn, payloads) -> list:
        return [fn(p) for p in payloads]

    def shutdown(self) -> None:
        pass

    def __repr__(self):
        return "SerialBackend()"


class ThreadPoolBackend:
    """Thread pool; results are reordered back to input order."""

    name = "thread"

    def __init__(self, workers: int | None = None):
        self.workers = workers if workers else available_workers()
        self._pool: ThreadPoolExecutor | None = None

    def _ensure(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, fn, payloads) -> list:
        payloads = list(payloads)
        if len(payloads) <= 1:
            return [fn(p) for p in payloads]
        return list(self._ensure().map(fn, payloads))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self):
        return f"ThreadPoolBackend(workers={self.workers})"


class ProcessPoolBackend:
    """``multiprocessing.Pool`` over picklable payloads.

    ``Pool.map`` already returns results in input order regardless of
    which worker finished first, giving deterministic result ordering.
    The pool is created lazily (first ``map``) and kept warm across
    calls so repeated sweeps don't pay fork+import each time.
    """

    name = "process"

    def __init__(self, workers: int | None = None):
        self.workers = workers if workers else available_workers()
        self._pool = None

    def _ensure(self):
        if self._pool is None:
            self._pool = multiprocessing.get_context("fork" if hasattr(
                os, "fork") else "spawn").Pool(self.workers)
        return self._pool

    def map(self, fn, payloads) -> list:
        payloads = list(payloads)
        if len(payloads) <= 1 or self.workers <= 1:
            return [fn(p) for p in payloads]
        chunk = max(1, len(payloads) // (self.workers * 4))
        return self._ensure().map(fn, payloads, chunksize=chunk)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __del__(self):
        try:
            self.shutdown()
        except Exception:
            pass

    def __repr__(self):
        return f"ProcessPoolBackend(workers={self.workers})"


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadPoolBackend,
    "process": ProcessPoolBackend,
}


def get_backend(spec):
    """Resolve a backend instance from a spec string or pass one through.

    Specs: ``"serial"``, ``"thread"``, ``"process"``, optionally with a
    worker count suffix — ``"process:4"``.
    """
    if not isinstance(spec, str):
        return spec
    name, _, count = spec.partition(":")
    if name not in _BACKENDS:
        raise ValueError(f"unknown backend {name!r}; "
                         f"expected one of {sorted(_BACKENDS)}")
    cls = _BACKENDS[name]
    if name == "serial":
        return cls()
    if not count:
        return cls()
    try:
        workers = int(count)
    except ValueError:
        raise ValueError(f"invalid worker count in backend spec "
                         f"{spec!r}; expected e.g. '{name}:4'") from None
    return cls(workers)
