"""Batched GNN characterization: many corners, one forward pass per metric.

The serial :meth:`GNNLibraryBuilder.build` runs ~5 small forward passes
per cell per corner (grid, caps, base, seq). For a K-corner sweep over C
cells that is ``5·K·C`` passes of a handful of graphs each — dominated by
Python/layer overhead rather than arithmetic. This module gathers every
graph that every (cell, corner) pair needs, concatenates them into large
block-diagonal batches (bounded by ``max_graphs_per_batch``), runs one
chunked forward pass per metric, and scatters the predictions back into
per-cell slots before assembling the libraries.

Numerically the predictions agree with the serial path to floating-point
round-off (BLAS may reduce differently for different batch shapes), which
is why the engine keeps the serial path as the bit-identical default and
treats batching as an opt-in accelerator.
"""

from __future__ import annotations

import time

import numpy as np

__all__ = ["BatchedGNNCharacterizer"]


class BatchedGNNCharacterizer:
    """Packs characterization inference across cells and corners.

    Parameters
    ----------
    builder:
        A :class:`~repro.charlib.fastchar.GNNLibraryBuilder` (provides
        the plan / assemble stages and the trained model).
    max_graphs_per_batch:
        Upper bound on graphs per forward pass, to cap peak memory on
        very large sweeps.
    """

    def __init__(self, builder, max_graphs_per_batch: int = 1024):
        from ..obs.metrics import get_registry
        self.builder = builder
        self.max_graphs_per_batch = int(max_graphs_per_batch)
        self.last_runtime_s = 0.0
        self.last_forward_passes = 0
        self._m_occupancy = get_registry().histogram(
            "repro_engine_batch_graphs",
            "Graphs packed per batched forward pass",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
                     2048, 4096))

    def _predict_chunked(self, graphs, metric: str) -> np.ndarray:
        builder = self.builder
        norm = builder.dataset.normalizers[metric]
        outs = []
        for start in range(0, len(graphs), self.max_graphs_per_batch):
            chunk = graphs[start:start + self.max_graphs_per_batch]
            outs.append(builder.model.predict(chunk, metric))
            self.last_forward_passes += 1
            self._m_occupancy.observe(len(chunk))
        return norm.denormalize(np.concatenate(outs))

    def build_many(self, corners) -> list:
        """Characterize every corner; returns libraries in corner order."""
        builder = self.builder
        corners = list(corners)
        metrics = builder.metrics_present()
        start = time.perf_counter()
        self.last_forward_passes = 0

        # Plan every (corner, cell) pair and gather prediction requests.
        plans = []                      # (corner, cornered, [(name, plan, preds)])
        requests = {}                   # metric -> [(preds_dict, slot, graphs)]
        for corner in corners:
            cornered = builder.corner_technology(corner)
            per_cell = []
            for name in builder.cells:
                plan = builder.plan_cell(name, cornered)
                preds: dict = {}
                per_cell.append((name, plan, preds))
                for slot, metric, graphs in plan.slots(metrics):
                    requests.setdefault(metric, []).append(
                        (preds, slot, graphs))
            plans.append((corner, cornered, per_cell))

        # One chunked forward pass per metric over the concatenation.
        for metric, reqs in requests.items():
            flat = [g for _, _, graphs in reqs for g in graphs]
            values = self._predict_chunked(flat, metric)
            offset = 0
            for preds, slot, graphs in reqs:
                preds[slot] = values[offset:offset + len(graphs)]
                offset += len(graphs)

        # Assemble libraries in input corner order.
        libraries = []
        for corner, cornered, per_cell in plans:
            lib = builder.new_library(corner, cornered)
            for name, plan, preds in per_cell:
                lib.cells[name] = builder.assemble_cell(plan, preds,
                                                        cornered)
            libraries.append(lib)
        self.last_runtime_s = time.perf_counter() - start
        builder.last_runtime_s = self.last_runtime_s
        return libraries
