"""The evaluation engine: cache → batcher → executor, one front door.

:class:`EvaluationEngine` turns corner evaluation into a schedulable,
cacheable service. Every request flows through the same funnel:

1. **result cache** — (builder, corner, design, weights) already
   evaluated? Return the record (memory hit, or promoted from disk).
2. **library cache** — corner already characterized for this builder?
   Reuse the library, skip characterization entirely.
3. **batcher** — remaining GNN characterizations are packed into large
   forward passes (opt-in, see :mod:`repro.engine.batching`).
4. **executor** — remaining full evaluations fan out over the configured
   backend (serial / thread / process pool) with input-order results.

The default configuration (serial backend, per-cell characterization,
in-memory cache) reproduces the historical serial path bit-for-bit;
parallelism, batching and disk persistence are opt-in knobs.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from dataclasses import dataclass, replace

from ..eda.flow import evaluate_system
from ..obs.metrics import get_registry
from ..obs.trace import span
from ..utils.timing import TimingRecord
from .batching import BatchedGNNCharacterizer
from .cache import EvaluationCache
from .executor import ProcessPoolBackend, SerialBackend, get_backend
from .hashing import EvalKey, netlist_fingerprint, stable_hash
from .records import EvaluationRecord, PPAWeights

__all__ = ["EngineConfig", "EvaluationEngine"]


@dataclass
class EngineConfig:
    """Engine behavior knobs (all defaults preserve seed behavior)."""

    backend: object = "serial"          # spec string or backend instance
    cache_capacity: int = 512           # in-memory LRU entries per tier
    cache_dir: object = None            # persistence root (str/Path/None)
    cache_results: bool = True          # cache full evaluation records
    batch_characterization: bool = False
    max_graphs_per_batch: int = 1024
    cache_max_bytes: int | None = None  # per disk tier; None = unbounded


def _flatten_counters(stats: dict, prefix: str = "") -> dict:
    """Dotted-path view of the numeric counters in a stats tree.

    Derived ratios (``hit_rate``) and non-numeric leaves are excluded so
    the result is safe to subtract snapshot-from-snapshot.
    """
    flat = {}
    for key, value in stats.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten_counters(value, f"{path}."))
        elif isinstance(value, bool) or key == "hit_rate":
            continue
        elif isinstance(value, (int, float)):
            flat[path] = value
    return flat


def _build_library_task(payload):
    """Worker task: characterize one corner (library only, no flow)."""
    builder, corner = payload
    library = builder.build(corner)
    return library, getattr(builder, "last_runtime_s", 0.0)


def _evaluate_corner_task(payload):
    """Worker task: (build library if needed) + system flow + score.

    Module-level so it pickles into pool workers; returns the library so
    the parent process can populate its caches.
    """
    builder, library, netlist, corner, weights = payload
    lib_rt = 0.0
    if library is None:
        library = builder.build(corner)
        lib_rt = getattr(builder, "last_runtime_s", 0.0)
    t0 = time.perf_counter()
    result = evaluate_system(netlist, library)
    flow_rt = time.perf_counter() - t0
    record = EvaluationRecord(corner=corner, result=result,
                              reward=weights.score(result),
                              library_runtime_s=lib_rt,
                              flow_runtime_s=flow_rt)
    return library, record


class EvaluationEngine:
    """Parallel, cached corner-evaluation service around one builder."""

    def __init__(self, builder, config: EngineConfig | None = None):
        self.builder = builder
        self.config = config if config is not None else EngineConfig()
        self.backend = get_backend(self.config.backend)
        cap = self.config.cache_capacity
        root = self.config.cache_dir
        max_bytes = self.config.cache_max_bytes
        # One reentrant lock makes every counter mutation — the engine's
        # own tallies and both caches' CacheStats — atomic against
        # snapshot()/delta() readers, so a bracketed window taken by a
        # concurrent serve worker can never tear mid-update.
        self._counter_lock = threading.RLock()
        self.library_cache = EvaluationCache(
            cap, None if root is None else f"{root}/libraries",
            max_bytes=max_bytes, name="library",
            lock=self._counter_lock)
        self.result_cache = EvaluationCache(
            cap, None if root is None else f"{root}/results",
            max_bytes=max_bytes, name="result",
            lock=self._counter_lock)
        self.characterizations = 0      # corners actually characterized
        self.flow_evaluations = 0       # system flows actually run
        self.timing = TimingRecord()
        registry = get_registry()
        self._m_characterizations = registry.counter(
            "repro_engine_characterizations_total",
            "Corners actually characterized (cache misses)")
        self._m_flow_evaluations = registry.counter(
            "repro_engine_flow_evaluations_total",
            "System flows actually run (result-cache misses)")
        self._m_evaluations = registry.counter(
            "repro_engine_evaluations_total",
            "Corner evaluations requested, by cache outcome",
            labels=("outcome",))
        self._m_executor = registry.histogram(
            "repro_engine_executor_seconds",
            "Executor batch latency by stage",
            labels=("stage",))
        # Hot-path children bound once; label resolution per call is
        # measurable against a warm all-hit sweep.
        self._m_eval_hit = self._m_evaluations.labels(outcome="hit")
        self._m_eval_miss = self._m_evaluations.labels(outcome="miss")
        self._m_eval_dup = self._m_evaluations.labels(
            outcome="duplicate")
        self._builder_fp = None
        # Weakly keyed so a long-lived shared engine does not pin every
        # netlist it ever evaluated in memory.
        self._netlist_fps = weakref.WeakKeyDictionary()
        self._record_listeners = []

    # -- record stream -------------------------------------------------------
    def add_record_listener(self, listener) -> None:
        """Subscribe ``listener(netlist, records)`` to every evaluation.

        Called once per :meth:`evaluate_many` with the full, input-order
        record list — cache hits included, so a listener building a
        training corpus (see
        :class:`repro.surrogate.records.RecordHarvester`) sees warm
        traffic too and can dedupe by content instead of missing it.
        Listener exceptions propagate: a corrupted harvest must fail
        loudly, not silently drop rows.
        """
        if listener not in self._record_listeners:
            self._record_listeners.append(listener)

    def remove_record_listener(self, listener) -> None:
        """Unsubscribe; unknown listeners are ignored (idempotent)."""
        try:
            self._record_listeners.remove(listener)
        except ValueError:
            pass

    # -- keys --------------------------------------------------------------
    def builder_fingerprint(self) -> str:
        if self._builder_fp is None:
            fp = getattr(self.builder, "fingerprint", None)
            if callable(fp):
                self._builder_fp = fp()
            else:
                # No content fingerprint: fall back to a random identity
                # token unique to this builder *instance* (id() alone
                # would be reusable across processes and could alias a
                # persistent disk cache onto a differently configured
                # builder). Consequence: fingerprint-less builders never
                # share cache entries — in-process, across processes, or
                # across runs — so they get correctness, not reuse.
                self._builder_fp = stable_hash(
                    [type(self.builder).__qualname__,
                     os.urandom(16).hex()])
        return self._builder_fp

    def _netlist_fp(self, netlist) -> str:
        fp = self._netlist_fps.get(netlist)
        if fp is None:
            fp = netlist_fingerprint(netlist)
            self._netlist_fps[netlist] = fp
        return fp

    def library_key(self, corner) -> EvalKey:
        return EvalKey("lib", builder=self.builder_fingerprint(),
                       corner=corner.key())

    def evaluation_key(self, netlist, corner, weights) -> EvalKey:
        return EvalKey("eval", builder=self.builder_fingerprint(),
                       corner=corner.key(),
                       design=self._netlist_fp(netlist),
                       weights=weights.key())

    # -- library characterization -----------------------------------------
    def library(self, corner):
        """One corner's characterized library (cached)."""
        return self.libraries([corner])[0]

    def libraries(self, corners) -> list:
        """Libraries for every corner, characterizing only cache misses."""
        return self._libraries_with_times(list(corners))[0]

    def _libraries_with_times(self, corners):
        """Libraries plus per-corner build seconds (0.0 for cache hits).

        Duplicate corners within one call are characterized once.
        """
        libs = [None] * len(corners)
        times = [0.0] * len(corners)
        missing, first_at, dup_of = [], {}, {}
        for i, corner in enumerate(corners):
            lib = self.library_cache.get(self.library_key(corner))
            if lib is not None:
                libs[i] = lib
                continue
            key = corner.key()
            if key in first_at:
                dup_of[i] = first_at[key]
            else:
                first_at[key] = i
                missing.append(i)
        if missing:
            t0 = time.perf_counter()
            with span("engine.characterize", corners=len(missing)):
                built, built_times = self._characterize(
                    [corners[i] for i in missing])
            elapsed = time.perf_counter() - t0
            self.timing.add("characterization", elapsed)
            self._m_executor.labels(stage="characterization") \
                .observe(elapsed)
            for i, lib, secs in zip(missing, built, built_times):
                libs[i] = lib
                times[i] = secs
                self.library_cache.put(self.library_key(corners[i]), lib)
        for i, j in dup_of.items():
            libs[i] = libs[j]
        return libs, times

    def _characterize(self, corners):
        with self._counter_lock:
            self.characterizations += len(corners)
        self._m_characterizations.inc(len(corners))
        if (self.config.batch_characterization
                and hasattr(self.builder, "plan_cell")
                and len(corners) > 1):
            batcher = BatchedGNNCharacterizer(
                self.builder, self.config.max_graphs_per_batch)
            libs = batcher.build_many(corners)
            per = batcher.last_runtime_s / max(len(corners), 1)
            return libs, [per] * len(corners)
        if isinstance(self.backend, ProcessPoolBackend) and len(corners) > 1:
            results = self.backend.map(
                _build_library_task,
                [(self.builder, corner) for corner in corners])
            return [lib for lib, _ in results], [t for _, t in results]
        libs, times = [], []
        for corner in corners:
            libs.append(self.builder.build(corner))
            times.append(getattr(self.builder, "last_runtime_s", 0.0))
        return libs, times

    # -- full evaluations ---------------------------------------------------
    def evaluate(self, netlist, corner,
                 weights: PPAWeights | None = None) -> EvaluationRecord:
        """Evaluate one corner on one design (cache-through)."""
        return self.evaluate_many(netlist, [corner], weights)[0]

    def evaluate_many(self, netlist, corners,
                      weights: PPAWeights | None = None) -> list:
        """Evaluate corners in input order, reusing every cache tier."""
        weights = weights if weights is not None else PPAWeights()
        corners = list(corners)
        total0 = time.perf_counter()
        out = [None] * len(corners)
        missing, first_at, dup_of = [], {}, {}
        with span("engine.evaluate_many", corners=len(corners)) as sp:
            for i, corner in enumerate(corners):
                key = self.evaluation_key(netlist, corner, weights)
                record = (self.result_cache.get(key)
                          if self.config.cache_results else None)
                if record is not None:
                    out[i] = replace(record, cached=True)
                    continue
                # Duplicate corners in one call are evaluated once.
                if key.digest in first_at:
                    dup_of[i] = first_at[key.digest]
                else:
                    first_at[key.digest] = i
                    missing.append(i)
            if missing:
                self._evaluate_missing(netlist, corners, weights,
                                       missing, out)
            for i, j in dup_of.items():
                out[i] = out[j]
            sp.annotate(misses=len(missing))
        hits = len(corners) - len(missing) - len(dup_of)
        if hits:
            self._m_eval_hit.inc(hits)
        if missing:
            self._m_eval_miss.inc(len(missing))
        if dup_of:
            self._m_eval_dup.inc(len(dup_of))
        self.timing.add("evaluate_many", time.perf_counter() - total0)
        for listener in list(self._record_listeners):
            listener(netlist, out)
        return out

    def _evaluate_missing(self, netlist, corners, weights, missing, out):
        batching = (self.config.batch_characterization
                    and hasattr(self.builder, "plan_cell"))
        full_fanout = (isinstance(self.backend, ProcessPoolBackend)
                       and not batching)
        miss_corners = [corners[i] for i in missing]
        if not full_fanout:
            # Characterize first (batched when enabled), then flow each.
            # Serial: identical call structure to the historical loop.
            # Threads: builds stay in this thread — the GNN inference
            # path toggles process-global autograd state and per-builder
            # timing, neither thread-safe — and only the independent,
            # read-only system flows fan out over the pool. A process
            # pool with batching enabled also lands here: the packed
            # forward passes happen once in this process, and only the
            # flows fan out (shipping libraries, not the builder).
            libs, lib_times = self._libraries_with_times(miss_corners)
            payloads = [(None, lib, netlist, corner, weights)
                        for lib, corner in zip(libs, miss_corners)]
            t0 = time.perf_counter()
            with span("engine.executor", stage="system_flow",
                      backend=self.backend.name, tasks=len(payloads)):
                results = self.backend.map(_evaluate_corner_task,
                                           payloads)
            elapsed = time.perf_counter() - t0
            self.timing.add("system_flow", elapsed)
            self._m_executor.labels(stage="system_flow").observe(elapsed)
            records = []
            for (lib, record), secs in zip(results, lib_times):
                record.library_runtime_s = secs
                records.append(record)
        else:
            # Fan the full (characterize + flow) evaluations out across
            # processes; corners whose library is already cached ship the
            # library instead of the builder so workers skip
            # characterization. Payload pickling is bounded: Pool.map
            # serializes each *chunk* of tasks as one object, so the
            # shared builder reference is pickled once per chunk (about
            # 4 x workers times per sweep), not once per corner.
            payloads = []
            for corner in miss_corners:
                lib = self.library_cache.get(self.library_key(corner))
                if lib is not None:
                    payloads.append((None, lib, netlist, corner, weights))
                else:
                    with self._counter_lock:
                        self.characterizations += 1
                    self._m_characterizations.inc()
                    payloads.append((self.builder, None, netlist, corner,
                                     weights))
            t0 = time.perf_counter()
            with span("engine.executor", stage="parallel_evaluate",
                      backend=self.backend.name, tasks=len(payloads)):
                results = self.backend.map(_evaluate_corner_task,
                                           payloads)
            elapsed = time.perf_counter() - t0
            self.timing.add("parallel_evaluate", elapsed)
            self._m_executor.labels(stage="parallel_evaluate") \
                .observe(elapsed)
            records = []
            for (lib, record), payload, corner in zip(results, payloads,
                                                      miss_corners):
                if payload[1] is None:   # freshly characterized only —
                    # re-putting cache hits would re-pickle every library
                    # to disk on each warm sweep.
                    self.library_cache.put(self.library_key(corner), lib)
                records.append(record)
        # One lock block for the tally and the puts it implies, so a
        # concurrent snapshot never sees flows without their cache puts
        # (the lock is reentrant; the caches share it).
        with self._counter_lock:
            self.flow_evaluations += len(records)
            for i, record in zip(missing, records):
                if self.config.cache_results:
                    key = self.evaluation_key(netlist, corners[i],
                                              weights)
                    self.result_cache.put(key, record)
                out[i] = record
        self._m_flow_evaluations.inc(len(records))

    # -- reporting / lifecycle ----------------------------------------------
    def stats(self) -> dict:
        with self._counter_lock:
            return {
                "backend": repr(self.backend),
                "characterizations": self.characterizations,
                "flow_evaluations": self.flow_evaluations,
                "library_cache": self.library_cache.stats(),
                "result_cache": self.result_cache.stats(),
                "timing_s": dict(self.timing.totals),
            }

    def snapshot(self) -> dict:
        """Flat, monotonic counter snapshot of :meth:`stats`.

        Keys are dotted paths (``result_cache.memory.hits``, …) mapping
        to numbers only — derived rates and descriptive strings are
        dropped — so two snapshots subtract cleanly. Callers sharing a
        long-lived engine (several search runs, many serve jobs) bracket
        a window of work with :meth:`snapshot` / :meth:`delta` instead
        of resetting the engine's lifetime counters.

        The read happens under the engine's counter lock — the same
        lock every cache movement and tally increment takes — so the
        snapshot is *consistent*: it can never catch, say, a result-
        cache put without the flow-evaluation increment that produced
        it, even while serve workers are mid-evaluation.
        """
        with self._counter_lock:
            return _flatten_counters(self.stats())

    def delta(self, before: dict) -> dict:
        """Counter movement since ``before`` (a :meth:`snapshot`)."""
        now = self.snapshot()
        return {key: value - before.get(key, 0)
                for key, value in now.items()}

    def reset_counters(self) -> None:
        with self._counter_lock:
            self.characterizations = 0
            self.flow_evaluations = 0
            self.timing = TimingRecord()

    def shutdown(self) -> None:
        self.backend.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
