"""Evaluation-outcome types shared by the engine and the STCO layer.

These used to live in :mod:`repro.stco.env`; they moved here so the
evaluation engine (cache, executor, campaign orchestration) can produce
and consume them without depending on the RL layer. :mod:`repro.stco`
re-exports both names, so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..charlib.corners import Corner
from ..eda.flow import SystemResult

__all__ = ["PPAWeights", "EvaluationRecord"]


@dataclass(frozen=True)
class PPAWeights:
    """Scalarisation of the PPA objectives (log-domain weighted sum)."""

    power: float = 1.0
    performance: float = 1.0
    area: float = 0.5

    def score(self, result: SystemResult) -> float:
        """Higher is better: reward performance, penalise power and area."""
        perf = np.log10(max(result.fmax_hz, 1.0))
        pwr = np.log10(max(result.total_power_w, 1e-12))
        area = np.log10(max(result.area_um2, 1.0))
        return float(self.performance * perf - self.power * pwr
                     - self.area * area)

    def key(self) -> tuple:
        """Stable identity tuple (used in engine cache keys)."""
        return (round(self.power, 9), round(self.performance, 9),
                round(self.area, 9))


@dataclass
class EvaluationRecord:
    """One corner evaluation's outcome (one STCO iteration).

    ``predicted`` marks surrogate-filled records (see
    :mod:`repro.surrogate.fidelity`) that never touched the engine —
    consumers that require ground truth must check it (old pickled
    records predate the field, so read via
    ``getattr(record, "predicted", False)``).
    """

    corner: Corner
    result: SystemResult
    reward: float
    library_runtime_s: float
    flow_runtime_s: float
    cached: bool = False
    predicted: bool = False
