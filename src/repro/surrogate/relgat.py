"""RelGAT network builder (the paper's surrogate architecture).

A RelGAT network is an input embedding, a stack of
:class:`~repro.nn.gnn.RelGATConv` layers with layer normalisation and
residual connections, and an MLP head. The paper uses two configurations:

* **Poisson emulator** — "a deep graph attention network with edge feature
  (RelGAT) … approximately 1 million parameters, incorporating a 12-layer
  GAT with 2 attention heads and one multilayer perceptron";
* **IV predictor** — "a shallower RelGAT model with about 0.15 million
  parameters, featuring a 3-layer, single-head GAT with a 4-layer MLP".

:func:`paper_poisson_config` and :func:`paper_iv_config` reproduce those
sizes; :func:`ci_poisson_config` / :func:`ci_iv_config` are narrow versions
for minute-scale CI runs (same code path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import (LayerNorm, Linear, MLP, Module, ModuleList, RelGATConv,
                  Tensor)

__all__ = ["RelGATConfig", "RelGATNetwork", "paper_poisson_config",
           "paper_iv_config", "ci_poisson_config", "ci_iv_config"]


@dataclass
class RelGATConfig:
    """Architecture hyperparameters for a RelGAT network."""

    in_features: int
    edge_features: int = 3
    hidden: int = 32            # per-head width
    heads: int = 2
    num_layers: int = 4
    mlp_dims: tuple = (32, 1)   # head MLP after the GNN (input auto-set)
    layer_norm: bool = True
    residual: bool = True
    activation: str = "elu"
    seed: int = 0


class RelGATNetwork(Module):
    """Embedding -> [RelGATConv + LayerNorm + activation] * L -> node MLP.

    Produces per-node outputs; graph-level models pool before their head.
    """

    def __init__(self, config: RelGATConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        width = config.hidden * config.heads
        self.embed = Linear(config.in_features, width, rng=rng)
        self.convs = ModuleList()
        self.norms = ModuleList()
        for _ in range(config.num_layers):
            self.convs.append(RelGATConv(
                width, config.hidden, edge_features=config.edge_features,
                heads=config.heads, concat=True,
                residual=config.residual, rng=rng))
            if config.layer_norm:
                self.norms.append(LayerNorm(width))
        from ..nn.functional import get_activation
        self._act = get_activation(config.activation)
        self.head = MLP([width, *config.mlp_dims],
                        activation=config.activation, rng=rng)

    def node_embeddings(self, batch) -> Tensor:
        """Run the message-passing trunk; returns (N, width) features."""
        h = self.embed(Tensor(batch.x))
        for i, conv in enumerate(self.convs):
            h = conv(h, batch.edge_index, batch.edge_attr)
            if self.config.layer_norm:
                h = self.norms[i](h)
            h = self._act(h)
        return h

    def forward_batch(self, batch) -> Tensor:
        """Per-node predictions (N, mlp_dims[-1])."""
        return self.head(self.node_embeddings(batch))

    forward = forward_batch


def paper_poisson_config(in_features: int,
                         edge_features: int = 3) -> RelGATConfig:
    """The paper's ~1M-parameter, 12-layer, 2-head Poisson emulator."""
    return RelGATConfig(
        in_features=in_features, edge_features=edge_features,
        hidden=128, heads=2, num_layers=12, mlp_dims=(256, 1),
        layer_norm=True, residual=True)


def paper_iv_config(in_features: int,
                    edge_features: int = 3) -> RelGATConfig:
    """The paper's ~0.15M-parameter, 3-layer, 1-head IV predictor trunk
    (its 4-layer MLP lives in :class:`~repro.surrogate.iv_predictor`)."""
    return RelGATConfig(
        in_features=in_features, edge_features=edge_features,
        hidden=144, heads=1, num_layers=3, mlp_dims=(144, 1),
        layer_norm=True, residual=True)


def ci_poisson_config(in_features: int,
                      edge_features: int = 3) -> RelGATConfig:
    """CI-scale Poisson emulator (same shape, narrow widths)."""
    return RelGATConfig(
        in_features=in_features, edge_features=edge_features,
        hidden=24, heads=2, num_layers=4, mlp_dims=(48, 1),
        layer_norm=True, residual=True)


def ci_iv_config(in_features: int, edge_features: int = 3) -> RelGATConfig:
    """CI-scale IV predictor trunk."""
    return RelGATConfig(
        in_features=in_features, edge_features=edge_features,
        hidden=32, heads=1, num_layers=3, mlp_dims=(32, 1),
        layer_norm=True, residual=True)
