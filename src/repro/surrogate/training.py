"""Training and Table II evaluation pipeline for the TCAD surrogates.

Trains the Poisson emulator and IV predictor on a
:class:`~repro.tcad.dataset.TCADDataset` and reports the paper's Table II
metrics: MSE on validation / testing / unseen splits plus R² on the unseen
split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import TrainConfig, Trainer, mse, r2_score
from ..nn.graph import batch_graphs
from ..tcad.dataset import TCADDataset
from .iv_predictor import IVPredictor
from .poisson_emulator import PoissonEmulator
from .relgat import RelGATConfig, ci_iv_config, ci_poisson_config

__all__ = ["SurrogateMetrics", "SurrogateTrainer", "train_surrogates"]


@dataclass
class SurrogateMetrics:
    """Table II row: per-split MSE and unseen R² for one model."""

    name: str
    mse_val: float
    mse_test: float
    mse_unseen: float
    r2_unseen: float
    train_epochs: int = 0
    wall_time_s: float = 0.0

    def row(self):
        """Values in the paper's column order."""
        return [self.name, self.mse_val, self.mse_test, self.mse_unseen,
                self.r2_unseen]


def _eval_split(trainer: Trainer, graphs) -> tuple[float, float]:
    """(MSE, R²) of a trained model on a list of graphs."""
    if not graphs:
        return float("nan"), float("nan")
    preds = trainer.predict(graphs)
    batch = batch_graphs(graphs)
    return mse(preds, batch.y), r2_score(preds, batch.y)


@dataclass
class SurrogateTrainer:
    """Train both surrogates on one dataset.

    Parameters default to CI-scale configs; pass
    :func:`~repro.surrogate.relgat.paper_poisson_config` /
    ``paper_iv_config`` results for paper-scale runs.
    """

    dataset: TCADDataset
    poisson_config: RelGATConfig | None = None
    iv_config: RelGATConfig | None = None
    train_config: TrainConfig = field(
        default_factory=lambda: TrainConfig(epochs=60, batch_size=8,
                                            lr=3e-3, grad_clip=2.0,
                                            early_stop_patience=15))
    poisson_model: PoissonEmulator | None = None
    iv_model: IVPredictor | None = None

    def _configs(self):
        p_feats = self.dataset.poisson["train"][0].num_node_features
        i_feats = self.dataset.iv["train"][0].num_node_features
        pc = self.poisson_config or ci_poisson_config(p_feats)
        ic = self.iv_config or ci_iv_config(i_feats)
        if pc.in_features != p_feats:
            raise ValueError("poisson config in_features mismatch")
        if ic.in_features != i_feats:
            raise ValueError("iv config in_features mismatch")
        return pc, ic

    def train(self) -> dict[str, SurrogateMetrics]:
        """Train both models; returns Table II metrics keyed by model."""
        pc, ic = self._configs()
        results = {}

        self.poisson_model = PoissonEmulator(pc)
        trainer = Trainer(self.poisson_model, config=self.train_config)
        hist = trainer.fit(self.dataset.poisson["train"],
                           self.dataset.poisson.get("val"))
        mse_val, _ = _eval_split(trainer, self.dataset.poisson.get("val", []))
        mse_test, _ = _eval_split(trainer,
                                  self.dataset.poisson.get("test", []))
        mse_unseen, r2_unseen = _eval_split(
            trainer, self.dataset.poisson.get("unseen", []))
        results["poisson"] = SurrogateMetrics(
            name="Poisson Emulator", mse_val=mse_val, mse_test=mse_test,
            mse_unseen=mse_unseen, r2_unseen=r2_unseen,
            train_epochs=hist.epochs_run, wall_time_s=hist.wall_time_s)

        self.iv_model = IVPredictor(ic)
        trainer = Trainer(self.iv_model, config=self.train_config)
        hist = trainer.fit(self.dataset.iv["train"],
                           self.dataset.iv.get("val"))
        mse_val, _ = _eval_split(trainer, self.dataset.iv.get("val", []))
        mse_test, _ = _eval_split(trainer, self.dataset.iv.get("test", []))
        mse_unseen, r2_unseen = _eval_split(
            trainer, self.dataset.iv.get("unseen", []))
        results["iv"] = SurrogateMetrics(
            name="IV Predictor", mse_val=mse_val, mse_test=mse_test,
            mse_unseen=mse_unseen, r2_unseen=r2_unseen,
            train_epochs=hist.epochs_run, wall_time_s=hist.wall_time_s)
        return results


def train_surrogates(dataset: TCADDataset,
                     train_config: TrainConfig | None = None,
                     poisson_config: RelGATConfig | None = None,
                     iv_config: RelGATConfig | None = None):
    """Convenience wrapper: train both surrogates, return
    ``(metrics, poisson_model, iv_model)``."""
    kwargs = {}
    if train_config is not None:
        kwargs["train_config"] = train_config
    trainer = SurrogateTrainer(dataset, poisson_config=poisson_config,
                               iv_config=iv_config, **kwargs)
    metrics = trainer.train()
    return metrics, trainer.poisson_model, trainer.iv_model
