"""Learned surrogates: device-level GNNs and system-level PPA models.

Two generations of surrogate live here:

* the paper's **device-level** GNN emulators (Sec. II-A, Table II):
  :class:`PoissonEmulator` / :class:`IVPredictor` over RelGAT networks,
  trained once from TCAD data;
* the **system-level multi-fidelity** stack (records → models →
  acquisition → fidelity): every engine evaluation is harvested into a
  content-keyed :class:`RecordStore`, a deep :class:`EnsemblePPAModel`
  learns (power, delay, area) with epistemic uncertainty from the
  ensemble spread, and the ``bayes`` / ``ucb`` optimizers plus the
  :class:`PromotedOptimizer` fidelity gate spend real evaluations only
  where the surrogate cannot already answer.
"""

from .relgat import (RelGATConfig, RelGATNetwork, paper_poisson_config,
                     paper_iv_config, ci_poisson_config, ci_iv_config)
from .poisson_emulator import PoissonEmulator
from .iv_predictor import IVPredictor
from .training import SurrogateMetrics, SurrogateTrainer, train_surrogates
from .records import (TARGET_NAMES, Featurizer, RecordStore,
                      RecordHarvester, targets_of)
from .models import EnsembleConfig, RidgeSurrogate, EnsemblePPAModel
from .acquisition import (ACQUISITION_NAMES, scalarize_log, reward_stats,
                          expected_improvement, upper_confidence_bound,
                          make_acquisition, RewardSurrogate)
from .fidelity import PromotionSchedule, PredictedResult, PromotedOptimizer

__all__ = [
    "RelGATConfig", "RelGATNetwork", "paper_poisson_config",
    "paper_iv_config", "ci_poisson_config", "ci_iv_config",
    "PoissonEmulator", "IVPredictor",
    "SurrogateMetrics", "SurrogateTrainer", "train_surrogates",
    "TARGET_NAMES", "Featurizer", "RecordStore", "RecordHarvester",
    "targets_of",
    "EnsembleConfig", "RidgeSurrogate", "EnsemblePPAModel",
    "ACQUISITION_NAMES", "scalarize_log", "reward_stats",
    "expected_improvement", "upper_confidence_bound", "make_acquisition",
    "RewardSurrogate",
    "PromotionSchedule", "PredictedResult", "PromotedOptimizer",
]
