"""GNN surrogates for TCAD simulation (paper Sec. II-A, Table II)."""

from .relgat import (RelGATConfig, RelGATNetwork, paper_poisson_config,
                     paper_iv_config, ci_poisson_config, ci_iv_config)
from .poisson_emulator import PoissonEmulator
from .iv_predictor import IVPredictor
from .training import SurrogateMetrics, SurrogateTrainer, train_surrogates

__all__ = [
    "RelGATConfig", "RelGATNetwork", "paper_poisson_config",
    "paper_iv_config", "ci_poisson_config", "ci_iv_config",
    "PoissonEmulator", "IVPredictor",
    "SurrogateMetrics", "SurrogateTrainer", "train_surrogates",
]
