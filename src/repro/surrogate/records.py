"""Record harvesting: every engine evaluation becomes training data.

The paper's thesis is that learned predictors replace expensive
evaluation — but a predictor is only as good as its training set, and
until now the only rows the repo ever learned from were single-cell
characterization measurements. This module closes the loop at the
*system* level: a :class:`RecordHarvester` listens to the
:class:`~repro.engine.engine.EvaluationEngine`'s record stream and turns
every :class:`~repro.engine.records.EvaluationRecord` into one
``(feature vector, log10 PPA)`` training row via a pluggable
:class:`Featurizer` over corner knobs + netlist statistics.

Rows persist **content-keyed** in a :class:`RecordStore` (one JSONL
file per featurizer under the workspace's ``surrogate/records``
directory), so training data accumulates across runs, scalarisations
and tenants: a corner evaluated once is a row forever, and a warm
re-run re-featurizes nothing — membership is decided from the row key
(featurizer × design × corner) *before* any feature work happens.

Targets are the raw minimisation objectives in log10 space
(``log10(power_w), log10(delay_s), log10(area_um2)``), independent of
any :class:`~repro.engine.records.PPAWeights` scalarisation — one store
serves every objective weighting.
"""

from __future__ import annotations

import json
import threading
import weakref
from pathlib import Path

import numpy as np

from ..engine.hashing import netlist_fingerprint, stable_hash

__all__ = ["TARGET_NAMES", "Featurizer", "RecordStore", "RecordHarvester",
           "targets_of"]

#: Training-target order used throughout the subsystem.
TARGET_NAMES = ("log_power", "log_delay", "log_area")


def targets_of(result) -> tuple:
    """log10 minimisation vector of a ``SystemResult``-shaped object."""
    return (float(np.log10(max(result.total_power_w, 1e-300))),
            float(np.log10(max(result.min_period_s, 1e-300))),
            float(np.log10(max(result.area_um2, 1e-300))))


class Featurizer:
    """Corner knobs + netlist statistics → one flat feature vector.

    The default features are the corner's normalised knob descriptor
    (``Corner.feature_vector()``) followed by log-scaled design
    statistics (gates, flops, inputs, outputs) — enough for one model to
    generalise across designs of different sizes. Pass ``extra`` (a
    callable ``(netlist, corner) -> sequence of floats``) to append
    domain features without subclassing; its ``__name__`` participates
    in the fingerprint so differently-featurized rows never mix.
    """

    #: Bumped when the meaning of the default features changes.
    VERSION = 1

    def __init__(self, include_netlist: bool = True, extra=None):
        self.include_netlist = include_netlist
        self.extra = extra
        self.calls = 0                  # feature computations performed
        self._netlist_cache = {}        # netlist fp -> feature tuple

    def fingerprint(self) -> str:
        return stable_hash({
            "kind": "featurizer", "version": self.VERSION,
            "include_netlist": self.include_netlist,
            "extra": getattr(self.extra, "__name__", None)
                     if self.extra is not None else None})

    def names(self) -> tuple:
        base = ["vdd_scale_n", "vth_shift_n", "cox_scale_n"]
        if self.include_netlist:
            base += ["log_gates", "log_flops", "log_inputs", "log_outputs"]
        return tuple(base)

    def _netlist_features(self, netlist, netlist_fp: str) -> tuple:
        cached = self._netlist_cache.get(netlist_fp)
        if cached is not None:
            return cached
        stats = netlist.stats()
        feats = tuple(float(np.log10(1.0 + stats.get(k, 0)))
                      for k in ("gates", "flops", "inputs", "outputs"))
        self._netlist_cache[netlist_fp] = feats
        return feats

    def features(self, netlist, corner, netlist_fp: str | None = None):
        """One row's feature vector (this is the cost the store skips
        for already-harvested rows)."""
        self.calls += 1
        row = [float(v) for v in corner.feature_vector()]
        if self.include_netlist and netlist is not None:
            fp = netlist_fp if netlist_fp is not None \
                else netlist_fingerprint(netlist)
            row.extend(self._netlist_features(netlist, fp))
        if self.extra is not None:
            row.extend(float(v) for v in self.extra(netlist, corner))
        return np.asarray(row, dtype=float)


class RecordStore:
    """Append-only, content-keyed store of surrogate training rows.

    One JSONL file per featurizer fingerprint; every line is one row
    ``{"key", "design", "corner", "features", "targets"}``. Appends are
    O(1); the whole file loads once at construction. The row key is a
    stable hash over (featurizer, design fingerprint, corner key), so
    the *same* evaluation harvested twice — warm cache, repeat run,
    another tenant — is recognised before features are recomputed.
    """

    def __init__(self, root: str | Path, featurizer: Featurizer | None = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.featurizer = featurizer if featurizer is not None \
            else Featurizer()
        self.path = self.root / f"{self.featurizer.fingerprint()}.jsonl"
        self._lock = threading.Lock()
        self._keys: set = set()
        self._rows: list = []           # insertion order
        self.loaded = 0                 # rows read from disk at boot
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    try:
                        row = json.loads(line)
                    except json.JSONDecodeError:
                        continue         # torn tail from a crash
                    if row.get("key") in self._keys:
                        continue
                    self._keys.add(row["key"])
                    self._rows.append(row)
        except OSError:
            return
        self.loaded = len(self._rows)

    def row_key(self, design_fp: str, corner) -> str:
        return stable_hash({"featurizer": self.featurizer.fingerprint(),
                            "design": design_fp,
                            "corner": list(corner.key())})

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def add(self, key: str, design: str, corner, features, targets) -> bool:
        """Insert one row; False (and no disk write) when already known."""
        with self._lock:
            if key in self._keys:
                return False
            row = {"key": key, "design": design,
                   "corner": list(corner.key()),
                   "features": [float(v) for v in features],
                   "targets": [float(v) for v in targets]}
            self._keys.add(key)
            self._rows.append(row)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
            return True

    def matrices(self, design: str | None = None):
        """``(X, Y)`` training matrices (optionally one design only)."""
        rows = [r for r in self._rows
                if design is None or r["design"] == design]
        if not rows:
            d = len(self.featurizer.names())
            return np.zeros((0, d)), np.zeros((0, len(TARGET_NAMES)))
        X = np.asarray([r["features"] for r in rows], dtype=float)
        Y = np.asarray([r["targets"] for r in rows], dtype=float)
        return X, Y

    def designs(self) -> dict:
        """Row counts per design fingerprint."""
        out: dict = {}
        for row in self._rows:
            out[row["design"]] = out.get(row["design"], 0) + 1
        return out

    def stats(self) -> dict:
        return {"rows": len(self._rows), "loaded": self.loaded,
                "designs": len(self.designs()),
                "featurizer": self.featurizer.fingerprint(),
                "path": str(self.path)}

    # -- training-distribution stats (drift reference) ---------------------
    @property
    def stats_path(self) -> Path:
        return self.root / f"{self.featurizer.fingerprint()}.stats.json"

    def feature_stats(self) -> dict:
        """Per-feature distribution of the current rows: the training
        envelope a served model was fit inside. ``{}`` when empty."""
        X, _ = self.matrices()
        if X.shape[0] == 0:
            return {}
        return {"rows": int(X.shape[0]),
                "featurizer": self.featurizer.fingerprint(),
                "names": list(self.featurizer.names()),
                "min": [float(v) for v in X.min(axis=0)],
                "max": [float(v) for v in X.max(axis=0)],
                "mean": [float(v) for v in X.mean(axis=0)],
                "std": [float(v) for v in X.std(axis=0)]}

    def save_feature_stats(self) -> dict:
        """Compute and persist :meth:`feature_stats` next to the rows —
        called at train/adopt time so the predict edge can score each
        request's features against the ranges the model actually saw."""
        stats = self.feature_stats()
        if stats:
            tmp = self.stats_path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(stats, sort_keys=True, indent=1)
                           + "\n", encoding="utf-8")
            tmp.replace(self.stats_path)
        return stats

    def load_feature_stats(self) -> dict:
        """The persisted training envelope (``{}`` when never saved)."""
        try:
            stats = json.loads(
                self.stats_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return {}
        return stats if isinstance(stats, dict) else {}


class RecordHarvester:
    """The engine-side listener feeding a :class:`RecordStore`.

    Attach via :meth:`repro.engine.engine.EvaluationEngine.add_record_listener`;
    every ``evaluate_many`` call then flows its records through
    :meth:`observe`. Cached/duplicate evaluations cost one key lookup,
    never a featurization — the counters prove it:

    * ``harvested`` — rows actually added (featurized this session);
    * ``skipped`` — records whose row already existed (zero feature
      work);
    * ``featurizer.calls`` — total feature computations.
    """

    def __init__(self, store: RecordStore):
        self.store = store
        self.featurizer = store.featurizer
        self.harvested = 0
        self.skipped = 0
        # Weakly keyed (like the engine's netlist fingerprints) so a
        # long-lived harvester neither pins netlists nor aliases a
        # recycled id() onto the wrong fingerprint.
        self._design_fps = weakref.WeakKeyDictionary()

    def _design_fp(self, netlist) -> str:
        if netlist is None:
            return "none"
        fp = self._design_fps.get(netlist)
        if fp is None:
            fp = netlist_fingerprint(netlist)
            self._design_fps[netlist] = fp
        return fp

    def observe(self, netlist, records) -> None:
        """Harvest one batch of evaluation records (listener hook)."""
        design = self._design_fp(netlist)
        for record in records:
            if getattr(record, "predicted", False):
                continue                 # surrogate-filled, not ground truth
            key = self.store.row_key(design, record.corner)
            if key in self.store:
                self.skipped += 1
                continue
            features = self.featurizer.features(netlist, record.corner,
                                                netlist_fp=design)
            if self.store.add(key, design, record.corner, features,
                              targets_of(record.result)):
                self.harvested += 1
            else:
                self.skipped += 1        # raced by another harvester

    def stats(self) -> dict:
        return {"harvested": self.harvested, "skipped": self.skipped,
                "featurizations": self.featurizer.calls,
                "store_rows": len(self.store)}
