"""GNN Poisson emulator: node regression of the electrostatic potential.

Input graphs carry the Fig. 2 encoding plus the self-consistent charge
density; the model predicts the normalised potential at every mesh node,
replacing the Newton solve of :class:`~repro.tcad.poisson.PoissonSolver`.
"""

from __future__ import annotations

import numpy as np

from ..encoding.device_encoding import PSI_SCALE
from ..nn import Module, Tensor, no_grad
from ..nn.graph import batch_graphs
from .relgat import RelGATConfig, RelGATNetwork

__all__ = ["PoissonEmulator"]


class PoissonEmulator(Module):
    """Potential-field surrogate (node-level RelGAT regression)."""

    def __init__(self, config: RelGATConfig):
        super().__init__()
        if config.mlp_dims[-1] != 1:
            raise ValueError("Poisson emulator head must end in 1 output")
        self.net = RelGATNetwork(config)

    def forward_batch(self, batch) -> Tensor:
        """Normalised potential prediction per node, shape (N, 1)."""
        return self.net.forward_batch(batch)

    forward = forward_batch

    def predict_potential(self, graph) -> np.ndarray:
        """Potential in volts for one encoded device graph."""
        batch = batch_graphs([graph])
        self.eval()
        with no_grad():
            pred = self.forward_batch(batch).data
        self.train()
        return pred[:, 0] * PSI_SCALE
