"""Multi-fidelity promotion: surrogate screening before real evaluation.

The fidelity ladder has two rungs: the learned ensemble (microseconds
per prediction) and the real evaluation engine (characterization + full
system flow). A :class:`PromotionSchedule` decides how candidates climb
it — each optimizer round, up to ``screen`` candidates are scored by the
surrogate and only the ``promote`` most promising reach the engine.

:class:`PromotedOptimizer` wires the schedule onto the existing
ask/tell protocol, so it plugs into
:class:`~repro.search.driver.SearchRun` like any optimizer — dedup,
engine-miss accounting and ``progress_callback`` all hold untouched:

* ``ask()`` asks the *inner* optimizer, tops the pool up with random
  space samples to ``screen`` candidates, and (once the surrogate has
  ``min_observations`` rows) returns only the promoted top-k;
* ``tell()`` forwards the real records and back-fills the inner
  optimizer's unpromoted candidates with **pessimistic** surrogate
  predictions (mean + ``kappa``·spread on each minimised objective), so
  the inner strategy's state advances over its full ask without ever
  chasing a phantom optimum — filled records carry
  ``predicted=True`` and are ignored by
  :class:`~repro.surrogate.records.RecordHarvester`.

Promotion ranks by UCB (optimism selects what to *measure*); back-fill
is pessimistic (caution decides what to *believe* unmeasured).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.records import EvaluationRecord, PPAWeights
from ..obs.metrics import get_registry
from ..obs.trace import span
from ..search.optimizers import Optimizer
from ..search.spaces import as_search_space
from ..utils.rng import make_rng
from .acquisition import RewardSurrogate, upper_confidence_bound

__all__ = ["PromotionSchedule", "PredictedResult", "PromotedOptimizer"]


@dataclass(frozen=True)
class PromotionSchedule:
    """How candidates climb the fidelity ladder each round."""

    screen: int = 16            # candidates scored by the surrogate
    promote: int = 4            # top-k sent to the engine
    min_observations: int = 6   # real rows before screening starts
    kappa: float = 1.0          # pessimism for surrogate back-fill
    ucb_beta: float = 1.0       # optimism for promotion ranking

    def __post_init__(self):
        if self.promote < 1:
            raise ValueError("schedule must promote at least 1 candidate")
        if self.screen < self.promote:
            raise ValueError("screen must be >= promote")


@dataclass
class PredictedResult:
    """A surrogate-predicted stand-in for a ``SystemResult``."""

    total_power_w: float
    min_period_s: float
    area_um2: float

    @property
    def fmax_hz(self) -> float:
        return 1.0 / max(self.min_period_s, 1e-300)

    def ppa(self) -> dict:
        return {"power_w": self.total_power_w,
                "performance_hz": self.fmax_hz,
                "area_um2": self.area_um2}


class PromotedOptimizer(Optimizer):
    """Wrap any optimizer behind a surrogate promotion gate.

    Parameters
    ----------
    inner:
        The proposal strategy. Its full ask (plus random padding up to
        ``schedule.screen``) is screened; only promoted candidates cost
        engine evaluations.
    space:
        The search space (padding samples come from it).
    schedule:
        The :class:`PromotionSchedule`; default promotes 4 of 16.
    weights:
        Scalarisation used for surrogate rewards and back-fill scores.
    model_config:
        :class:`~repro.surrogate.models.EnsembleConfig` for the online
        ensemble (default: the small online configuration).
    featurize:
        ``corner -> feature vector`` override; the default is the
        corner's normalised knob descriptor.
    """

    name = "promoted"

    def __init__(self, inner: Optimizer, space, schedule=None,
                 weights: PPAWeights | None = None, model_config=None,
                 featurize=None, seed: int = 0):
        super().__init__()
        self.inner = inner
        self.name = f"promoted-{inner.name}"
        self.space = as_search_space(space)
        self.schedule = schedule if schedule is not None \
            else PromotionSchedule()
        self.weights = weights if weights is not None else PPAWeights()
        self.featurize = featurize if featurize is not None \
            else (lambda corner: corner.feature_vector())
        self.surrogate = RewardSurrogate(self.weights, model_config)
        self.rng = make_rng(seed)
        self._inner_pending: list = []   # inner's ask, its order
        self._promoted: list = []        # corners sent to the engine
        self._evaluated: dict = {}       # corner key -> real record
        self._asked_keys: set = set()
        self.screened = 0
        self.promotions = 0
        self.backfilled = 0
        self.rounds = 0
        self._m_decisions = get_registry().counter(
            "repro_surrogate_screen_total",
            "Screened candidates by promotion decision",
            labels=("decision",))
        self._m_backfills = get_registry().counter(
            "repro_surrogate_backfills_total",
            "Inner-optimizer slots filled with pessimistic predictions")

    # -- ask ---------------------------------------------------------------
    def _padding(self, have_keys: set, count: int) -> list:
        """Random space samples to widen the screened pool."""
        if count <= 0:
            return []
        points = self.space.sample_unique(
            self.rng, count, exclude=have_keys | self._asked_keys)
        return [self.space.corner(p) for p in points]

    def ask(self) -> list:
        self.rounds += 1
        inner_corners = list(self.inner.ask())
        self._inner_pending = inner_corners
        self._evaluated = {}
        sched = self.schedule
        if len(self.surrogate) < sched.min_observations:
            # Warmup: everything the inner strategy asks is ground truth.
            self._promoted = inner_corners
            self._asked_keys.update(c.key() for c in inner_corners)
            return list(inner_corners)
        keys = {c.key() for c in inner_corners}
        pool = inner_corners + self._padding(
            keys, sched.screen - len(inner_corners))
        pool = pool[:sched.screen]
        self.screened += len(pool)
        with span("surrogate.screen", pool=len(pool),
                  promote=sched.promote):
            if len(pool) <= sched.promote:
                self._promoted = pool
            else:
                features = np.asarray([self.featurize(c) for c in pool])
                mean, std = self.surrogate.reward_posterior(features)
                scores = upper_confidence_bound(mean, std,
                                                beta=sched.ucb_beta)
                order = np.argsort(-scores,
                                   kind="stable")[:sched.promote]
                # Preserve pool (inner-first) order among the promoted
                # so prefix-truncation by the driver cuts padding first.
                self._promoted = [pool[i] for i in sorted(order)]
        self.promotions += len(self._promoted)
        self._m_decisions.labels(decision="promoted") \
            .inc(len(self._promoted))
        rejected = len(pool) - len(self._promoted)
        if rejected:
            self._m_decisions.labels(decision="rejected").inc(rejected)
        self._asked_keys.update(c.key() for c in self._promoted)
        return list(self._promoted)

    # -- tell --------------------------------------------------------------
    def _backfill(self, corner) -> EvaluationRecord | None:
        """A pessimistic surrogate record for an unpromoted candidate."""
        if len(self.surrogate) < self.schedule.min_observations:
            return None
        mean, std = self.surrogate.objective_posterior(
            np.asarray([self.featurize(corner)]))
        # Objectives are minimised: pessimism inflates every one.
        logs = mean[0] + self.schedule.kappa * std[0]
        result = PredictedResult(total_power_w=float(10.0 ** logs[0]),
                                 min_period_s=float(10.0 ** logs[1]),
                                 area_um2=float(10.0 ** logs[2]))
        self.backfilled += 1
        self._m_backfills.inc()
        return EvaluationRecord(corner=corner, result=result,
                                reward=self.weights.score(result),
                                library_runtime_s=0.0, flow_runtime_s=0.0,
                                predicted=True)

    def tell(self, records) -> None:
        super().tell(records)            # wrapper best = real records only
        from .records import targets_of
        for corner, record in zip(self._promoted, records):
            self._evaluated[corner.key()] = record
            self.surrogate.observe(self.featurize(record.corner),
                                   targets_of(record.result))
        # Advance the inner strategy over its *full* ask: real records
        # where measured, pessimistic predictions elsewhere. Protocol
        # allows a prefix, so stop at the first unresolvable slot (a
        # promoted corner the driver's budget truncated away).
        inner_records = []
        for corner in self._inner_pending:
            record = self._evaluated.get(corner.key())
            if record is None:
                record = self._backfill(corner)
            if record is None:
                break
            inner_records.append(record)
        self.inner.tell(inner_records)
        self._inner_pending = []
        self._promoted = []

    def _observe(self, record) -> None:
        pass

    @property
    def done(self) -> bool:
        return self.inner.done

    def surrogate_stats(self) -> dict:
        """Screening economics (surfaces in SearchResult / RunReport)."""
        return {"rounds": self.rounds, "screened": self.screened,
                "promoted": self.promotions,
                "backfilled": self.backfilled,
                "observations": len(self.surrogate),
                "fits": self.surrogate.fits}
