"""System-level PPA surrogates: ridge baseline + deep ensemble.

Two regressors over the rows a :class:`~repro.surrogate.records.RecordStore`
accumulates, both mapping a feature vector to the three log10 objectives
``(log_power, log_delay, log_area)``:

* :class:`RidgeSurrogate` — closed-form ridge regression on a quadratic
  feature expansion. No iterations, no seed, microsecond fits; the
  sanity baseline every learned model must beat and the fallback when
  only a handful of rows exist.
* :class:`EnsemblePPAModel` — K independently-seeded MLPs on the
  :mod:`repro.nn` stack. The member mean is the prediction; the member
  *spread* is the epistemic uncertainty the Bayesian optimizers turn
  into acquisition values — far from data the members disagree, and the
  disagreement shrinks as rows accumulate (asserted in tests).

Both standardize inputs and targets internally (normalizers are part of
the saved artifact), save/load as ``.npz`` via
:mod:`repro.nn.serialization` conventions, and expose a stable
:meth:`fingerprint` so a trained surrogate registers in the
:class:`~repro.api.workspace.Workspace` exactly like trained GNN
weights.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from pathlib import Path

import numpy as np

from ..engine.hashing import array_digest, stable_hash
from .records import TARGET_NAMES

__all__ = ["EnsembleConfig", "RidgeSurrogate", "EnsemblePPAModel"]


@dataclass(frozen=True)
class EnsembleConfig:
    """Architecture + training knobs of the deep ensemble."""

    members: int = 3
    hidden: int = 16
    depth: int = 2                  # hidden layers per member
    epochs: int = 60
    lr: float = 1e-2
    seed: int = 0

    def __post_init__(self):
        if self.members < 1:
            raise ValueError("ensemble needs at least one member")
        if self.depth < 1 or self.hidden < 1:
            raise ValueError("ensemble members need hidden >= 1, depth >= 1")


class _Standardizer:
    """Per-column mean/std affine map (degenerate columns pass through)."""

    def __init__(self, mean=None, std=None):
        self.mean = mean
        self.std = std

    def fit(self, X: np.ndarray) -> "_Standardizer":
        self.mean = X.mean(axis=0)
        std = X.std(axis=0)
        self.std = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        return (X - self.mean) / self.std

    def inverse(self, Z: np.ndarray) -> np.ndarray:
        return Z * self.std + self.mean


def _quadratic_expand(X: np.ndarray) -> np.ndarray:
    """[x, x^2, upper-triangle cross terms] — the ridge feature map."""
    n, d = X.shape
    cols = [X, X ** 2]
    for i in range(d):
        for j in range(i + 1, d):
            cols.append((X[:, i] * X[:, j])[:, None])
    return np.hstack(cols)


class RidgeSurrogate:
    """Closed-form ridge regression on quadratic features."""

    def __init__(self, alpha: float = 1e-3):
        self.alpha = float(alpha)
        self._w = None                  # (features+1, targets)
        self._x_norm = _Standardizer()
        self._y_norm = _Standardizer()

    @property
    def fitted(self) -> bool:
        return self._w is not None

    def fit(self, X, Y) -> "RidgeSurrogate":
        X = np.asarray(X, dtype=float)
        Y = np.asarray(Y, dtype=float)
        if len(X) == 0:
            raise ValueError("cannot fit a surrogate on zero rows")
        Z = self._x_norm.fit(X).transform(X)
        Z = _quadratic_expand(Z)
        T = self._y_norm.fit(Y).transform(Y)
        A = np.hstack([Z, np.ones((len(Z), 1))])
        reg = self.alpha * np.eye(A.shape[1])
        reg[-1, -1] = 0.0               # never shrink the intercept
        self._w = np.linalg.solve(A.T @ A + reg, A.T @ T)
        return self

    def predict(self, X):
        """``(mean, std)`` — std is zero: ridge has no epistemic term."""
        if not self.fitted:
            raise RuntimeError("RidgeSurrogate.predict before fit")
        X = np.asarray(X, dtype=float)
        Z = _quadratic_expand(self._x_norm.transform(X))
        A = np.hstack([Z, np.ones((len(Z), 1))])
        mean = self._y_norm.inverse(A @ self._w)
        return mean, np.zeros_like(mean)


class EnsemblePPAModel:
    """K independently-seeded MLPs; spread = epistemic uncertainty."""

    def __init__(self, config: EnsembleConfig | None = None):
        self.config = config if config is not None else EnsembleConfig()
        self._members = []              # nn.MLP instances
        self._x_norm = _Standardizer()
        self._y_norm = _Standardizer()
        self._in_dim = None
        self._stacked = None            # [(W (K,d_in,d_out), b (K,1,d_out))]
        self.trained_rows = 0

    @property
    def fitted(self) -> bool:
        return bool(self._members)

    # -- training ----------------------------------------------------------
    def _build(self, in_dim: int) -> None:
        from ..nn import MLP
        cfg = self.config
        dims = [in_dim] + [cfg.hidden] * cfg.depth + [len(TARGET_NAMES)]
        self._members = [
            MLP(dims, activation="tanh",
                rng=np.random.default_rng(cfg.seed + 1000 * k))
            for k in range(cfg.members)]
        self._in_dim = in_dim

    def fit(self, X, Y) -> "EnsemblePPAModel":
        """Train every member from scratch on all rows (full batch).

        Refits are deterministic: member k's init and data order depend
        only on ``config.seed`` and k, never on wall clock or call
        count — the property the ``bayes`` optimizer's seeded
        reproducibility rests on.
        """
        from ..nn import Adam, Tensor, mse_loss
        X = np.asarray(X, dtype=float)
        Y = np.asarray(Y, dtype=float)
        if len(X) == 0:
            raise ValueError("cannot fit a surrogate on zero rows")
        if X.ndim != 2 or Y.ndim != 2 or Y.shape[1] != len(TARGET_NAMES):
            raise ValueError(
                f"expected X (n, d) and Y (n, {len(TARGET_NAMES)}); got "
                f"{X.shape} / {Y.shape}")
        self._build(X.shape[1])
        Z = self._x_norm.fit(X).transform(X)
        T = self._y_norm.fit(Y).transform(Y)
        cfg = self.config
        for k, member in enumerate(self._members):
            # Each member resamples the rows (bootstrap) so the spread
            # reflects data scarcity, not just init noise.
            rng = np.random.default_rng(cfg.seed + 1000 * k + 1)
            idx = (rng.integers(0, len(Z), size=len(Z))
                   if len(Z) > 1 else np.zeros(1, dtype=int))
            xb = Tensor(Z[idx])
            tb = Tensor(T[idx])
            opt = Adam(member.parameters(), lr=cfg.lr)
            for _ in range(cfg.epochs):
                opt.zero_grad()
                loss = mse_loss(member(xb), tb)
                loss.backward()
                opt.step()
        self.trained_rows = len(X)
        self._stacked = None
        return self

    def refit(self, X, Y, epochs: int | None = None) -> "EnsemblePPAModel":
        """Warm-started incremental refit on the full (grown) row set.

        Members keep their current weights and the fitted normalizers,
        then continue Adam training — cheap enough to run on every
        record-store delta, so a served model tracks harvested engine
        truth without periodic full retrains. Falls back to
        :meth:`fit` when the ensemble is untrained. Deterministic: the
        bootstrap stream depends only on ``(seed, member, len(X))``.
        """
        if not self.fitted:
            return self.fit(X, Y)
        from ..nn import Adam, Tensor, mse_loss
        X = np.asarray(X, dtype=float)
        Y = np.asarray(Y, dtype=float)
        if len(X) == 0:
            raise ValueError("cannot refit a surrogate on zero rows")
        if X.ndim != 2 or X.shape[1] != self._in_dim \
                or Y.ndim != 2 or Y.shape[1] != len(TARGET_NAMES):
            raise ValueError(
                f"expected X (n, {self._in_dim}) and Y "
                f"(n, {len(TARGET_NAMES)}); got {X.shape} / {Y.shape}")
        Z = self._x_norm.transform(X)
        T = self._y_norm.transform(Y)
        cfg = self.config
        steps = cfg.epochs if epochs is None else int(epochs)
        for k, member in enumerate(self._members):
            rng = np.random.default_rng(
                cfg.seed + 1000 * k + 1 + 7919 * len(Z))
            idx = (rng.integers(0, len(Z), size=len(Z))
                   if len(Z) > 1 else np.zeros(1, dtype=int))
            xb = Tensor(Z[idx])
            tb = Tensor(T[idx])
            opt = Adam(member.parameters(), lr=cfg.lr)
            for _ in range(steps):
                opt.zero_grad()
                loss = mse_loss(member(xb), tb)
                loss.backward()
                opt.step()
        self.trained_rows = len(X)
        self._stacked = None
        return self

    # -- inference ---------------------------------------------------------
    def _stacked_layers(self):
        """Per-layer ``(W, b)`` arrays stacked across members, cached
        until the weights change (fit / refit / load)."""
        if self._stacked is None:
            from ..nn.layers import Linear
            per_member = [[m for m in member.net if isinstance(m, Linear)]
                          for member in self._members]
            self._stacked = [
                (np.stack([layers[i].weight.data for layers in per_member]),
                 np.stack([layers[i].bias.data
                           for layers in per_member])[:, None, :])
                for i in range(len(per_member[0]))]
        return self._stacked

    def predict_members_batch(self, X) -> np.ndarray:
        """One stacked ensemble forward: all K members advance together
        through batched ``(K, n, d) @ (K, d, d')`` matmuls — pure
        numpy, no autograd graph, no per-member Python loop. Same
        result as :meth:`predict_members` (members are built with tanh
        hidden activations), shape ``(members, n, targets)``.
        """
        if not self.fitted:
            raise RuntimeError("EnsemblePPAModel.predict before fit")
        X = np.asarray(X, dtype=float)
        Z = self._x_norm.transform(X)
        H = np.broadcast_to(Z, (len(self._members),) + Z.shape)
        layers = self._stacked_layers()
        for i, (W, b) in enumerate(layers):
            H = H @ W + b
            if i < len(layers) - 1:
                H = np.tanh(H)
        return self._y_norm.inverse(H)

    def predict_batch(self, X):
        """``(mean, std)`` via the stacked forward — the serving path."""
        preds = self.predict_members_batch(X)
        return preds.mean(axis=0), preds.std(axis=0)

    def predict_members(self, X) -> np.ndarray:
        """Per-member predictions, shape ``(members, n, targets)``,
        in the original (denormalized) log10-objective units."""
        from ..nn import Tensor, no_grad
        if not self.fitted:
            raise RuntimeError("EnsemblePPAModel.predict before fit")
        X = np.asarray(X, dtype=float)
        Z = self._x_norm.transform(X)
        outs = []
        with no_grad():
            xt = Tensor(Z)
            for member in self._members:
                outs.append(self._y_norm.inverse(member(xt).data))
        return np.stack(outs)

    def predict(self, X):
        """``(mean, std)`` over members — std is the epistemic term."""
        preds = self.predict_members(X)
        return preds.mean(axis=0), preds.std(axis=0)

    # -- identity / persistence --------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash: config + exact member weights."""
        if not self.fitted:
            return stable_hash({"kind": "surrogate-ensemble",
                                "config": asdict(self.config),
                                "state": None})
        digests = []
        for member in self._members:
            state = member.state_dict()
            digests.append(array_digest([state[k] for k in sorted(state)]))
        return stable_hash({
            "kind": "surrogate-ensemble", "config": asdict(self.config),
            "in_dim": self._in_dim,
            "norm": array_digest([self._x_norm.mean, self._x_norm.std,
                                  self._y_norm.mean, self._y_norm.std]),
            "members": digests})

    def save(self, path) -> Path:
        """One ``.npz`` with every member's weights + the normalizers."""
        import json
        if not self.fitted:
            raise RuntimeError("cannot save an unfitted ensemble")
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {}
        for k, member in enumerate(self._members):
            for name, arr in member.state_dict().items():
                payload[f"member{k}.{name}"] = arr
        payload["norm.x_mean"] = self._x_norm.mean
        payload["norm.x_std"] = self._x_norm.std
        payload["norm.y_mean"] = self._y_norm.mean
        payload["norm.y_std"] = self._y_norm.std
        meta = {"config": asdict(self.config), "in_dim": self._in_dim,
                "trained_rows": self.trained_rows,
                "targets": list(TARGET_NAMES)}
        payload["__meta__"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez(path, **payload)
        return path if path.suffix == ".npz" \
            else path.with_suffix(path.suffix + ".npz")

    @classmethod
    def load(cls, path) -> "EnsemblePPAModel":
        import json
        path = Path(path)
        if not path.exists() and path.with_suffix(".npz").exists():
            path = path.with_suffix(".npz")
        with np.load(path) as archive:
            meta = json.loads(
                bytes(archive["__meta__"].tobytes()).decode("utf-8"))
            model = cls(EnsembleConfig(**meta["config"]))
            model._build(int(meta["in_dim"]))
            for k, member in enumerate(model._members):
                prefix = f"member{k}."
                state = {name[len(prefix):]: archive[name]
                         for name in archive.files
                         if name.startswith(prefix)}
                member.load_state_dict(state)
            model._x_norm = _Standardizer(archive["norm.x_mean"],
                                          archive["norm.x_std"])
            model._y_norm = _Standardizer(archive["norm.y_mean"],
                                          archive["norm.y_std"])
        model.trained_rows = int(meta.get("trained_rows", 0))
        model._stacked = None
        return model
