"""GNN IV predictor: graph regression of the drain current.

Input graphs carry the Fig. 2 encoding plus charge density *and* potential
(the paper's task-specific self-consistent features for this task); the
model pools node embeddings and regresses the normalised log drain current
through a 4-layer MLP.
"""

from __future__ import annotations

import numpy as np

from ..nn import MLP, Module, Tensor, no_grad
from ..nn.gnn import global_max_pool, global_mean_pool
from ..nn.graph import batch_graphs
from ..tcad.dataset import denormalize_log_current
from .relgat import RelGATConfig, RelGATNetwork

__all__ = ["IVPredictor"]


class IVPredictor(Module):
    """Drain-current surrogate (graph-level RelGAT regression).

    The trunk follows ``config``; pooling concatenates mean and max
    statistics; the head is the paper's 4-layer MLP.
    """

    def __init__(self, config: RelGATConfig):
        super().__init__()
        self.net = RelGATNetwork(config)
        width = config.hidden * config.heads
        rng = np.random.default_rng(config.seed + 1)
        # 4-layer MLP head: [2*width -> width -> width/2 -> width/4 -> 1]
        self.head = MLP([2 * width, width, max(width // 2, 8),
                         max(width // 4, 8), 1],
                        activation=config.activation, rng=rng)

    def forward_batch(self, batch) -> Tensor:
        """Normalised log-current prediction per graph, shape (B, 1)."""
        h = self.net.node_embeddings(batch)
        mean = global_mean_pool(h, batch.batch, batch.num_graphs)
        mx = global_max_pool(h, batch.batch, batch.num_graphs)
        from ..nn import functional as F
        pooled = F.concat([mean, mx], axis=1)
        return self.head(pooled)

    forward = forward_batch

    def predict_current(self, graphs) -> np.ndarray:
        """Drain currents in amps for encoded device graphs."""
        batch = batch_graphs(list(graphs))
        self.eval()
        with no_grad():
            pred = self.forward_batch(batch).data
        self.train()
        return denormalize_log_current(pred[:, 0])
