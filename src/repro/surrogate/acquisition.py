"""Acquisition functions: uncertainty-aware candidate ranking.

The surrogate predicts the three log10 objectives; the search layer
optimizes one scalarized reward. This module bridges the two:

* :func:`scalarize_log` maps predicted ``(log_power, log_delay,
  log_area)`` rows to the exact reward
  :meth:`repro.engine.records.PPAWeights.score` would assign
  (``log10(fmax) = -log10(delay)``, so the mapping is linear in the
  log domain — no exponentiation, no precision loss);
* :func:`reward_stats` propagates a deep ensemble's per-member
  predictions into a per-candidate reward mean and spread;
* :func:`expected_improvement` / :func:`upper_confidence_bound` turn
  (mean, spread, incumbent) into the acquisition values the ``bayes`` /
  ``ucb`` optimizers rank with. Both are written for the maximisation
  convention used throughout the search subsystem (higher reward is
  better).

The standard-normal pdf/cdf are closed-form (``erf``-based) — no scipy.
"""

from __future__ import annotations

import numpy as np

from ..engine.records import PPAWeights

__all__ = ["scalarize_log", "reward_stats", "expected_improvement",
           "upper_confidence_bound", "make_acquisition",
           "ACQUISITION_NAMES", "RewardSurrogate"]


def scalarize_log(log_objectives, weights: PPAWeights | None = None):
    """Reward of each ``(log_power, log_delay, log_area)`` row.

    Exactly :meth:`PPAWeights.score` in the log domain:
    ``performance * log10(fmax) - power * log10(power) - area *
    log10(area)`` with ``log10(fmax) = -log_delay``.
    """
    weights = weights if weights is not None else PPAWeights()
    logs = np.asarray(log_objectives, dtype=float)
    lp, ld, la = logs[..., 0], logs[..., 1], logs[..., 2]
    return (-weights.performance * ld - weights.power * lp
            - weights.area * la)


def reward_stats(member_predictions, weights: PPAWeights | None = None):
    """``(mean, std)`` of the scalarized reward over ensemble members.

    ``member_predictions`` has shape ``(members, n, 3)`` (see
    :meth:`repro.surrogate.models.EnsemblePPAModel.predict_members`).
    Scalarizing *per member* and then taking statistics preserves the
    correlations between the objectives each member learned — the
    spread of the reward is what acquisition needs, not the spread of
    each objective in isolation.
    """
    rewards = scalarize_log(member_predictions, weights)   # (members, n)
    return rewards.mean(axis=0), rewards.std(axis=0)


def _norm_pdf(z: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * z * z) / np.sqrt(2.0 * np.pi)


def _norm_cdf(z: np.ndarray) -> np.ndarray:
    # erf is vectorized in numpy >= 2 via math fallback; keep it manual
    # so any numpy works: cdf(z) = 0.5 (1 + erf(z / sqrt 2)).
    from math import erf
    flat = np.asarray(z, dtype=float).ravel()
    out = np.array([0.5 * (1.0 + erf(v / np.sqrt(2.0))) for v in flat])
    return out.reshape(np.shape(z))


def expected_improvement(mean, std, best: float,
                         xi: float = 0.01) -> np.ndarray:
    """EI (maximisation): expected amount by which a candidate beats the
    incumbent ``best``, under a Gaussian posterior ``N(mean, std²)``.

    ``xi`` trades exploration for exploitation; candidates with zero
    spread degrade gracefully to ``max(mean - best - xi, 0)`` (pure
    exploitation), so EI stays well-defined with a ridge surrogate or a
    collapsed ensemble.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    gain = mean - best - xi
    out = np.maximum(gain, 0.0)
    active = std > 1e-12
    if np.any(active):
        z = gain[active] / std[active]
        out = out.astype(float)
        out[active] = (gain[active] * _norm_cdf(z)
                       + std[active] * _norm_pdf(z))
    return out


def upper_confidence_bound(mean, std, beta: float = 1.0) -> np.ndarray:
    """UCB (maximisation): optimism in the face of uncertainty."""
    return np.asarray(mean, dtype=float) \
        + float(beta) * np.asarray(std, dtype=float)


#: Names accepted by make_acquisition (and SurrogateConfig.acquisition).
ACQUISITION_NAMES = ("ei", "ucb")


def make_acquisition(name: str, ucb_beta: float = 1.0, xi: float = 0.01):
    """An acquisition callable ``(mean, std, best) -> scores``."""
    if name == "ei":
        return lambda mean, std, best: expected_improvement(
            mean, std, best, xi=xi)
    if name == "ucb":
        return lambda mean, std, best: upper_confidence_bound(
            mean, std, beta=ucb_beta)
    raise ValueError(f"unknown acquisition {name!r}; expected one of "
                     f"{ACQUISITION_NAMES}")


class RewardSurrogate:
    """An online reward posterior fitted from ``tell()``-ed records.

    The shared engine of the ``bayes`` / ``ucb`` optimizers and the
    :class:`~repro.surrogate.fidelity.PromotedOptimizer`: it accumulates
    ``(feature, log-objective)`` observations, lazily refits a deep
    ensemble whenever the data changed since the last fit, and answers
    reward-posterior queries. Refits are from scratch and seeded, so a
    fixed optimizer seed reproduces the exact trajectory.
    """

    def __init__(self, weights: PPAWeights | None = None, config=None):
        from .models import EnsembleConfig
        self.weights = weights if weights is not None else PPAWeights()
        self.config = config if config is not None else EnsembleConfig()
        self._X: list = []
        self._Y: list = []
        self._model = None
        self._fitted_rows = 0
        self.fits = 0

    def __len__(self) -> int:
        return len(self._X)

    def observe(self, features, log_objectives) -> None:
        self._X.append(np.asarray(features, dtype=float))
        self._Y.append(np.asarray(log_objectives, dtype=float))

    def observe_record(self, features, record) -> None:
        from .records import targets_of
        self.observe(features, targets_of(record.result))

    def best_observed(self) -> float:
        if not self._Y:
            return -np.inf
        return float(scalarize_log(np.asarray(self._Y), self.weights).max())

    def _ensure_fitted(self):
        from .models import EnsemblePPAModel
        if self._model is None or self._fitted_rows != len(self._X):
            self._model = EnsemblePPAModel(self.config).fit(
                np.asarray(self._X), np.asarray(self._Y))
            self._fitted_rows = len(self._X)
            self.fits += 1
        return self._model

    def reward_posterior(self, features):
        """``(mean, std)`` of the scalarized reward per feature row."""
        if not self._X:
            raise RuntimeError("no observations to fit a surrogate on")
        model = self._ensure_fitted()
        members = model.predict_members(np.asarray(features, dtype=float))
        return reward_stats(members, self.weights)

    def objective_posterior(self, features):
        """``(mean, std)`` of the three log10 objectives per row."""
        if not self._X:
            raise RuntimeError("no observations to fit a surrogate on")
        return self._ensure_fitted().predict(
            np.asarray(features, dtype=float))
