"""Typed, validating, JSON-round-trippable scenario configs.

One :class:`StcoConfig` document describes an entire run of the paper's
pipeline — technology → GNN characterization → system evaluation →
optimization — so every scenario is a serializable artifact: write it to
JSON, version it, hand it to the ``repro`` CLI, and get the same run
back. The config layer is deliberately dependency-free (stdlib only);
the :mod:`repro.api.runner` maps it onto live objects.

Guarantees:

* ``from_dict(to_dict(c)) == c`` for every config class (sequences are
  stored as tuples and serialized as JSON lists);
* unknown keys raise :class:`ConfigError` naming the offending keys and
  the accepted ones — a typo never silently becomes a default;
* the root document carries ``schema_version``; loading a document
  written under a different schema raises instead of misinterpreting it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import ClassVar

__all__ = ["SCHEMA_VERSION", "ConfigError", "TechnologyConfig",
           "ModelConfig", "EngineConfig", "AxisConfig", "SearchConfig",
           "SurrogateConfig", "PredictConfig", "ScenarioConfig",
           "StcoConfig", "MODES", "FIDELITIES"]

#: Version of the config document schema. Bumped whenever the meaning of
#: an existing field changes (adding fields with defaults does not bump).
SCHEMA_VERSION = 1

#: Run modes the runner dispatches on.
MODES = ("fast", "traditional", "search", "portfolio", "campaign")

#: Evaluation fidelities: tier-1 runs the engine; tier-0 runs the
#: whole search against the workspace's trained surrogate ensemble.
FIDELITIES = ("engine", "surrogate")


class ConfigError(ValueError):
    """A config document is malformed (unknown key, bad value, wrong
    schema version)."""


def _jsonable(value):
    """Recursively convert a config value to JSON-native types."""
    if isinstance(value, _Config):
        return value.to_dict()
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    return value


def _tuplify(value):
    """Recursively convert JSON lists back to tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(_tuplify(v) for v in value)
    return value


@dataclass(frozen=True)
class _Config:
    """Shared to_dict / from_dict with unknown-key rejection."""

    #: Per-class nested-field registry: name -> config class, or
    #: ("tuple", config class) for a tuple of nested configs.
    _nested: ClassVar[dict] = {}

    def to_dict(self) -> dict:
        return {f.name: _jsonable(getattr(self, f.name))
                for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "_Config":
        if not isinstance(data, dict):
            raise ConfigError(
                f"{cls.__name__} expects a mapping, got "
                f"{type(data).__name__}")
        names = [f.name for f in fields(cls)]
        unknown = sorted(set(data) - set(names))
        if unknown:
            raise ConfigError(
                f"unknown key(s) {unknown} for {cls.__name__}; "
                f"expected a subset of {sorted(names)}")
        nested = cls._nested
        kwargs = {}
        for name in names:
            if name not in data:
                continue
            value = data[name]
            spec = nested.get(name)
            if spec is None:
                kwargs[name] = _tuplify(value)
            elif isinstance(spec, tuple):
                kwargs[name] = tuple(spec[1].from_dict(v) for v in value)
            else:
                kwargs[name] = spec.from_dict(value)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigError(f"bad {cls.__name__}: {exc}") from None


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class TechnologyConfig(_Config):
    """The technology + characterization side of the pipeline.

    ``train_corners`` / ``test_corners`` are explicit (vdd_scale,
    vth_shift, cox_scale) triples; empty tuples select the CI-scale
    default grids (2^3 train / 3^3 test, see
    :mod:`repro.charlib.corners`). The remaining fields mirror
    :class:`repro.charlib.characterizer.CharConfig`.
    """

    technology: str = "ltps"
    cells: tuple = ("INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1")
    train_corners: tuple = ()
    test_corners: tuple = ()
    slews: tuple = (5e-9, 20e-9)
    loads: tuple = (10e-15, 40e-15)
    cap_slew: float = 10e-9
    seq_slew: float = 8e-9
    seq_load: float = 20e-15
    n_bisect: int = 7
    max_steps: int = 420
    min_steps: int = 120

    def __post_init__(self):
        _require(bool(self.cells), "technology.cells must not be empty")
        _require(bool(self.slews) and bool(self.loads),
                 "technology.slews/loads must not be empty")
        for name in ("train_corners", "test_corners"):
            for c in getattr(self, name):
                _require(isinstance(c, tuple) and len(c) == 3,
                         f"technology.{name} entries must be "
                         f"(vdd_scale, vth_shift, cox_scale) triples")

    def char_config(self):
        """The :class:`repro.charlib.characterizer.CharConfig` this maps to."""
        from ..charlib.characterizer import CharConfig
        return CharConfig(slews=self.slews, loads=self.loads,
                          cap_slew=self.cap_slew, seq_slew=self.seq_slew,
                          seq_load=self.seq_load, n_bisect=self.n_bisect,
                          max_steps=self.max_steps,
                          min_steps=self.min_steps)

    def corners(self, split: str) -> list:
        """Corner objects for ``split`` ('train' / 'test')."""
        from ..charlib.corners import (Corner, ci_test_corners,
                                       ci_train_corners)
        spec = (self.train_corners if split == "train"
                else self.test_corners)
        if not spec:
            return (ci_train_corners() if split == "train"
                    else ci_test_corners())
        return [Corner(float(v), float(t), float(c)) for v, t, c in spec]


@dataclass(frozen=True)
class ModelConfig(_Config):
    """Characterization model: the GNN fast path or the SPICE baseline.

    ``kind="gnn"`` trains (or loads from the workspace registry) a
    :class:`~repro.charlib.model.CellCharGCN`; ``kind="spice"`` selects
    the full transistor-level characterizer and ignores the
    architecture / training fields.
    """

    kind: str = "gnn"
    hidden: int = 48
    num_layers: int = 3
    head_hidden: int = 48
    model_seed: int = 0
    epochs: int = 40
    batch_size: int = 32
    lr: float = 3e-3
    grad_clip: float = 2.0
    train_seed: int = 0

    def __post_init__(self):
        _require(self.kind in ("gnn", "spice"),
                 f"model.kind must be 'gnn' or 'spice', got {self.kind!r}")
        _require(self.epochs > 0, "model.epochs must be positive")


@dataclass(frozen=True)
class EngineConfig(_Config):
    """Evaluation-engine knobs (maps to :class:`repro.engine.engine.EngineConfig`).

    ``cache_max_bytes`` bounds each on-disk cache tier, evicting
    least-recently-used entries by mtime (see
    :class:`repro.engine.cache.DiskCache`). The cache directory itself
    is owned by the :class:`~repro.api.workspace.Workspace`;
    ``persist=False`` opts a run out of the disk tier entirely.
    """

    backend: str = "serial"
    cache_capacity: int = 512
    cache_results: bool = True
    batch_characterization: bool = False
    max_graphs_per_batch: int = 1024
    cache_max_bytes: int = 0          # 0 = unbounded
    persist: bool = True

    def __post_init__(self):
        _require(self.cache_capacity >= 0,
                 "engine.cache_capacity must be >= 0")
        _require(self.cache_max_bytes >= 0,
                 "engine.cache_max_bytes must be >= 0 (0 = unbounded)")

    def engine_config(self, cache_dir=None):
        """The :class:`repro.engine.engine.EngineConfig` this maps to."""
        from ..engine.engine import EngineConfig as _EngineConfig
        return _EngineConfig(
            backend=self.backend,
            cache_capacity=self.cache_capacity,
            cache_dir=str(cache_dir) if (self.persist
                                         and cache_dir is not None)
            else None,
            cache_results=self.cache_results,
            batch_characterization=self.batch_characterization,
            max_graphs_per_batch=self.max_graphs_per_batch,
            cache_max_bytes=self.cache_max_bytes or None)


@dataclass(frozen=True)
class AxisConfig(_Config):
    """One declarative design-space axis (maps to
    :class:`repro.search.spaces.Axis`).

    ``values`` (non-empty) declares a discrete axis; otherwise
    ``lo``/``hi`` declare a continuous box, with optional ``step``
    snapping resolution (0 = snap only to the cache-key precision).
    Axis names must be Corner knobs (``vdd_scale`` / ``vth_shift`` /
    ``cox_scale``) — config documents have no way to carry a custom
    ``corner_factory``.
    """

    name: str = ""
    values: tuple = ()
    lo: float = 0.0
    hi: float = 0.0
    step: float = 0.0

    def __post_init__(self):
        from ..search.spaces import DEFAULT_KNOBS
        _require(self.name in DEFAULT_KNOBS,
                 f"axis name must be one of {DEFAULT_KNOBS}, "
                 f"got {self.name!r}")
        if self.values:
            # Contradictory documents hard-fail (like unknown keys):
            # a discrete axis silently swallowing lo/hi/step would
            # explore a different space than the author wrote down.
            _require(self.lo == 0.0 and self.hi == 0.0
                     and self.step == 0.0,
                     f"axis {self.name!r} mixes discrete 'values' with "
                     f"continuous lo/hi/step; declare one or the other")
        else:
            _require(self.hi > self.lo,
                     f"continuous axis {self.name!r} needs hi > lo")
        _require(self.step >= 0.0,
                 f"axis {self.name!r} step must be >= 0")

    def axis(self):
        from ..search.spaces import Axis
        if self.values:
            return Axis.discrete(self.name, self.values)
        return Axis.continuous(self.name, self.lo, self.hi,
                               step=self.step or None)


@dataclass(frozen=True)
class SearchConfig(_Config):
    """One exploration: optimizer, budget, scalarisation, design space.

    Without ``axes`` the space is the discrete (vdd_scale × vth_shift ×
    cox_scale) grid of :class:`repro.stco.space.DesignSpace`; defaults
    reproduce the paper's 45-point grid. A non-empty ``axes`` tuple of
    :class:`AxisConfig` declares a generalised
    :class:`~repro.search.spaces.SearchSpace` instead — continuous
    boxes and mixed grids straight from a JSON document (index-based
    optimizers still require every axis to be discrete).

    ``members`` names the portfolio entrants (``mode="portfolio"``;
    empty means the registry default race) and ``portfolio_scoring``
    how the race ranks them (``scalar`` best reward, ``hypervolume``
    archive hypervolume, ``auto`` = hypervolume as soon as any member
    optimizes in pareto mode).
    """

    _nested: ClassVar[dict] = {"axes": ("tuple", AxisConfig)}

    optimizer: str = "qlearning"
    seed: int = 0
    iterations: int = 12
    weights: tuple = (1.0, 1.0, 0.5)    # (power, performance, area)
    vdd_scales: tuple = (0.8, 0.9, 1.0, 1.1, 1.2)
    vth_shifts: tuple = (-0.1, 0.0, 0.1)
    cox_scales: tuple = (0.8, 1.0, 1.2)
    axes: tuple = ()
    members: tuple = ()
    portfolio_scoring: str = "scalar"

    def __post_init__(self):
        _require(self.iterations > 0, "search.iterations must be positive")
        _require(len(self.weights) == 3,
                 "search.weights must be (power, performance, area)")
        for name in ("vdd_scales", "vth_shifts", "cox_scales"):
            _require(bool(getattr(self, name)),
                     f"search.{name} must not be empty")
        for axis in self.axes:
            _require(isinstance(axis, AxisConfig),
                     "search.axes entries must be axis mappings")
        names = [a.name for a in self.axes]
        _require(len(set(names)) == len(names),
                 f"search.axes names must be unique, got {names}")
        # One source of truth: the portfolio module owns the mode names.
        from ..search.portfolio import SCORING_MODES
        _require(self.portfolio_scoring in SCORING_MODES,
                 f"search.portfolio_scoring must be one of "
                 f"{SCORING_MODES}, got {self.portfolio_scoring!r}")

    def ppa_weights(self):
        from ..engine.records import PPAWeights
        power, performance, area = self.weights
        return PPAWeights(power=float(power),
                          performance=float(performance),
                          area=float(area))

    def space(self):
        if self.axes:
            from ..search.spaces import SearchSpace
            return SearchSpace([a.axis() for a in self.axes])
        from ..stco.space import DesignSpace
        return DesignSpace(vdd_scales=self.vdd_scales,
                           vth_shifts=self.vth_shifts,
                           cox_scales=self.cox_scales)


@dataclass(frozen=True)
class SurrogateConfig(_Config):
    """The learned multi-fidelity layer (``repro.surrogate``).

    ``harvest`` turns every engine evaluation of the run into a
    persisted training row (content-keyed in the workspace — warm runs
    re-featurize nothing). ``screen`` > 0 gates the optimizer behind a
    :class:`~repro.surrogate.fidelity.PromotionSchedule` that sends
    only ``promote`` of ``screen`` screened candidates per round to the
    engine. The ensemble fields parameterize both the online
    ``bayes`` / ``ucb`` surrogates and the promotion gate (the
    acquisition itself is the optimizer *name*: ``bayes`` = expected
    improvement, ``ucb`` = upper confidence bound with ``ucb_beta``);
    ``persist_model`` additionally trains an ensemble on the full
    record store after the run and registers it as a workspace
    artifact.
    """

    harvest: bool = False
    persist_model: bool = False
    members: int = 3
    hidden: int = 16
    depth: int = 2
    epochs: int = 60
    seed: int = 0
    ucb_beta: float = 1.0
    screen: int = 0                  # 0 = no promotion gate
    promote: int = 4
    min_observations: int = 6
    kappa: float = 1.0

    def __post_init__(self):
        _require(self.members >= 1,
                 "surrogate.members must be >= 1")
        _require(self.screen >= 0, "surrogate.screen must be >= 0")
        if self.screen:
            _require(self.promote >= 1,
                     "surrogate.promote must be >= 1")
            _require(self.screen >= self.promote,
                     "surrogate.screen must be >= surrogate.promote")

    def model_config(self):
        """The :class:`repro.surrogate.models.EnsembleConfig` this maps to."""
        from ..surrogate.models import EnsembleConfig
        return EnsembleConfig(members=self.members, hidden=self.hidden,
                              depth=self.depth, epochs=self.epochs,
                              seed=self.seed)

    def schedule(self):
        """The :class:`repro.surrogate.fidelity.PromotionSchedule` (or
        None when screening is off)."""
        if not self.screen:
            return None
        from ..surrogate.fidelity import PromotionSchedule
        return PromotionSchedule(screen=self.screen,
                                 promote=self.promote,
                                 min_observations=self.min_observations,
                                 kappa=self.kappa,
                                 ucb_beta=self.ucb_beta)

    def optimizer_options(self) -> dict:
        """Constructor kwargs for the ``bayes`` / ``ucb`` optimizers.

        Deliberately carries no ``acquisition`` key — the registry
        *name* decides that (``bayes`` = EI, ``ucb`` = UCB), and an
        explicit entry here would override it.
        """
        return {"ucb_beta": self.ucb_beta, "members": self.members,
                "hidden": self.hidden, "depth": self.depth,
                "epochs": self.epochs,
                "init": max(self.min_observations, 2)}


@dataclass(frozen=True)
class PredictConfig(_Config):
    """The tier-0 inference edge (``repro.predict``).

    ``fidelity="surrogate"`` reruns the whole search against the
    workspace's trained :class:`~repro.surrogate.models.EnsemblePPAModel`
    instead of the engine — the report carries an honest
    ``uncertainty`` block. ``escalate_threshold`` > 0 auto-submits an
    engine-backed job (``fidelity="engine"`` twin of the same document,
    through the serve/coalesce path at ``escalate_url``) when the
    best corner's mean predicted log10 spread exceeds it.

    The refresh fields drive the background
    :class:`~repro.predict.refresh.ModelRefresher`:
    ``refresh_delta_rows`` new harvested rows trigger a warm-started
    incremental refit (0 disables), checked every
    ``refresh_interval_s``; ``refresh_epochs`` 0 reuses the ensemble's
    configured epochs.
    """

    fidelity: str = "engine"
    escalate_threshold: float = 0.0   # 0 = never escalate
    escalate_url: str = ""
    min_rows: int = 8
    cache_size: int = 256
    refresh_delta_rows: int = 0       # 0 = refresher off
    refresh_interval_s: float = 2.0
    refresh_epochs: int = 0           # 0 = ensemble's epochs

    def __post_init__(self):
        _require(self.fidelity in FIDELITIES,
                 f"predict.fidelity must be one of {FIDELITIES}, "
                 f"got {self.fidelity!r}")
        _require(self.escalate_threshold >= 0.0,
                 "predict.escalate_threshold must be >= 0")
        _require(self.min_rows >= 1, "predict.min_rows must be >= 1")
        _require(self.cache_size >= 0,
                 "predict.cache_size must be >= 0")
        _require(self.refresh_delta_rows >= 0,
                 "predict.refresh_delta_rows must be >= 0")
        _require(self.refresh_interval_s > 0.0,
                 "predict.refresh_interval_s must be positive")
        _require(self.refresh_epochs >= 0,
                 "predict.refresh_epochs must be >= 0")


@dataclass(frozen=True)
class ScenarioConfig(_Config):
    """One campaign scenario (maps to :class:`repro.engine.campaign.Scenario`)."""

    benchmark: str = "s298"
    agent: str = "qlearning"
    seed: int = 0
    iterations: int = 12
    weights: tuple = (1.0, 1.0, 0.5)

    def __post_init__(self):
        _require(self.iterations > 0,
                 "scenario.iterations must be positive")
        _require(len(self.weights) == 3,
                 "scenario.weights must be (power, performance, area)")

    def scenario(self):
        from ..engine.campaign import Scenario
        return Scenario(benchmark=self.benchmark, agent=self.agent,
                        seed=self.seed, iterations=self.iterations,
                        weights=tuple(float(w) for w in self.weights))


@dataclass(frozen=True)
class StcoConfig(_Config):
    """The root document: one complete, serializable run description.

    ``mode`` selects what :func:`repro.api.runner.run` executes:

    * ``"fast"`` — the paper's GNN-accelerated STCO on ``benchmark``;
    * ``"traditional"`` — the SPICE-characterized baseline;
    * ``"search"`` — a single instrumented
      :class:`~repro.search.driver.SearchRun` with any registry
      optimizer (builder chosen by ``model.kind``);
    * ``"portfolio"`` — a :class:`~repro.search.portfolio.PortfolioSearch`
      race over ``search.members``;
    * ``"campaign"`` — a full checkpointed
      :class:`~repro.engine.campaign.Campaign` over ``scenarios``.
    """

    _nested: ClassVar[dict] = {
        "technology": TechnologyConfig, "model": ModelConfig,
        "engine": EngineConfig, "search": SearchConfig,
        "surrogate": SurrogateConfig, "predict": PredictConfig,
        "scenarios": ("tuple", ScenarioConfig)}

    schema_version: int = SCHEMA_VERSION
    mode: str = "fast"
    benchmark: str = "s298"
    technology: TechnologyConfig = field(default_factory=TechnologyConfig)
    model: ModelConfig = field(default_factory=ModelConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    search: SearchConfig = field(default_factory=SearchConfig)
    surrogate: SurrogateConfig = field(default_factory=SurrogateConfig)
    predict: PredictConfig = field(default_factory=PredictConfig)
    scenarios: tuple = ()
    checkpoint: str = ""             # campaign checkpoint file ("" = off)
    prefetch: bool = False

    def __post_init__(self):
        _require(self.schema_version == SCHEMA_VERSION,
                 f"config schema_version {self.schema_version} does not "
                 f"match this library's schema {SCHEMA_VERSION}")
        _require(self.mode in MODES,
                 f"mode must be one of {MODES}, got {self.mode!r}")
        if self.mode == "campaign":
            _require(bool(self.scenarios),
                     "campaign mode needs at least one scenario")
        if self.predict.fidelity == "surrogate":
            _require(self.mode in ("fast", "traditional", "search"),
                     f"predict.fidelity='surrogate' supports single-"
                     f"search modes only, not {self.mode!r}")
        for s in self.scenarios:
            _require(isinstance(s, ScenarioConfig),
                     "scenarios entries must be ScenarioConfig mappings")

    # -- JSON round-trip ---------------------------------------------------
    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "StcoConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"config is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path) -> "StcoConfig":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def builder_kind(self) -> str:
        """Which characterization path this run uses."""
        if self.mode == "fast":
            return "gnn"
        if self.mode == "traditional":
            return "spice"
        return self.model.kind
